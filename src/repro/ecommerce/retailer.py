"""Retailer web servers.

A :class:`Retailer` is configuration (domain, catalog, pricing policy,
template, localization behaviour); a :class:`RetailerServer` wraps it into
a :class:`repro.net.transport.Server` that renders product pages per
request.  The request path a server implements:

1. geo-locate the client IP against the shared geo-IP database (the exact
   mechanism the paper credits for localized prices),
2. choose display locale/currency: geo-localizing retailers use the
   visitor's country; others always use their home locale,
3. build a :class:`~repro.ecommerce.pricing.PricingContext` from the
   request (country, city, day, login cookie, session cookie, nonce),
4. ask the pricing policy for the USD price, convert to the display
   currency at the day's mid market rate, round like a shop does,
5. render the retailer's template -- with localized decoy prices on the
   recommended products -- and serialize to HTML.

Routes: ``/`` (catalog index), product paths, ``/login`` (toy login that
sets an auth cookie), anything else 404.
"""

from __future__ import annotations

from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from repro.ecommerce.catalog import Catalog, Product
from repro.ecommerce.checkout import ShippingPolicy, vat_rate
from repro.ecommerce.localization import Locale, locale_for_country
from repro.ecommerce.pricing import (
    CAPTURABLE_SIGNALS,
    PricingContext,
    PricingPolicy,
    SignalProbe,
    signals_read,
)
from repro.ecommerce.templates import (
    PageTemplate,
    ProductView,
    render_checkout_page,
    render_index_page,
)
from repro.ecommerce.thirdparty import ThirdParty
from repro.fx.rates import RateService
from repro.htmlmodel.dom import Document
from repro.htmlmodel.serialize import to_html
from repro.net.clock import SECONDS_PER_DAY
from repro.net.geoip import GeoIPDatabase, GeoLocation
from repro.net.http import HttpRequest, HttpResponse, HttpStatus, SetCookie
from repro.util import stable_hash, stable_rng

__all__ = ["Retailer", "RetailerServer", "PricingSignature", "SignalProfile"]

_INDEX_LISTING_CAP = 250

#: Per-server render memo entries (LRU); a retailer rarely shows more than
#: a few hundred live (sku, locale, price) combinations at once.
_RENDER_CACHE_MAX = 256


@dataclass(frozen=True)
class Retailer:
    """Static configuration of one shop."""

    domain: str
    name: str
    category: str
    catalog: Catalog
    policy: PricingPolicy
    template: PageTemplate
    trackers: tuple[ThirdParty, ...] = ()
    #: Geo-localize display currency?  (Most of the paper's retailers do;
    #: a few always price in their home currency.)
    localizes_currency: bool = True
    #: Locale used when not geo-localizing (and for unknown client IPs).
    home_country: str = "US"
    #: Supports login accounts (the amazon.com Kindle experiment).
    supports_login: bool = False
    #: Shipping table quoted at checkout (displayed prices exclude it,
    #: per the paper's §2.2 observation).
    shipping: ShippingPolicy = field(default_factory=ShippingPolicy)

    def __post_init__(self) -> None:
        if not self.domain or "/" in self.domain:
            raise ValueError(f"bad domain {self.domain!r}")


@dataclass(frozen=True)
class SignalProfile:
    """How a server's responses may be keyed for the burst memo.

    ``signals`` is the projection set a request signature captures;
    ``declared`` is True when it came from the policy's own ``signals()``
    declaration (verified at store time against ``signals`` itself) and
    False when the policy is undeclared and the memo records reads against
    the full :data:`~repro.ecommerce.pricing.CAPTURABLE_SIGNALS` ceiling.
    """

    signals: frozenset[str]
    declared: bool

    @property
    def verify_signals(self) -> frozenset[str]:
        """The set recorded reads must stay inside for an entry to cache.

        ``day_index`` is always allowed: the signature keys on the
        server-side request day unconditionally (structural seed and FX
        display rates read it even when the policy does not).
        """
        if not self.declared:
            return CAPTURABLE_SIGNALS
        return self.signals | {"day_index"}


@dataclass(frozen=True)
class PricingSignature:
    """The captured pricing/render inputs of one fan-out request.

    Composed by :meth:`RetailerServer.pricing_signature`: ``day_index`` is
    the server-side request day (structural seed, FX display rates, and
    drift all key on it), ``values`` the (signal, value) pairs of the
    profile's projection set.  Two requests with equal signatures -- same
    URL, same day, same captured signals -- receive byte-identical
    product pages from a signature-pure retailer.
    """

    day_index: int
    values: tuple[tuple[str, Union[str, int]], ...]


#: Sentinel distinguishing "not computed yet" from "not memoizable".
_UNRESOLVED = object()


class RetailerServer:
    """HTTP-facing wrapper that prices and renders per request."""

    def __init__(
        self,
        retailer: Retailer,
        *,
        geoip: GeoIPDatabase,
        rates: RateService,
        seed: int = 0,
    ) -> None:
        self.retailer = retailer
        self._geoip = geoip
        self._rates = rates
        self._seed = seed
        self._request_count = 0
        #: sku -> decoy picks; the pick RNG is keyed only by (seed, domain,
        #: sku), so the selection is request-independent and cacheable.
        self._reco_picks: dict[str, list[Product]] = {}
        # Render memo: templates are pure functions of the view, so two
        # requests that price identically (the common, promo-free case)
        # produce byte-identical pages.  Keyed by every view field that can
        # vary between requests; the cached tree/string are shared and
        # treated as read-only by all consumers.
        self._render_cache: "OrderedDict[tuple, tuple[Document, str]]" = (
            OrderedDict()
        )
        self._render_hits = 0
        self._render_misses = 0
        # Burst-memo support: lazily resolved signature profile and, while
        # a live fan-out is being recorded, the set collecting which
        # pricing signals the policy actually read.
        self._signature_profile: object = _UNRESOLVED
        self._signal_reads: Optional[set[str]] = None

    def render_cache_stats(self) -> dict[str, int]:
        """Render-memo counters (for performance reports)."""
        return {
            "render_hits": self._render_hits,
            "render_misses": self._render_misses,
            "render_entries": len(self._render_cache),
        }

    # ------------------------------------------------------------------
    # Burst-memo support (the signature contract, docs/PERFORMANCE.md)
    # ------------------------------------------------------------------
    def signature_profile(self) -> Optional[SignalProfile]:
        """How this server's product pages may be memo-keyed, or ``None``.

        ``None`` means the responses read state a burst signature cannot
        capture, so every check against this retailer must run the live
        fan-out:

        * the policy declares a non-capturable signal (identity, nonce,
          referer, sub-day seconds, login state), or
        * the retailer supports login -- the *server itself* keys the
          rendered page on the auth cookie, independent of the policy.

        An undeclared policy gets the benefit of the doubt: the profile
        projects the full capturable set and the memo verifies recorded
        reads before caching anything (detected, not assumed).
        """
        cached = self._signature_profile
        if cached is _UNRESOLVED:
            if self.retailer.supports_login:
                resolved: Optional[SignalProfile] = None
            else:
                declared = signals_read(self.retailer.policy)
                if declared is None:
                    resolved = SignalProfile(
                        signals=CAPTURABLE_SIGNALS, declared=False
                    )
                elif declared <= CAPTURABLE_SIGNALS:
                    resolved = SignalProfile(signals=declared, declared=True)
                else:
                    resolved = None
            self._signature_profile = resolved
            return resolved
        return cached  # type: ignore[return-value]

    def pricing_signature(
        self, *, client_ip: str, user_agent: str, day_index: int
    ) -> Optional[PricingSignature]:
        """Compose the request signature a fan-out from ``client_ip`` gets.

        Pure function of (client IP, browser, virtual day) and this
        server's immutable configuration -- no session state, no counters
        -- which is exactly what makes it a sound memo key component.
        Returns ``None`` for servers without a signature profile.
        """
        profile = self.signature_profile()
        if profile is None:
            return None
        location = self._lookup_location(client_ip)
        values: list[tuple[str, Union[str, int]]] = []
        for name in sorted(profile.signals):
            if name == "country_code":
                values.append((name, location.country_code))
            elif name == "city":
                values.append((name, location.city))
            elif name == "day_index":
                values.append((name, day_index))
            elif name == "browser":
                values.append((name, user_agent))
        return PricingSignature(day_index=day_index, values=tuple(values))

    @contextmanager
    def record_signal_reads(self) -> Iterator[set[str]]:
        """Record which pricing signals requests read while active.

        The live fan-out path wraps its burst in this context; every
        ``policy.price`` call then goes through a
        :class:`~repro.ecommerce.pricing.SignalProbe` and the yielded set
        accumulates the fields actually read -- the evidence the burst
        memo checks a declaration against before caching.
        """
        previous = self._signal_reads
        reads: set[str] = set()
        self._signal_reads = reads
        try:
            yield reads
        finally:
            self._signal_reads = previous

    def _pricing_view(self, ctx: PricingContext) -> PricingContext:
        """The context handed to the policy (probed while recording)."""
        reads = self._signal_reads
        if reads is None:
            return ctx
        if ctx.logged_in:
            # The page itself (greeting banner) keys on the login cookie,
            # not just the policy -- surface it as an identity read.
            reads.add("identity")
            reads.add("logged_in")
        return SignalProbe(ctx, reads)  # type: ignore[return-value]

    @property
    def request_count(self) -> int:
        """Requests served so far.

        Part of the pricing nonce, so it is *session state*: a shard
        worker must start from the coordinator's count (and hand its final
        count back) for per-request A/B draws to reproduce bit-for-bit.
        """
        return self._request_count

    @request_count.setter
    def request_count(self, value: int) -> None:
        if value < 0:
            raise ValueError("request_count cannot be negative")
        self._request_count = value

    # ------------------------------------------------------------------
    # Session-state SPI (the shard/merge seam, repro.exec)
    # ------------------------------------------------------------------
    def session_state(self) -> dict:
        """This server's picklable per-shard session state.

        Everything mutable that a request *response* may depend on must be
        representable here: a shard worker restores the coordinator's
        state before its batch and hands its own back afterwards, so the
        pair of calls must round-trip every byte-relevant counter.  The
        base server's only such state is the request counter (part of the
        pricing nonce); stateful subclasses -- the scenario layer's
        cloaking server tracks per-IP request rates -- extend the dict.
        """
        return {"request_count": self._request_count}

    def restore_session_state(self, state: dict) -> None:
        """Install session state captured by :meth:`session_state`."""
        self.request_count = state["request_count"]

    # ------------------------------------------------------------------
    def handle(self, request: HttpRequest) -> HttpResponse:
        """Route one request."""
        self._request_count += 1
        path = request.url.path
        if path == "/":
            return self._index(request)
        if path == "/login":
            return self._login(request)
        if path.startswith("/checkout/"):
            return self._checkout(request, path.removeprefix("/checkout/"))
        product = self.retailer.catalog.by_path(path)
        if product is not None:
            return self._product_page(request, product)
        return HttpResponse.not_found(f"no such page on {self.retailer.domain}")

    # ------------------------------------------------------------------
    # Localization plumbing
    # ------------------------------------------------------------------
    def _client_location(self, request: HttpRequest) -> GeoLocation:
        return self._lookup_location(request.client_ip)

    def _lookup_location(self, client_ip: str) -> GeoLocation:
        location = self._geoip.lookup(client_ip)
        if location is None:
            return GeoLocation(
                self.retailer.home_country, self.retailer.home_country, ""
            )
        return location

    def _display_locale(self, location: GeoLocation) -> Locale:
        if self.retailer.localizes_currency:
            return locale_for_country(location.country_code)
        return locale_for_country(self.retailer.home_country)

    def _display_amount(self, usd: float, locale: Locale, day_index: int) -> float:
        """Convert a USD price into the display currency at the day's mid."""
        code = locale.currency.code
        if code == "USD":
            return round(usd, 2)
        rate = self._rates.rate(code, day_index)
        local = usd / rate.mid
        decimals = 0 if code == "JPY" else 2
        return round(local, decimals)

    # ------------------------------------------------------------------
    # Pages
    # ------------------------------------------------------------------
    def _pricing_context(
        self, request: HttpRequest, location: GeoLocation
    ) -> PricingContext:
        cookies = request.cookies
        user = cookies.get("auth") if self.retailer.supports_login else None
        session = cookies.get("session")
        identity = user if user else (f"anon:{session}" if session else None)
        return PricingContext(
            country_code=location.country_code,
            city=location.city,
            day_index=int(request.timestamp // SECONDS_PER_DAY),
            seconds=request.timestamp,
            identity=identity,
            logged_in=user is not None,
            referer=request.referer,
            browser=request.user_agent,
            nonce=stable_hash(
                self._seed, self.retailer.domain, request.client_ip,
                request.timestamp, self._request_count,
            ),
        )

    def _product_page(self, request: HttpRequest, product: Product) -> HttpResponse:
        location = self._client_location(request)
        locale = self._display_locale(location)
        ctx = self._pricing_context(request, location)
        pricing_ctx = self._pricing_view(ctx)

        usd = self.retailer.policy.price(product, pricing_ctx)
        amount = self._display_amount(usd, locale, ctx.day_index)
        decimals = 0 if locale.currency.code == "JPY" else 2
        price_text = locale.format_price(amount, decimals=decimals)

        recommended = self._recommended(product, pricing_ctx, locale)
        structural_seed = stable_hash(
            self._seed, self.retailer.domain, product.sku, ctx.day_index
        )
        logged_in_user = ctx.identity if ctx.logged_in else None

        # Templates are pure functions of the view, so the render (and its
        # serialization) can be memoized on every view field that varies
        # between requests.  Promo-free retailers serve byte-identical
        # pages to a whole fan-out burst; only the first request pays the
        # render.
        cache_key = (
            product.sku,
            price_text,
            tuple((pick.sku, text) for pick, text in recommended),
            locale,
            structural_seed,
            logged_in_user,
        )
        cached = self._render_cache.get(cache_key)
        if cached is not None:
            self._render_hits += 1
            self._render_cache.move_to_end(cache_key)
            tree, html = cached
        else:
            self._render_misses += 1
            view = ProductView(
                retailer_name=self.retailer.name,
                domain=self.retailer.domain,
                product=product,
                price_text=price_text,
                locale=locale,
                recommended=recommended,
                trackers=self.retailer.trackers,
                structural_seed=structural_seed,
                logged_in_user=logged_in_user,
                day_index=ctx.day_index,
            )
            # Render once; serialize for the wire (the archive stays
            # byte-faithful) and keep the tree so in-process consumers can
            # skip re-parsing (the structured-fetch channel).
            tree = self.retailer.template.render(view)
            html = to_html(tree)
            self._render_cache[cache_key] = (tree, html)
            while len(self._render_cache) > _RENDER_CACHE_MAX:
                self._render_cache.popitem(last=False)
        response = HttpResponse.html(html, document=tree)
        if "session" not in request.cookies:
            session_id = f"s{stable_hash(self._seed, request.client_ip, request.timestamp) % 10**12}"
            response.headers.add(
                "Set-Cookie", SetCookie("session", session_id).to_header()
            )
        return response

    def _recommended(
        self, product: Product, ctx: PricingContext, locale: Locale
    ) -> list[tuple[Product, str]]:
        """4 decoy products with localized prices (extraction chaff)."""
        catalog = self.retailer.catalog
        if len(catalog) <= 1:
            return []
        picks = self._reco_picks.get(product.sku)
        if picks is None:
            rng = stable_rng(self._seed, self.retailer.domain, product.sku, "reco")
            pool = [p for p in catalog if p.sku != product.sku]
            picks = pool if len(pool) <= 4 else rng.sample(pool, 4)
            self._reco_picks[product.sku] = picks
        out = []
        decimals = 0 if locale.currency.code == "JPY" else 2
        for pick in picks:
            usd = self.retailer.policy.price(pick, ctx)
            amount = self._display_amount(usd, locale, ctx.day_index)
            out.append((pick, locale.format_price(amount, decimals=decimals)))
        return out

    def _index(self, request: HttpRequest) -> HttpResponse:
        location = self._client_location(request)
        locale = self._display_locale(location)
        products = self.retailer.catalog.products[:_INDEX_LISTING_CAP]
        tree = render_index_page(
            self.retailer.name, self.retailer.domain, products, locale=locale
        )
        return HttpResponse.html(to_html(tree), document=tree)

    def _checkout(self, request: HttpRequest, sku: str) -> HttpResponse:
        """The itemized quote: displayed price + shipping + VAT."""
        product = self.retailer.catalog.by_sku(sku)
        if product is None:
            return HttpResponse.not_found(f"unknown item {sku!r}")
        location = self._client_location(request)
        locale = self._display_locale(location)
        ctx = self._pricing_context(request, location)

        item_usd = self.retailer.policy.price(product, self._pricing_view(ctx))
        shipping_usd = self.retailer.shipping.cost(
            location.country_code, self.retailer.home_country, item_usd
        )
        tax_usd = item_usd * vat_rate(
            self.retailer.home_country, location.country_code
        )

        decimals = 0 if locale.currency.code == "JPY" else 2
        day = ctx.day_index

        def render_amount(usd: float) -> str:
            return locale.format_price(
                self._display_amount(usd, locale, day), decimals=decimals
            )

        tree = render_checkout_page(
            self.retailer.name,
            product,
            item_text=render_amount(item_usd),
            shipping_text=render_amount(shipping_usd),
            tax_text=render_amount(tax_usd),
            total_text=render_amount(item_usd + shipping_usd + tax_usd),
            locale=locale,
        )
        return HttpResponse.html(to_html(tree), document=tree)

    def _login(self, request: HttpRequest) -> HttpResponse:
        """Toy login: ``GET /login?user=alice`` sets the auth cookie."""
        if not self.retailer.supports_login:
            return HttpResponse.not_found("this shop has no accounts")
        user = request.url.query_param("user")
        if not user:
            return HttpResponse.html(
                "<html><body><form action='/login'>"
                "<input name='user'><input type='submit'></form></body></html>"
            )
        response = HttpResponse.redirect("/")
        response.headers.add("Set-Cookie", SetCookie("auth", user).to_header())
        return response
