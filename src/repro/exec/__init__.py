"""Sharded execution of synchronized-check batches.

The paper's workload is a day-batched fan-out: ~200K fetches across
21 retailers x 7 days x 14 vantage points.  This package executes one
day's batch across N workers while keeping every report byte-identical
to the sequential loop:

* :class:`~repro.exec.plan.CostAwarePlanner` -- the default planner:
  partitions the batch by retailer, bin-packing retailers onto shards so
  predicted per-shard cost (live fan-outs vs memo hits) equalizes;
* :class:`~repro.exec.plan.ShardPlan` -- the stable-hash fallback
  planner; each shard still owns disjoint retailer/session state;
* :class:`~repro.exec.plan.ExecConfig` -- the ``workers``/``mode``/
  ``planner`` knob carried by :func:`repro.crawler.run_crawl`,
  :func:`repro.crowd.run_campaign`, and the CLI's ``--workers``
  (``--workers 0`` auto-sizes from ``os.cpu_count()``);
* :class:`~repro.exec.local.LocalExecutor` -- in-process execution, the
  default and the determinism test baseline;
* :class:`~repro.exec.process.ProcessExecutor` -- multiprocessing
  execution; workers regrow the world from its picklable
  :class:`~repro.ecommerce.world.WorldSpec` instead of pickling live
  simulation objects.  A supervision layer recovers dead or hung
  workers (respawn + full re-ship + deterministic re-run) and
  quarantines poison shards to inline execution after
  ``--max-worker-restarts`` failures; :func:`~repro.exec.process.
  fleet_health` accumulates the recovery telemetry across executors.

See ``docs/ARCHITECTURE.md`` for the determinism contract that makes the
byte-identity guarantee hold.
"""

from repro.exec.local import LocalExecutor
from repro.exec.plan import (
    CostAwarePlanner,
    ExecConfig,
    ExecError,
    ShardPlan,
    make_planner,
)
from repro.exec.process import (
    FleetHealthScope,
    ProcessExecutor,
    fleet_health,
    install_fault_hook,
    reset_fleet_health,
)

__all__ = [
    "CostAwarePlanner",
    "ExecConfig",
    "ExecError",
    "FleetHealthScope",
    "LocalExecutor",
    "ProcessExecutor",
    "ShardPlan",
    "fleet_health",
    "install_fault_hook",
    "make_planner",
    "reset_fleet_health",
]
