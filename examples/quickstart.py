"""Quickstart: one crowd-style $heriff price check, end to end.

Builds a small simulated web, takes the role of a user in Germany browsing
a photography shop, highlights the price, and fans the check out to the 14
measurement vantage points -- then prints what each location saw.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import SheriffBackend, SheriffExtension, UserClient
from repro.ecommerce import WorldConfig, build_world
from repro.htmlmodel.selectors import Selector
from repro.net.geoip import GeoLocation
from repro.net.useragent import profile_for


def main() -> None:
    # A small world: all 30 named retailers with short catalogs.
    world = build_world(WorldConfig(catalog_scale=0.25, long_tail_domains=20))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    extension = SheriffExtension(backend, world.network)

    # The user: Berlin, Firefox on Linux.
    user = UserClient(
        name="demo-user",
        location=GeoLocation("DE", "Germany", "Berlin"),
        ip=world.plan.allocate("DE", "Berlin"),
        profile=profile_for("firefox", "linux"),
    )

    # The product page the user is looking at.
    retailer = world.retailer("www.digitalrev.com")
    product = retailer.catalog.products[2]
    url = f"http://{retailer.domain}{product.path}"
    print(f"user opens   {url}")
    print(f"product      {product.name} (base ${product.base_price_usd:.2f})")

    # The user's eyes: in the simulation, the template's ground-truth price
    # location stands in for the visual highlight.
    find_price = Selector.parse(retailer.template.price_selector).select_one

    outcome = extension.check_product(user, url, find_price)
    if not outcome.ok:
        raise SystemExit(f"check failed: {outcome.failure}")

    print(f"user sees    {outcome.user_amount:.2f} {outcome.user_currency}")
    print()
    report = outcome.report
    print(f"$heriff fan-out ({len(report.observations)} vantage points):")
    for obs in report.observations:
        if obs.ok:
            print(f"  {obs.vantage:22s} {obs.raw_text:>14s}  -> ${obs.usd:8.2f}")
        else:
            print(f"  {obs.vantage:22s} FAILED: {obs.error}")
    print()
    print(report.summary_line())
    if report.has_variation:
        ratios = report.ratios_by_vantage()
        dearest = max(ratios, key=ratios.get)
        print(
            f"price discrimination suspected: {dearest} pays "
            f"x{ratios[dearest]:.3f} the cheapest location's price "
            f"(currency guard x{report.guard_threshold:.3f} excluded FX noise)"
        )


if __name__ == "__main__":
    main()
