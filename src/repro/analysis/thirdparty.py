"""Third-party presence census over archived pages (§4.4).

"We investigate the frequency of third parties that are present on the
retailers we study."  The census scans the page archive -- the actual HTML
$heriff stored -- for third-party script and widget references, so the
percentages are a measurement of the simulated web rather than a read-out
of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.store import PageStore
from repro.ecommerce.thirdparty import TRACKER_CENSUS
from repro.htmlmodel.parser import parse_html
from repro.net.urls import URL, URLError

__all__ = ["TrackerPresence", "tracker_presence", "trackers_on_page"]


def trackers_on_page(html: str) -> set[str]:
    """Third-party domains referenced by scripts/widgets on one page."""
    document = parse_html(html)
    found: set[str] = set()
    for element in document.iter_elements():
        candidate: Optional[str] = None
        if element.tag == "script":
            candidate = element.get("src")
        elif element.tag in ("div", "iframe") and "widget" in element.classes:
            candidate = element.get("data-src") or element.get("src")
        if not candidate:
            continue
        host = _host_of(candidate)
        if host:
            found.add(host)
    return found


def _host_of(reference: str) -> Optional[str]:
    if reference.startswith(("http://", "https://")):
        try:
            return URL.parse(reference).host
        except URLError:
            return None
    # Bare hosts (widget data-src attributes).
    if "/" not in reference and "." in reference:
        return reference.lower()
    return None


@dataclass(frozen=True)
class TrackerPresence:
    """The census result."""

    n_domains: int
    #: tracker display name -> fraction of surveyed domains embedding it.
    presence: dict[str, float]
    #: surveyed retailer domain -> tracker display names found there.
    per_domain: dict[str, tuple[str, ...]]

    def fraction(self, tracker_name: str) -> float:
        """Measured presence of one tracker (0.0 when never seen)."""
        return self.presence.get(tracker_name, 0.0)


def tracker_presence(
    store: PageStore, *, domains: Optional[Sequence[str]] = None
) -> TrackerPresence:
    """Scan one archived page per retailer domain and census trackers."""
    surveyed = list(domains) if domains is not None else store.domains()
    tracker_hosts = {t.domain: t.name for t in TRACKER_CENSUS}
    per_domain: dict[str, tuple[str, ...]] = {}
    counts: dict[str, int] = {t.name: 0 for t in TRACKER_CENSUS}

    scanned = 0
    for domain in surveyed:
        pages = store.pages_for_domain(domain, with_html_only=True)
        if not pages:
            continue
        scanned += 1
        hosts = trackers_on_page(pages[0].html or "")
        names = tuple(
            sorted({tracker_hosts[h] for h in hosts if h in tracker_hosts})
        )
        per_domain[domain] = names
        for name in names:
            counts[name] += 1

    presence = {
        name: (count / scanned if scanned else 0.0)
        for name, count in counts.items()
    }
    return TrackerPresence(
        n_domains=scanned, presence=presence, per_domain=per_domain
    )
