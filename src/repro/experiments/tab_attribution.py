"""§2.2 attribution check, automated: shipping/tax cannot explain the gaps.

The paper: "To the best of our efforts we could not attribute the observed
price gaps to currency, shipping, or taxation differences."  We reproduce
that as a measurement -- checkout quotes are scraped from the cheapest and
dearest vantage points for a sample of flagged products -- and additionally
demonstrate the positive control: zavvi.com bundles shipping into non-UK
displayed prices, and the probe correctly *clears* it.
"""

from __future__ import annotations

from repro.analysis.attribution import CheckoutProbe
from repro.analysis.personal import derive_anchor_for_domain
from repro.core.backend import CheckRequest
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

CONFOUND_DOMAIN = "www.zavvi.com"


def run(ctx: ExperimentContext) -> FigureResult:
    """Run the automated §2.2 shipping/tax attribution."""
    result = FigureResult(
        figure_id="TAB-ATTR",
        title="Attribution: can shipping/tax explain the flagged gaps? (§2.2)",
        paper_claim=(
            "price gaps could not be attributed to currency, shipping, or "
            "taxation differences"
        ),
        columns=("domain", "displayed_ratio", "merchant_total_ratio", "verdict"),
    )
    probe = CheckoutProbe(ctx.world)

    # One flagged product per crawled retailer.
    sampled = {}
    for report in ctx.crawl_clean.kept:
        if report.has_variation and report.domain not in sampled:
            sampled[report.domain] = report
    verdicts = []
    for domain in sorted(sampled):
        verdict = probe.attribute(sampled[domain])
        if verdict is None:
            continue
        verdicts.append(verdict)
        result.add_row(
            domain, verdict.displayed_ratio, verdict.merchant_total_ratio,
            "logistics" if verdict.explained_by_logistics else "unexplained",
        )

    # Positive control: the shipping-bundling confound.
    anchor = derive_anchor_for_domain(ctx.world, CONFOUND_DOMAIN)
    product = ctx.world.retailer(CONFOUND_DOMAIN).catalog.products[0]
    confound_report = ctx.backend.check(CheckRequest(
        url=f"http://{CONFOUND_DOMAIN}{product.path}", anchor=anchor,
    ))
    confound = probe.attribute(confound_report)
    if confound is not None:
        result.add_row(
            CONFOUND_DOMAIN, confound.displayed_ratio,
            confound.merchant_total_ratio,
            "logistics" if confound.explained_by_logistics else "unexplained",
        )

    result.check(
        "every crawled retailer's gap survives net of shipping/tax",
        bool(verdicts) and all(v.unexplained for v in verdicts),
    )
    result.check(
        "attribution probed most crawled retailers",
        len(verdicts) >= 0.8 * len(sampled),
    )
    result.check(
        "the bundled-shipping confound is correctly cleared (zavvi)",
        confound is not None
        and confound.displayed_ratio > confound.guard
        and confound.explained_by_logistics,
    )
    result.notes.append(
        f"{len(verdicts)} retailers probed; merchant total = item + shipping "
        f"(tax is destination-government revenue either way)"
    )
    return result
