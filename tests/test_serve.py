"""Serving layer: route contract, byte identity, durable job resume.

Three tiers of proof:

* **route contract** -- every endpoint's status codes and JSON shapes,
  driven over a real socket (the handler is threaded; a unit test that
  skips HTTP would miss framing bugs like a wrong Content-Length);
* **byte identity** -- the first check served by a fresh service equals
  the batch path's first check on an identically-built context, byte
  for byte (the determinism contract extends through the wire format);
* **kill-safety** -- SIGKILLing the whole service mid-campaign-job and
  restarting over the same data dir resumes the job from its checkpoint
  and produces byte-identical final results (crashkit ``serve`` driver).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from tests.crashkit import run_to_completion, run_until_killed
from repro.serve import JobSpec, ServeConfig, build_app


# ----------------------------------------------------------------------
# Harness: one live server per test module section
# ----------------------------------------------------------------------
class Client:
    """urllib wrapper that returns (status, body) instead of raising."""

    def __init__(self, port: int) -> None:
        self.base = f"http://127.0.0.1:{port}"

    def get(self, path: str) -> tuple[int, bytes]:
        return self._run(urllib.request.Request(self.base + path))

    def post(self, path: str, payload) -> tuple[int, bytes]:
        data = (payload if isinstance(payload, bytes)
                else json.dumps(payload).encode("utf-8"))
        return self._run(urllib.request.Request(self.base + path, data=data))

    def _run(self, request) -> tuple[int, bytes]:
        try:
            with urllib.request.urlopen(request, timeout=60) as resp:
                return resp.status, resp.read()
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read()

    def wait_done(self, job_id: str, timeout: float = 120.0) -> dict:
        import time

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, body = self.get(f"/jobs/{job_id}")
            assert status == 200, body
            state = json.loads(body)
            if state["status"] in ("done", "failed"):
                return state
            time.sleep(0.05)
        raise AssertionError(f"{job_id} still running after {timeout}s")


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A live service on an ephemeral port; yields (service, client)."""
    data_dir = tmp_path_factory.mktemp("serve-data")
    service, server = build_app(ServeConfig(port=0, data_dir=str(data_dir)))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield service, Client(server.port)
    finally:
        server.shutdown()
        thread.join(timeout=10)
        server.server_close()


# ----------------------------------------------------------------------
# Route contract
# ----------------------------------------------------------------------
class TestRouteContract:
    def test_healthz_shape(self, served):
        _, client = served
        status, body = client.get("/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["scale"] == "tiny"
        assert {"hits", "misses", "hit_rate"} <= set(health["serving_cache"])
        assert {"restarts", "quarantined_shards"} <= set(health["fleet_health"])
        assert health["jobs"]["total"] >= 0

    def test_check_round_trip(self, served):
        _, client = served
        status, body = client.post(
            "/checks", {"domain": "www.digitalrev.com", "product": 1}
        )
        assert status == 200
        report = json.loads(body)
        assert report["domain"] == "www.digitalrev.com"
        assert report["observations"]

    def test_check_unknown_domain_is_404(self, served):
        _, client = served
        status, body = client.post("/checks", {"domain": "nope.example"})
        assert status == 404
        assert "unknown domain" in json.loads(body)["error"]

    def test_check_bad_product_is_400(self, served):
        _, client = served
        status, body = client.post(
            "/checks", {"domain": "www.digitalrev.com", "product": 9999}
        )
        assert status == 400
        assert "out of range" in json.loads(body)["error"]

    def test_check_malformed_body_is_400(self, served):
        _, client = served
        status, _ = client.post("/checks", b"{not json")
        assert status == 400
        status, _ = client.post("/checks", {"product": 1})
        assert status == 400

    def test_campaign_bad_spec_is_400(self, served):
        _, client = served
        status, body = client.post("/campaigns", {"scale": "galactic"})
        assert status == 400
        assert "unknown scale" in json.loads(body)["error"]
        status, body = client.post("/campaigns", {"n_cheks": 10})
        assert status == 400
        assert "unknown campaign spec field" in json.loads(body)["error"]

    def test_unknown_routes_are_404(self, served):
        _, client = served
        assert client.get("/jobs/job-999999")[0] == 404
        assert client.get("/nope")[0] == 404
        assert client.post("/nope", {})[0] == 404

    def test_results_before_done_is_409(self, served):
        # Service-level (deterministic): a registered-but-unlaunched job
        # can never race to "done" under the probe.
        service, _ = served
        from repro.serve import Conflict

        job = service.registry.create(JobSpec(scale="tiny", n_checks=5))
        with pytest.raises(Conflict):
            service.job_results_path(job.id)


# ----------------------------------------------------------------------
# Byte identity with the batch path
# ----------------------------------------------------------------------
class TestServedCheckByteIdentity:
    def test_first_served_check_equals_batch_first_check(self, tmp_path):
        # Fresh service: its first check is chk0000001 on a fresh tiny
        # world, exactly what the batch path produces on an
        # identically-built context.
        service, server = build_app(
            ServeConfig(port=0, data_dir=str(tmp_path / "data"))
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            client = Client(server.port)
            status, served_bytes = client.post(
                "/checks", {"domain": "www.digitalrev.com", "product": 2}
            )
            assert status == 200
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()

        from repro.analysis.personal import derive_anchor_for_domain
        from repro.core.backend import CheckRequest
        from repro.experiments.context import ExperimentContext
        from repro.io import report_to_dict

        ctx = ExperimentContext("tiny", seed=2013)
        world = ctx.world
        anchor = derive_anchor_for_domain(world, "www.digitalrev.com")
        product = world.retailer("www.digitalrev.com").catalog.products[2]
        report = ctx.backend.check(CheckRequest(
            url=f"http://www.digitalrev.com{product.path}", anchor=anchor,
        ))
        batch_bytes = json.dumps(
            report_to_dict(report), sort_keys=True
        ).encode("utf-8")
        assert served_bytes == batch_bytes


# ----------------------------------------------------------------------
# Jobs: lifecycle, checkpointed results, restart visibility
# ----------------------------------------------------------------------
_JOB = {"scale": "tiny", "seed": 2013, "n_checks": 40, "end_day": 12}


class TestCampaignJobs:
    def test_job_runs_to_byte_identical_results(self, served, tmp_path):
        _, client = served
        status, body = client.post("/campaigns", _JOB)
        assert status == 202
        job_id = json.loads(body)["id"]
        state = client.wait_done(job_id)
        assert state["status"] == "done", state
        assert state["checks"] == {"done": 40, "total": 40}
        assert state["memo"]["hits"] + state["memo"]["misses"] > 0
        status, served_results = client.get(f"/jobs/{job_id}/results")
        assert status == 200

        # Reference: the same campaign run directly through the
        # checkpointed batch path (all checkpointed runs agree bytewise).
        from repro.core.backend import SheriffBackend
        from repro.crowd import run_campaign
        from repro.ecommerce.world import build_world
        from repro.io import save_crowd_dataset

        spec = JobSpec.from_dict(_JOB)
        world = build_world(spec.world_config())
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        dataset = run_campaign(
            world, backend, spec.campaign_config(),
            checkpoint_dir=tmp_path / "ref-ckpt", resume=True,
        )
        reference = tmp_path / "reference.jsonl"
        save_crowd_dataset(dataset, reference, seed=spec.seed, columnar=True)
        assert served_results == reference.read_bytes()

    def test_restarted_service_sees_finished_job(self, served):
        service, client = served
        status, body = client.post("/campaigns", _JOB)
        assert status == 202
        job_id = json.loads(body)["id"]
        client.wait_done(job_id)

        # A second service over the same data dir (a "restart"): the
        # scan reloads the terminal job; results serve without a re-run.
        data_dir = service.registry.root.parent
        restarted, server = build_app(
            ServeConfig(port=0, data_dir=str(data_dir))
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            reclient = Client(server.port)
            status, body = reclient.get(f"/jobs/{job_id}")
            assert status == 200
            assert json.loads(body)["status"] == "done"
            assert reclient.get(f"/jobs/{job_id}/results")[0] == 200
        finally:
            server.shutdown()
            thread.join(timeout=10)
            server.server_close()


# ----------------------------------------------------------------------
# Kill the whole service mid-job; restart; demand byte identity
# ----------------------------------------------------------------------
def _serve_spec(tmp_path: Path, tag: str, **overrides) -> dict:
    spec = {
        "kind": "serve",
        "scale": "tiny",
        "seed": 2013,
        "job": {"scale": "tiny", "seed": 2013,
                "n_checks": 60, "end_day": 20},
        "data_dir": str(tmp_path / tag / "data"),
        "out": str(tmp_path / tag / "out.jsonl"),
        "result": str(tmp_path / tag / "result.json"),
    }
    spec.update(overrides)
    return spec


class TestServiceKillResume:
    def test_sigkill_mid_job_resumes_byte_identical(self, tmp_path: Path):
        reference = run_to_completion(_serve_spec(tmp_path, "ref"))
        killed = _serve_spec(
            tmp_path, "kill",
            kill={"point": "segment-committed", "count": 2},
        )
        run_until_killed(killed)
        # Restart over the same data dir: no job is submitted; the
        # service's startup scan resumes job-000001 from its checkpoint.
        resumed = run_to_completion(_serve_spec(tmp_path, "kill"))
        assert resumed["out_sha256"] == reference["out_sha256"], (
            "service restart changed the campaign's result bytes"
        )
        assert resumed["rows"] == reference["rows"]
        assert resumed["checks"] == {"done": 60, "total": 60}


# ----------------------------------------------------------------------
# Progress reads must never mutate the manifest the job thread owns
# ----------------------------------------------------------------------
class TestProgressReadIsReadOnly:
    """Regression: ``Job.checks_done`` once loaded the manifest with
    ``repair=True``, and repair truncates a torn tail *in place*.  A
    status poll landing mid-append would cut a committed line out of the
    file the writer still owns, leaving a seq gap that poisons every
    later load (progress stuck at 0) and any future resume."""

    def _job_with_manifest(self, tmp_path: Path, raw: bytes):
        from repro.serve.jobs import Job

        job = Job("job-000001", JobSpec(), tmp_path / "job-000001")
        job.checkpoint_dir.mkdir(parents=True)
        path = job.checkpoint_dir / "manifest.jsonl"
        path.write_bytes(raw)
        return job, path

    def test_torn_tail_is_ignored_not_truncated(self, tmp_path: Path):
        raw = (
            b'{"format": "repro-checkpoint", "version": 1}\n'
            b'{"seq": 0, "day": 1, "rows": 12}\n'
            b'{"seq": 1, "day": 2, "ro'  # append in flight: no newline
        )
        job, path = self._job_with_manifest(tmp_path, raw)
        assert job.checks_done() == 12
        assert path.read_bytes() == raw, (
            "a progress read modified the manifest"
        )

    def test_complete_manifest_sums_all_rows(self, tmp_path: Path):
        raw = (
            b'{"format": "repro-checkpoint", "version": 1}\n'
            b'{"seq": 0, "day": 1, "rows": 12}\n'
            b'{"seq": 1, "day": 2, "rows": 9}\n'
        )
        job, _ = self._job_with_manifest(tmp_path, raw)
        assert job.checks_done() == 21
