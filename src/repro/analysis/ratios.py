"""Per-domain variation counts and magnitude distributions.

Inputs to Fig. 1 (how many checks per domain showed variation), Fig. 2
(distribution of max/min ratios per domain, crowdsourced) and Fig. 4 (same,
crawled).
"""

from __future__ import annotations

from collections import Counter
from typing import Sequence

from repro.analysis.stats import BoxStats, grouped_box_stats
from repro.core.reports import PriceCheckReport
from repro.store import as_table_slice

__all__ = ["domain_variation_counts", "domain_ratio_stats", "domain_ratios"]


def domain_variation_counts(reports: Sequence[PriceCheckReport]) -> Counter:
    """domain -> number of reports whose variation beat the guard (Fig. 1)."""
    counts: Counter = Counter()
    sliced = as_table_slice(reports)
    if sliced is not None:
        table = sliced.table
        ratio, guard, domain_id = table.ratio, table.guard, table.domain_id
        value = table.domains.value
        for i in sliced.rows:
            r = ratio[i]
            if r is not None and r > guard[i]:
                counts[value(domain_id[i])] += 1
        return counts
    for report in reports:
        if report.has_variation:
            counts[report.domain] += 1
    return counts


def domain_ratios(
    reports: Sequence[PriceCheckReport], *, only_variation: bool = False
) -> dict[str, list[float]]:
    """domain -> all observed max/min ratios.

    With ``only_variation`` the lists are restricted to guard-beating
    checks (Fig. 2 plots ratios *of the checks with differences*); without
    it every well-formed check contributes (Fig. 4 pools the full crawl).
    """
    sliced = as_table_slice(reports)
    if sliced is not None:
        table = sliced.table
        ratio, guard, domain_id = table.ratio, table.guard, table.domain_id
        value = table.domains.value
        grouped: dict[int, list[float]] = {}
        for i in sliced.rows:
            r = ratio[i]
            if r is None:
                continue
            if only_variation and r <= guard[i]:
                continue
            grouped.setdefault(domain_id[i], []).append(r)
        return {value(did): values for did, values in grouped.items()}
    out: dict[str, list[float]] = {}
    for report in reports:
        ratio = report.ratio
        if ratio is None:
            continue
        if only_variation and not report.has_variation:
            continue
        out.setdefault(report.domain, []).append(ratio)
    return out


def domain_ratio_stats(
    reports: Sequence[PriceCheckReport],
    *,
    only_variation: bool = False,
    min_samples: int = 1,
) -> dict[str, BoxStats]:
    """domain -> box statistics of the max/min ratio (Figs. 2 and 4)."""
    if min_samples < 1:
        raise ValueError("min_samples must be >= 1")
    ratios = domain_ratios(reports, only_variation=only_variation)
    return grouped_box_stats(ratios, min_samples=min_samples)
