"""Whole-system integration tests: the paper's pipeline, front to back.

These are the "does the story hold together" tests: crowd discovery feeds
crawl planning, the crawl feeds the analyses, and the headline conclusions
drop out -- on a freshly built world, not the shared fixtures.
"""

from __future__ import annotations

import pytest

from repro.analysis import (
    clean_reports,
    domain_ratio_stats,
    finland_profile,
    location_ratio_stats,
    variation_extent,
)
from repro.analysis.cleaning import split_by_user_agreement
from repro.core.backend import SheriffBackend
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.crawler.plan import select_domains_from_crowd
from repro.crowd import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, build_world


@pytest.fixture(scope="module")
def pipeline():
    """One full crowd -> plan -> crawl -> clean pipeline."""
    world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=30))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    crowd = run_campaign(
        world, backend, CampaignConfig(n_checks=200, population_size=80, seed=5)
    )
    domains = select_domains_from_crowd(
        crowd,
        min_flagged=1,
        max_retailers=21,
        carry_overs=[d for d in world.crawled_domains],
    )
    plan = build_plan(world, domains=domains, products_per_retailer=8, seed=5)
    crawl = run_crawl(world, backend, plan, CrawlConfig(days=2))
    clean = clean_reports(crawl.reports, world.rates)
    return world, backend, crowd, plan, crawl, clean


class TestDiscoveryFeedsCrawl:
    def test_crowd_discovers_real_discriminators(self, pipeline):
        world, _, crowd, plan, _, _ = pipeline
        flagged = set(crowd.variation_counts())
        # No honest long-tail shop is ever selected for the crawl.
        assert not (set(plan.domains) & set(world.long_tail))
        # The crawl contains crowd-discovered shops.
        assert flagged & set(plan.domains)

    def test_crawl_has_21_targets(self, pipeline):
        _, _, _, plan, _, _ = pipeline
        assert len(plan) == 21


class TestConclusionsHold:
    def test_variation_shops_have_full_extent(self, pipeline):
        world, _, _, _, _, clean = pipeline
        extent = variation_extent(clean.kept)
        assert extent.get("www.digitalrev.com", 0) >= 0.9
        assert extent.get("www.misssixty.com", 0) >= 0.9

    def test_magnitudes_in_paper_band(self, pipeline):
        _, _, _, _, _, clean = pipeline
        stats = domain_ratio_stats(clean.kept, only_variation=True)
        medians = [s.median for s in stats.values()]
        assert medians
        in_band = [m for m in medians if 1.05 <= m <= 1.8]
        assert len(in_band) >= 0.8 * len(medians)

    def test_finland_dearest(self, pipeline):
        _, _, _, _, _, clean = pipeline
        stats = location_ratio_stats(clean.kept)
        fi = stats["Finland - Tampere"]
        assert fi.median >= max(
            s.median for name, s in stats.items() if name != "Finland - Tampere"
        )

    def test_finland_exceptions(self, pipeline):
        _, _, _, _, _, clean = pipeline
        varied = [r for r in clean.kept if r.has_variation]
        profile = finland_profile(varied)
        cheap = {d for d, s in profile.items() if s.median <= 1.02}
        assert cheap <= {"www.mauijim.com", "www.tuscanyleather.it"}

    def test_crowd_agreement_mostly_clean(self, pipeline):
        world, _, crowd, _, _, _ = pipeline
        agreeing, disagreeing = split_by_user_agreement(crowd.records, world.rates)
        # Only referral-discounted checks may disagree (p_referred=5%).
        assert len(disagreeing) <= 0.15 * len(crowd.records)


class TestDeterminism:
    def test_same_seed_same_crowd_outcome(self):
        def run_once():
            world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=5))
            backend = SheriffBackend(
                world.network, world.vantage_points, world.rates
            )
            crowd = run_campaign(
                world, backend,
                CampaignConfig(n_checks=40, population_size=25, seed=11),
            )
            return sorted(crowd.variation_counts().items())

        assert run_once() == run_once()

    def test_different_seed_different_outcome(self):
        def run_once(seed):
            world = build_world(
                WorldConfig(seed=seed, catalog_scale=0.15, long_tail_domains=5)
            )
            backend = SheriffBackend(
                world.network, world.vantage_points, world.rates
            )
            crowd = run_campaign(
                world, backend,
                CampaignConfig(n_checks=40, population_size=25, seed=seed),
            )
            return sorted((r.domain, r.day_index) for r in crowd.records)

        assert run_once(1) != run_once(2)
