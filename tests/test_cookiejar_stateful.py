"""Stateful property test of the cookie jar against a model.

The jar carries every personal-information signal in the system (logins,
personas, A/B buckets), so its semantics get a rule-based hypothesis
machine: arbitrary interleavings of set/expire/clear must match a plain
dict model keyed by (host, name, path).
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import Bundle, RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.net.cookiejar import CookieJar
from repro.net.http import SetCookie
from repro.net.urls import URL

_HOSTS = ("a.example", "b.example")
_NAMES = ("session", "auth", "bucket")
_PATHS = ("/", "/shop")


class CookieJarMachine(RuleBasedStateMachine):
    """Model-based test: CookieJar == dict[(host, name, path) -> value]."""

    def __init__(self) -> None:
        super().__init__()
        self.jar = CookieJar()
        self.model: dict[tuple[str, str, str], tuple[str, float | None]] = {}
        self.now = 0.0

    @rule(
        host=st.sampled_from(_HOSTS),
        name=st.sampled_from(_NAMES),
        path=st.sampled_from(_PATHS),
        value=st.text(alphabet="abc123", min_size=1, max_size=6),
        max_age=st.one_of(st.none(), st.integers(min_value=1, max_value=500)),
    )
    def set_cookie(self, host, name, path, value, max_age):
        self.jar.set(
            host, SetCookie(name, value, path=path, max_age=max_age),
            now=self.now,
        )
        expires = None if max_age is None else self.now + max_age
        self.model[(host, name, path)] = (value, expires)

    @rule(
        host=st.sampled_from(_HOSTS),
        name=st.sampled_from(_NAMES),
        path=st.sampled_from(_PATHS),
    )
    def delete_cookie(self, host, name, path):
        self.jar.set(host, SetCookie(name, "", path=path, max_age=0), now=self.now)
        self.model.pop((host, name, path), None)

    @rule(host=st.sampled_from(_HOSTS))
    def clear_host(self, host):
        self.jar.clear(host)
        self.model = {k: v for k, v in self.model.items() if k[0] != host}

    @rule(delta=st.floats(min_value=0.5, max_value=300.0))
    def advance_time(self, delta):
        self.now += delta

    @invariant()
    def header_matches_model(self):
        for host in _HOSTS:
            url = URL.parse(f"http://{host}/shop/item")
            header = self.jar.header_for(url, now=self.now) or ""
            # The jar may send one name at two paths; RFC 6265 orders the
            # most specific path first and servers take the first value.
            sent: dict[str, str] = {}
            for pair in header.split("; "):
                if "=" in pair:
                    name, value = pair.split("=", 1)
                    sent.setdefault(name, value)
            expected: dict[str, str] = {}
            # Path "/" and "/shop" both match /shop/item; the narrower path
            # wins per name, so the model applies "/" first and lets
            # "/shop" overwrite.
            for path in ("/", "/shop"):
                for (h, name, p), (value, expires) in self.model.items():
                    if h != host or p != path:
                        continue
                    if expires is not None and self.now >= expires:
                        continue
                    expected[name] = value
            assert sent == expected, (sent, expected)


TestCookieJarMachine = CookieJarMachine.TestCase
TestCookieJarMachine.settings = settings(
    max_examples=40, stateful_step_count=30, deadline=None
)
