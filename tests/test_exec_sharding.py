"""Sharded execution: partition stability and byte-identical merges.

The executor contract (``docs/ARCHITECTURE.md``): a crawl or campaign
executed across N worker shards serializes to exactly the bytes of the
sequential run, for any N, in-process or across processes.  These tests
assert the contract end to end -- dataset serialization compared as
strings -- plus the pieces it rests on: stable shard assignment across
processes, order-preserving partitions, and store-state equivalence.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.backend import CheckRequest, ScheduledCheck, SheriffBackend

# The byte-identity suites below re-run whole crawls/campaigns per
# worker count: full tier only (docs/TESTING.md).  The ShardPlan /
# ExecConfig unit tests stay in the fast tier.
slow = pytest.mark.slow
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.crowd import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, WorldSpec, build_world
from repro.exec import (
    CostAwarePlanner,
    ExecConfig,
    ExecError,
    LocalExecutor,
    ProcessExecutor,
    ShardPlan,
    make_planner,
)
from repro.exec.plan import LIVE_CHECK_COST, MEMO_HIT_COST
from repro.io import report_to_dict


def _tiny_world():
    return build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0))


def _anchor(world, domain):
    from repro.analysis.personal import derive_anchor_for_domain

    return derive_anchor_for_domain(world, domain)


def _crawl_blob(exec_config, *, loss_rate=0.0, memo=True) -> tuple[str, tuple]:
    """Serialize a small same-seed crawl plus a store signature."""
    world = build_world(
        WorldConfig(catalog_scale=0.15, long_tail_domains=0, loss_rate=loss_rate)
    )
    backend = SheriffBackend(
        world.network, world.vantage_points, world.rates, burst_memo=memo
    )
    plan = build_plan(
        world, domains=world.crawled_domains[:5], products_per_retailer=4
    )
    dataset = run_crawl(
        world, backend, plan, CrawlConfig(days=2), exec_config=exec_config
    )
    blob = json.dumps(
        [report_to_dict(r) for r in dataset.reports], sort_keys=True
    )
    store = backend.store
    signature = (
        len(store),
        store.retained_html_count(),
        store.unique_html_count(),
        [(p.check_id, p.vantage, p.timestamp, p.html) for p in store],
    )
    return blob, signature


def _campaign_blob(exec_config) -> str:
    world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=10))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    dataset = run_campaign(
        world,
        backend,
        CampaignConfig(n_checks=40, population_size=20, seed=11),
        exec_config=exec_config,
    )
    rows = []
    for record in dataset:
        rows.append({
            "user": record.user_id,
            "day": record.day_index,
            "domain": record.domain,
            "url": record.url,
            "failure": record.outcome.failure,
            "user_amount": record.outcome.user_amount,
            "report": report_to_dict(record.report) if record.report else None,
        })
    return json.dumps(rows, sort_keys=True)


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_partition_covers_all_and_preserves_order(self):
        world = _tiny_world()
        anchor = _anchor(world, "www.digitalrev.com")
        domains = world.crawled_domains[:6]
        scheduled = []
        index = 0
        for _ in range(3):  # interleave domains, like a crawl day does
            for domain in domains:
                product = world.retailer(domain).catalog.products[0]
                scheduled.append(ScheduledCheck(
                    index=index,
                    check_id=f"chk{index:07d}",
                    start_ts=float(index),
                    request=CheckRequest(
                        url=f"http://{domain}{product.path}", anchor=anchor
                    ),
                ))
                index += 1
        plan = ShardPlan(4)
        shards = plan.partition(scheduled)
        assert len(shards) == 4
        flat = [sched.index for shard in shards for sched in shard]
        assert sorted(flat) == list(range(len(scheduled)))
        for shard in shards:  # submission order survives inside a shard
            assert [s.index for s in shard] == sorted(s.index for s in shard)

    def test_shards_own_disjoint_retailers(self):
        plan = ShardPlan(3)
        domains = [f"www.shop{i}.example" for i in range(60)]
        owners = {domain: plan.shard_of(domain) for domain in domains}
        assert set(owners.values()) == {0, 1, 2}  # all shards used
        # Ownership is a function of the domain alone.
        assert all(plan.shard_of(d) == owner for d, owner in owners.items())

    def test_shard_of_case_insensitive(self):
        plan = ShardPlan(5)
        assert plan.shard_of("WWW.Amazon.COM") == plan.shard_of("www.amazon.com")

    def test_stable_across_processes(self):
        """The coordinator/worker agreement the whole design rests on."""
        domains = ["www.amazon.com", "www.hotels.com", "www.digitalrev.com",
                   "store.killah.com", "www.rightstart.com"]
        local = [ShardPlan(4).shard_of(d) for d in domains]
        code = (
            "from repro.exec import ShardPlan; "
            f"print([ShardPlan(4).shard_of(d) for d in {domains!r}])"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(out.stdout) == local

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardPlan(0)


# ----------------------------------------------------------------------
# CostAwarePlanner
# ----------------------------------------------------------------------
class TestCostAwarePlanner:
    def _scheduled(self, world, domains, repeats=1):
        anchor = _anchor(world, "www.digitalrev.com")
        scheduled = []
        index = 0
        for _ in range(repeats):
            for domain in domains:
                product = world.retailer(domain).catalog.products[0]
                scheduled.append(ScheduledCheck(
                    index=index,
                    check_id=f"chk{index:07d}",
                    start_ts=float(index),
                    request=CheckRequest(
                        url=f"http://{domain}{product.path}", anchor=anchor
                    ),
                ))
                index += 1
        return scheduled

    def test_partition_covers_all_and_preserves_order(self):
        world = _tiny_world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        scheduled = self._scheduled(world, world.crawled_domains[:6], repeats=3)
        shards = CostAwarePlanner(4).partition_batch(backend, scheduled)
        assert len(shards) == 4
        flat = [sched.index for shard in shards for sched in shard]
        assert sorted(flat) == list(range(len(scheduled)))
        for shard in shards:  # submission order survives inside a shard
            assert [s.index for s in shard] == sorted(s.index for s in shard)
        # Every domain's checks live on exactly one shard.
        owners: dict[str, set] = {}
        for i, shard in enumerate(shards):
            for sched in shard:
                owners.setdefault(sched.request.url.split("/")[2], set()).add(i)
        assert all(len(shards_of) == 1 for shards_of in owners.values())

    def test_memo_repeats_priced_as_hits(self):
        """Repeats of one (url, day) burst on a memoizable retailer cost
        MEMO_HIT_COST; a live-only retailer (login support) pays full
        price every time."""
        world = _tiny_world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        memoizable, live_only = "www.digitalrev.com", "www.amazon.com"
        assert world.servers[memoizable].signature_profile() is not None
        assert world.servers[live_only].signature_profile() is None
        scheduled = self._scheduled(world, [memoizable, live_only], repeats=3)
        costs = CostAwarePlanner(2).predicted_costs(backend, scheduled)
        assert costs[memoizable] == LIVE_CHECK_COST + 2 * MEMO_HIT_COST
        assert costs[live_only] == 3 * LIVE_CHECK_COST

    def test_memo_disabled_prices_everything_live(self):
        world = _tiny_world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates, burst_memo=False
        )
        scheduled = self._scheduled(world, ["www.digitalrev.com"], repeats=3)
        costs = CostAwarePlanner(2).predicted_costs(backend, scheduled)
        assert costs["www.digitalrev.com"] == 3 * LIVE_CHECK_COST

    def test_assign_equalizes_loads_deterministically(self):
        planner = CostAwarePlanner(2)
        costs = {"a.example": 40.0, "b.example": 20.0, "c.example": 20.0}
        assignment = planner.assign(costs)
        # LPT: the big retailer gets its own shard, the two small ones
        # share the other.
        assert assignment["b.example"] == assignment["c.example"]
        assert assignment["a.example"] != assignment["b.example"]
        # Deterministic under dict-order permutations.
        permuted = planner.assign({
            "c.example": 20.0, "a.example": 40.0, "b.example": 20.0
        })
        assert permuted == assignment

    def test_cost_ties_break_by_domain_name(self):
        assignment = CostAwarePlanner(2).assign(
            {"b.example": 10.0, "a.example": 10.0}
        )
        # Equal costs: 'a' is considered first and lands on shard 0.
        assert assignment["a.example"] == 0
        assert assignment["b.example"] == 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            CostAwarePlanner(0)

    def test_make_planner(self):
        assert isinstance(make_planner("cost", 2), CostAwarePlanner)
        assert isinstance(make_planner("stable", 2), ShardPlan)
        with pytest.raises(ValueError):
            make_planner("random", 2)


# ----------------------------------------------------------------------
# ExecConfig
# ----------------------------------------------------------------------
class TestExecConfig:
    def test_defaults_are_sequential(self):
        config = ExecConfig()
        assert config.workers == 1 and config.mode == "local"
        assert config.create(_tiny_world()) is None

    def test_local_workers_create_local_executor(self):
        executor = ExecConfig(workers=3).create(_tiny_world())
        assert isinstance(executor, LocalExecutor)
        assert executor.plan.workers == 3

    def test_process_mode_creates_process_executor(self):
        executor = ExecConfig(workers=2, mode="process").create(_tiny_world())
        try:
            assert isinstance(executor, ProcessExecutor)
        finally:
            executor.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecConfig(workers=-1)
        with pytest.raises(ValueError):
            ExecConfig(mode="threads")
        with pytest.raises(ValueError):
            ExecConfig(planner="random")

    def test_workers_zero_resolves_to_cpu_count(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        resolved = ExecConfig(workers=0).resolve(_tiny_world())
        assert resolved.workers == 3
        assert resolved.mode == "local"

    def test_auto_mode_picks_local_for_memo_friendly_world(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        # The tiny test world is dominated by signature-pure retailers:
        # most checks replay from the memo, so auto stays local.
        resolved = ExecConfig(workers=0, mode="auto").resolve(_tiny_world())
        assert resolved.workers == 4
        assert resolved.mode == "local"

    def test_auto_mode_crosses_to_process_for_live_heavy_world(
        self, monkeypatch
    ):
        from repro.exec.plan import _live_work_share

        monkeypatch.setattr(os, "cpu_count", lambda: 4)
        world = _tiny_world()
        monkeypatch.setattr(
            "repro.exec.plan._live_work_share", lambda w: 0.9
        )
        resolved = ExecConfig(workers=0, mode="auto").resolve(world)
        assert resolved.mode == "process"
        # sanity: the real share function returns a fraction
        assert 0.0 <= _live_work_share(world) <= 1.0


# ----------------------------------------------------------------------
# Byte identity: crawl
# ----------------------------------------------------------------------
@slow
class TestCrawlByteIdentity:
    def test_local_workers_1_2_4_identical(self):
        """The acceptance criterion: same-seed crawls at workers 1/2/4
        serialize to identical bytes (and identical archived stores)."""
        base_blob, base_store = _crawl_blob(None)
        for workers in (1, 2, 4):
            blob, store = _crawl_blob(ExecConfig(workers=workers))
            assert blob == base_blob, f"workers={workers} diverged"
            assert store == base_store, f"workers={workers} store diverged"

    def test_process_workers_identical(self):
        base_blob, base_store = _crawl_blob(None)
        blob, store = _crawl_blob(ExecConfig(workers=2, mode="process"))
        assert blob == base_blob
        assert store == base_store

    def test_identity_survives_packet_loss(self):
        """Loss draws are per-request, so retries/failures land on the
        same fetches in every execution mode."""
        base_blob, _ = _crawl_blob(None, loss_rate=0.10)
        blob, _ = _crawl_blob(ExecConfig(workers=3), loss_rate=0.10)
        assert blob == base_blob

    def test_planner_memo_executor_grid_identical(self):
        """The PR-8 acceptance grid: executor x workers x memo x planner
        all serialize to the sequential baseline's bytes."""
        base_blob, base_store = _crawl_blob(None)
        for planner in ("cost", "stable"):
            for mode in ("local", "process"):
                for workers in (1, 2, 4):
                    for memo in (True, False):
                        config = ExecConfig(
                            workers=workers, mode=mode, planner=planner
                        )
                        blob, store = _crawl_blob(config, memo=memo)
                        label = f"{mode}x{workers}/{planner}/memo={memo}"
                        assert blob == base_blob, f"{label} diverged"
                        assert store == base_store, f"{label} store diverged"


# ----------------------------------------------------------------------
# Byte identity: campaign
# ----------------------------------------------------------------------
@slow
class TestCampaignByteIdentity:
    def test_local_workers_identical(self):
        base = _campaign_blob(None)
        for workers in (2, 4):
            assert _campaign_blob(ExecConfig(workers=workers)) == base

    def test_process_workers_identical(self):
        base = _campaign_blob(None)
        assert _campaign_blob(ExecConfig(workers=2, mode="process")) == base

    def test_planners_identical(self):
        base = _campaign_blob(None)
        for planner in ("cost", "stable"):
            config = ExecConfig(workers=2, mode="process", planner=planner)
            assert _campaign_blob(config) == base, planner
            config = ExecConfig(workers=3, planner=planner)
            assert _campaign_blob(config) == base, planner


# ----------------------------------------------------------------------
# Executor seams
# ----------------------------------------------------------------------
@slow
class TestExecutorSeams:
    def test_caller_owned_executor_reused_across_days(self):
        base_blob, _ = _crawl_blob(None)
        world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0))
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        plan = build_plan(
            world, domains=world.crawled_domains[:5], products_per_retailer=4
        )
        executor = LocalExecutor(2)
        dataset = run_crawl(
            world, backend, plan, CrawlConfig(days=2), executor=executor
        )
        blob = json.dumps(
            [report_to_dict(r) for r in dataset.reports], sort_keys=True
        )
        assert blob == base_blob

    def test_exec_config_and_executor_are_exclusive(self):
        world = _tiny_world()
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        plan = build_plan(
            world, domains=world.crawled_domains[:1], products_per_retailer=2
        )
        with pytest.raises(ValueError):
            run_crawl(
                world, backend, plan, CrawlConfig(days=1),
                exec_config=ExecConfig(workers=2),
                executor=LocalExecutor(2),
            )

    def test_start_times_must_match_requests(self):
        world = _tiny_world()
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        anchor = _anchor(world, "www.digitalrev.com")
        product = world.retailer("www.digitalrev.com").catalog.products[0]
        request = CheckRequest(
            url=f"http://www.digitalrev.com{product.path}", anchor=anchor
        )
        with pytest.raises(ValueError):
            backend.check_batch([request, request], start_times=[1.0])

    def test_process_executor_rejects_foreign_fleet(self):
        world = _tiny_world()
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        anchor = _anchor(world, "www.digitalrev.com")
        product = world.retailer("www.digitalrev.com").catalog.products[0]
        request = CheckRequest(
            url=f"http://www.digitalrev.com{product.path}", anchor=anchor
        )
        with ProcessExecutor(world, 2) as executor:
            with pytest.raises(ExecError):
                backend.check_batch(
                    [request],
                    vantage_points=world.vantage_points[:3],
                    executor=executor,
                )

    def test_world_spec_round_trip(self):
        world = _tiny_world()
        spec = world.spec()
        assert spec == WorldSpec(config=world.config)
        rebuilt = spec.build()
        assert rebuilt.crawled_domains == world.crawled_domains
        assert [vp.name for vp in rebuilt.vantage_points] == [
            vp.name for vp in world.vantage_points
        ]
