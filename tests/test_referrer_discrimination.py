"""Referrer-dependent pricing and the user-agreement cleaning filter."""

from __future__ import annotations

import pytest

from repro.analysis.cleaning import split_by_user_agreement
from repro.core.backend import SheriffBackend
from repro.core.extension import SheriffExtension, UserClient
from repro.crowd.campaign import CampaignConfig, run_campaign
from repro.ecommerce.catalog import Product
from repro.ecommerce.pricing import PricingContext, ReferrerDiscount, UniformPricing
from repro.ecommerce.world import WorldConfig, build_world
from repro.htmlmodel.selectors import Selector
from repro.net.geoip import GeoLocation
from repro.net.useragent import profile_for

AGGREGATOR = "http://www.pricegrabber.com/search?q=stapler"


def product(price: float = 100.0) -> Product:
    return Product(sku="S1", name="Thing", category="office",
                   base_price_usd=price, path="/product/S1")


class TestReferrerDiscountPolicy:
    def test_discount_applies_with_matching_referer(self):
        policy = ReferrerDiscount(UniformPricing(), discount=0.1)
        ctx = PricingContext(country_code="US", referer=AGGREGATOR)
        assert policy.price(product(100), ctx) == pytest.approx(90.0)

    def test_no_referer_no_discount(self):
        policy = ReferrerDiscount(UniformPricing(), discount=0.1)
        ctx = PricingContext(country_code="US")
        assert policy.price(product(100), ctx) == 100.0

    def test_unrelated_referer_no_discount(self):
        policy = ReferrerDiscount(UniformPricing(), discount=0.1)
        ctx = PricingContext(country_code="US", referer="http://blog.example/")
        assert policy.price(product(100), ctx) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ReferrerDiscount(UniformPricing(), discount=1.0)
        with pytest.raises(ValueError):
            ReferrerDiscount(UniformPricing(), referer_substring="")


class TestEndToEnd:
    def _user(self, world) -> UserClient:
        return UserClient(
            name="bargain-hunter",
            location=GeoLocation("US", "USA", "Boston"),
            ip=world.plan.allocate("US", "Boston"),
            profile=profile_for("chrome", "windows"),
        )

    def test_referred_user_disagrees_with_fleet(self, fresh_world):
        """The user sees the discounted price; the fan-out (bare URI, no
        Referer) sees the list price -- a detectable mismatch."""
        world = fresh_world
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        extension = SheriffExtension(backend, world.network)
        retailer = world.retailer("www.staples.com")
        item = retailer.catalog.products[0]
        finder = Selector.parse(retailer.template.price_selector).select_one

        url = f"http://www.staples.com{item.path}"
        referred = extension.check_product(
            self._user(world), url, finder, referer=AGGREGATOR
        )
        direct = extension.check_product(self._user(world), url, finder)
        assert referred.ok and direct.ok
        assert referred.user_amount == pytest.approx(
            direct.user_amount * 0.92, rel=0.01
        )
        # The fleet's Boston observation equals the *direct* price.
        boston = referred.report.observation_for("USA - Boston")
        assert boston is not None and boston.usd == pytest.approx(
            direct.user_amount, rel=0.01
        )

    def test_agreement_filter_separates_referred_checks(self, fresh_world):
        world = fresh_world
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        extension = SheriffExtension(backend, world.network)
        retailer = world.retailer("www.staples.com")
        finder = Selector.parse(retailer.template.price_selector).select_one

        from repro.crowd.dataset import CheckRecord, CrowdDataset

        dataset = CrowdDataset()
        for index, item in enumerate(retailer.catalog.products[:6]):
            referer = AGGREGATOR if index % 2 == 0 else None
            outcome = extension.check_product(
                self._user(world), f"http://www.staples.com{item.path}",
                finder, referer=referer,
            )
            dataset.add(CheckRecord(
                user_id=f"u{index}", user_country="US", day_index=0,
                domain="www.staples.com",
                url=outcome.url, outcome=outcome,
            ))
        agreeing, disagreeing = split_by_user_agreement(
            dataset.records, world.rates
        )
        assert len(disagreeing) == 3  # exactly the referred checks
        assert all(
            record.user_id in {"u0", "u2", "u4"} for record in disagreeing
        )

    def test_campaign_with_referrals_still_clean(self):
        """Campaign-level: referral noise exists but the agreement filter
        keeps the flagged-domain statistics intact."""
        world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=5))
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        dataset = run_campaign(world, backend, CampaignConfig(
            n_checks=60, population_size=30, seed=17, p_referred=0.3,
        ))
        agreeing, disagreeing = split_by_user_agreement(
            dataset.records, world.rates
        )
        assert len(agreeing) + len(disagreeing) == 60
        # Disagreements concentrate on the referrer-discriminating shop.
        if disagreeing:
            domains = {record.domain for record in disagreeing}
            assert domains <= {"www.staples.com"}

    def test_tolerance_validation(self, fresh_world):
        with pytest.raises(ValueError):
            split_by_user_agreement([], fresh_world.rates, tolerance=-0.1)
