"""Multi-process shard execution.

:class:`ProcessExecutor` fans a batch's shards out to **dedicated**
persistent worker processes -- worker *i* always executes shard *i*, over
a private pipe, for the executor's whole lifetime.  A worker never
receives live simulation objects -- no DOM trees, servers, or networks
cross the process boundary.  Instead it receives:

* the world's :class:`~repro.ecommerce.world.WorldSpec` (a few config
  primitives, shipped on the worker's first batch only) from which it
  regrows an equivalent world once per process and caches it,
* the shard's :class:`~repro.core.backend.ScheduledCheck` slice (URLs,
  anchors, pre-assigned check ids and start times), and
* **deltas** of everything stateful: per-domain session state (each
  vantage point's cookies for the domain plus the retailer server's
  :meth:`~repro.ecommerce.retailer.RetailerServer.session_state` dict)
  only for domains whose state changed since the worker last saw them,
  and the master burst memo's new entries/demotions for the shard's
  domains.

Because every stochastic draw in the simulation is keyed by request
identity rather than arrival order (see ``docs/ARCHITECTURE.md``), the
rebuilt world plus the restored session state reproduce each check
bit-for-bit.  The worker sends back reports, archives in compact form
(page bodies travel once per worker, by content hash), the post-batch
session-state *deltas*, and what its burst cache learned --
new entries, demotions, counter deltas.  The coordinator folds the
session state into its own world, folds the memo updates into the master
:class:`~repro.core.burstcache.BurstCache` (so the next batch ships them
to every other worker and ``stats()`` counts the whole fleet), and
replays archives in plan order: the next day's batch starts from exactly
the history a sequential run would have written.

Supervision
-----------

Worker death (pipe EOF / broken pipe / process exit) and hangs (a shard
blowing through a deadline scaled by
:func:`~repro.exec.plan.predicted_batch_cost`) are *recovered*, not
fatal: the coordinator discards the failed attempt wholesale, respawns a
replacement worker, and re-dispatches the same shard batch to it.  A
fresh worker starts with an empty ledger, so the ordinary delta payload
naturally degenerates to the **full** state ship -- spec, every session
blob, every memo entry/demotion for the shard's domains -- and because a
dead worker's partial journals and counters died unfolded, the re-run
counts every hit/miss/store exactly once.  Output stays byte-identical
to the fault-free run; the chaos harness (``tests/test_worker_chaos.py``)
proves it under arbitrary fault schedules.  Each shard carries a bounded
restart budget with exponential backoff; a shard that keeps killing its
workers is quarantined -- its checks run inline on the coordinator with
a structured warning on the ``repro.exec`` logger -- so a poison shard
degrades throughput, never the run.

All boundary pickles use the highest protocol;
:meth:`ProcessExecutor.boundary_stats` reports how much time and traffic
the boundary actually cost, and :meth:`ProcessExecutor.supervision_stats`
reports fleet health (restarts, hang kills, quarantines, recovery ms).
"""

from __future__ import annotations

import hashlib
import logging
import multiprocessing
import os
import pickle
import signal
import sys
import threading
import time
import traceback
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.checkpoint.barriers import WORKER_RESPAWN, barrier
from repro.ecommerce.world import WorldSpec
from repro.exec.local import merge_in_plan_order
from repro.exec.plan import ExecError, make_planner, predicted_batch_cost
from repro.net.urls import URL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ScheduledCheck, SheriffBackend
    from repro.core.reports import PriceCheckReport
    from repro.ecommerce.world import World
    from repro.net.vantage import VantagePoint

__all__ = [
    "FAULT_POINTS",
    "FleetHealthScope",
    "ProcessExecutor",
    "fleet_health",
    "install_fault_hook",
    "reset_fleet_health",
]

_PROTOCOL = pickle.HIGHEST_PROTOCOL

logger = logging.getLogger("repro.exec")

#: Per-process memo of rebuilt worlds: spec -> (world, backend).  A
#: dedicated worker serves many shard batches over a crawl's lifetime;
#: the expensive regrow from the spec happens once per (process, spec).
_WORKER_WORLDS: dict[WorldSpec, tuple] = {}

#: Cumulative world builds in this process -- the coordinator surfaces it
#: per worker (:meth:`ProcessExecutor.worker_worlds_built`) so tests can
#: pin "regrown exactly once".
_WORLDS_BUILT = 0

#: Worker side of the archive dedup: content hashes already shipped to
#: the coordinator.  A page body crosses the boundary at most once per
#: worker process; later archives reference it by hash.
_SHIPPED_HASHES: set[bytes] = set()

#: Worker side of the session-state dedup: domain -> last blob this
#: worker either received from the coordinator or reported back.  Only
#: domains whose post-batch blob differs are returned.
_SESSION_BLOBS: dict[str, bytes] = {}

#: The spec this dedicated worker serves.  A worker belongs to exactly
#: one executor (one world), so the coordinator ships the spec on the
#: first batch only and ``None`` thereafter.
_CURRENT_SPEC: Optional[WorldSpec] = None


def _worker_world(spec: WorldSpec):
    from repro.core.backend import SheriffBackend

    global _WORLDS_BUILT
    cached = _WORKER_WORLDS.get(spec)
    if cached is None:
        world = spec.build()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        cached = (world, backend)
        _WORKER_WORLDS[spec] = cached
        _WORLDS_BUILT += 1
    return cached


def _page_hash(html: str) -> bytes:
    return hashlib.blake2b(html.encode("utf-8"), digest_size=16).digest()


# ----------------------------------------------------------------------
# Fault injection: the chaos harness's seam into worker execution
# ----------------------------------------------------------------------
#: Fault points a hook may inject into a shard dispatch.  ``before-batch``,
#: ``mid-batch``, and ``after-batch`` SIGKILL the worker at that moment
#: of the batch; ``hang`` makes it sleep past any deadline; ``raise`` /
#: ``raise-unpicklable`` throw (the second with an exception that
#: refuses to pickle, exercising the relay fallback).
FAULT_POINTS = (
    "before-batch", "mid-batch", "after-batch",
    "hang", "raise", "raise-unpicklable",
)

_fault_hook: Optional[Callable[[int, int], Optional[str]]] = None


def install_fault_hook(
    hook: Optional[Callable[[int, int], Optional[str]]],
) -> Optional[Callable[[int, int], Optional[str]]]:
    """Install a worker-fault hook; returns the previous one.

    The hook is consulted by the coordinator at every shard dispatch
    (including re-dispatches after a recovery) with ``(worker_index,
    batch_index)`` and returns a :data:`FAULT_POINTS` name to inject
    into that dispatch, or ``None``.  Pass ``None`` to uninstall.  This
    mirrors :func:`repro.checkpoint.barriers.install_barrier_hook`: a
    production run pays one global read per dispatch.
    """
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    return previous


class _UnpicklableFault(RuntimeError):
    """Deliberately refuses to pickle (exercises the relay fallback)."""

    def __reduce__(self):
        raise TypeError("this exception does not pickle")


def _die() -> None:
    """SIGKILL this worker process -- no cleanup, exactly like a crash."""
    os.kill(os.getpid(), signal.SIGKILL)


# ----------------------------------------------------------------------
# Session state: the one definition of "state", as a per-domain blob
# ----------------------------------------------------------------------
def _domain_blob(fleet, servers, domain: str) -> bytes:
    """One domain's session state, canonically pickled.

    Blob equality is the boundary's change detector, so both sides must
    build it identically: the fleet's cookie snapshots for the domain in
    fleet order, then the owning server's
    :meth:`~repro.ecommerce.retailer.RetailerServer.session_state` dict
    (``None`` for non-retailer domains).  A stateful server subclass
    extends the SPI once and both sides of the boundary pick it up --
    anything stateful that bypasses the SPI silently diverges between
    worker and coordinator.
    """
    jars = [vantage.jar.snapshot(hosts={domain}) for vantage in fleet]
    server = servers.get(domain)
    state = server.session_state() if server is not None else None
    return pickle.dumps((jars, state), protocol=_PROTOCOL)


def _install_domain_blob(fleet, servers, domain: str, blob: bytes) -> None:
    """Install one domain's session state from its blob (either side)."""
    jars, state = pickle.loads(blob)
    for vantage, snapshot in zip(fleet, jars):
        vantage.jar.clear(domain)
        vantage.jar.restore(snapshot)
    if state is not None:
        server = servers.get(domain)
        if server is not None:
            server.restore_session_state(state)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _run_shard(payload: dict) -> dict:
    """Execute one shard batch in a worker process.

    Returns reports with compact archives (``(vantage, timestamp,
    content hash)`` triples plus any page bodies not yet shipped), the
    post-batch session-state deltas, and the worker cache's drained
    updates.
    """
    global _CURRENT_SPEC
    fault = payload.get("fault")
    if fault == "before-batch":
        _die()
    elif fault == "hang":
        while True:  # the coordinator's deadline kills us
            time.sleep(60)
    elif fault == "raise":
        raise RuntimeError("injected worker fault: raise")
    elif fault == "raise-unpicklable":
        raise _UnpicklableFault("injected worker fault: raise-unpicklable")
    spec: Optional[WorldSpec] = payload["spec"]
    if spec is None:
        spec = _CURRENT_SPEC
        if spec is None:  # pragma: no cover - coordinator bug
            raise RuntimeError("shard payload omitted the spec before "
                               "this worker ever received one")
    else:
        _CURRENT_SPEC = spec
    tasks: list = payload["tasks"]
    domains: list[str] = payload["domains"]
    world, backend = _worker_world(spec)
    fleet = world.vantage_points
    # Mirror the coordinator's burst-memo configuration; entries and
    # demotions arrive as explicit deltas below.
    memo = payload["burst_memo"]
    cache = backend.burst_cache
    cache.enabled = memo["enabled"]
    cache.validate_fraction = memo["validate_fraction"]
    cache.max_entries_per_domain = memo["max_entries_per_domain"]

    # Fold the master cache's news -- demotions strictly first, so an
    # entry can never survive (or arrive for) a domain another worker
    # proved impure.
    for domain, reason in payload["memo_demotions"].items():
        cache.fold_demotion(domain, reason)
    for domain, key, entry in payload["memo_entries"]:
        cache.fold_entry(backend, domain, key, entry)

    # Install the session-state deltas; untouched domains already hold
    # exactly the state this worker left (or reported) last batch.
    for domain, blob in payload["session"].items():
        _install_domain_blob(fleet, world.servers, domain, blob)
        _SESSION_BLOBS[domain] = blob
    for domain in domains:
        if domain not in _SESSION_BLOBS:
            _SESSION_BLOBS[domain] = _domain_blob(
                fleet, world.servers, domain
            )

    kill_after = max(1, len(tasks) // 2) if fault == "mid-batch" else None
    results = []
    new_pages: dict[bytes, str] = {}
    for done, sched in enumerate(tasks, start=1):
        archives: list[tuple] = []

        def archive(*, check_id, url, domain, vantage, timestamp, html):
            digest = _page_hash(html)
            if digest not in _SHIPPED_HASHES:
                _SHIPPED_HASHES.add(digest)
                new_pages[digest] = html
            archives.append((vantage, timestamp, digest))

        report = backend.run_scheduled_check(sched, fleet, archive)
        results.append((sched.index, report, archives))
        if kill_after is not None and done >= kill_after:
            _die()

    session_out: dict[str, bytes] = {}
    for domain in domains:
        blob = _domain_blob(fleet, world.servers, domain)
        if blob != _SESSION_BLOBS.get(domain):
            session_out[domain] = blob
            _SESSION_BLOBS[domain] = blob
    if fault == "after-batch":
        # Every task ran, every journal is full -- and none of it will
        # ever reach the coordinator.
        _die()
    return {
        "results": results,
        "pages": new_pages,
        "session": session_out,
        "memo": cache.drain_updates(),
        "worlds_built": _WORLDS_BUILT,
    }


def _reset_worker_state() -> None:
    """Start a worker process from a clean slate.

    Under the fork start method the child inherits this module's
    globals from the coordinator process -- including state left behind
    by any in-process `_run_shard` call (tests do this).  An inherited
    `_SHIPPED_HASHES` entry would make the worker skip shipping a page
    body the coordinator never received; an inherited world would carry
    foreign session state.  Everything per-process starts empty.
    """
    global _WORLDS_BUILT, _CURRENT_SPEC
    _WORKER_WORLDS.clear()
    _SHIPPED_HASHES.clear()
    _SESSION_BLOBS.clear()
    _WORLDS_BUILT = 0
    _CURRENT_SPEC = None


def _worker_main(conn) -> None:
    """Dedicated worker loop: receive a payload, run the shard, reply.

    Exceptions travel back pickled (falling back to a stringified
    traceback when the exception itself will not pickle) so the
    coordinator re-raises the real type --
    :class:`~repro.core.burstcache.BurstCacheDivergence` stays loud
    across the boundary.
    """
    _reset_worker_state()
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except EOFError:
                break
            payload = pickle.loads(blob)
            if payload is None:
                break
            try:
                result = _run_shard(payload)
            except BaseException as exc:  # noqa: BLE001 - relayed, not hidden
                try:
                    reply = pickle.dumps({"error": exc}, protocol=_PROTOCOL)
                except Exception:
                    reply = pickle.dumps(
                        {"error": RuntimeError(traceback.format_exc())},
                        protocol=_PROTOCOL,
                    )
                conn.send_bytes(reply)
                continue
            conn.send_bytes(pickle.dumps(result, protocol=_PROTOCOL))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """The coordinator's ledger of exactly what one worker holds."""

    __slots__ = ("proc", "conn", "session", "held_keys", "demotions",
                 "worlds_built", "spec_sent")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        #: whether the worker has received the world spec (first batch).
        self.spec_sent = False
        #: domain -> session blob the worker currently holds.
        self.session: dict[str, bytes] = {}
        #: domain -> memo keys the worker is believed to hold.  An LRU
        #: eviction on the worker can make this optimistic; the cost of
        #: being wrong is one redundant live fan-out, never wrong bytes.
        self.held_keys: dict[str, set] = {}
        #: demotions the worker already knows about.
        self.demotions: set[str] = set()
        self.worlds_built = 0


class _WorkerFailure(Exception):
    """Internal: one worker failed (died or hung); the supervisor decides."""

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


#: Process-wide fleet-health accumulator: every closed executor folds its
#: supervision counters in, so the CLI can print an exec summary after
#: ``run_campaign``/``run_crawl`` have already closed their executors.
_FLEET_HEALTH = {
    "restarts": 0,
    "hang_kills": 0,
    "quarantined_shards": 0,
    "inline_checks": 0,
    "recovery_ms": 0.0,
}

#: Executors may now be closed from concurrent job threads (the serving
#: layer runs one campaign per thread), so folds into the process-wide
#: accumulator are lock-guarded.
_FLEET_HEALTH_LOCK = threading.Lock()

#: Per-thread stack of active :class:`FleetHealthScope` instances; an
#: executor closed on a thread folds into every scope open on it.
_FLEET_SCOPES = threading.local()


def _active_scopes() -> list:
    stack = getattr(_FLEET_SCOPES, "stack", None)
    if stack is None:
        stack = _FLEET_SCOPES.stack = []
    return stack


def fleet_health() -> dict:
    """Cumulative supervision counters of every executor closed so far."""
    with _FLEET_HEALTH_LOCK:
        return dict(_FLEET_HEALTH)


def reset_fleet_health() -> None:
    """Zero the accumulator (the CLI does, once per command)."""
    with _FLEET_HEALTH_LOCK:
        _FLEET_HEALTH.update(
            restarts=0, hang_kills=0, quarantined_shards=0,
            inline_checks=0, recovery_ms=0.0,
        )


class FleetHealthScope:
    """Thread-local supervision counters for one job in a shared process.

    The process-wide :func:`fleet_health` accumulator fits a
    one-command CLI process (``reset`` at command start, read at the
    end) but not a long-lived service running many jobs concurrently:
    a reset would zero other jobs' counters and a read would mix them.
    A scope is a context manager; while entered, every
    :class:`ProcessExecutor` closed *on the entering thread* also folds
    its counters into the scope, so a job thread that wraps its campaign
    in a scope observes exactly its own fleet health.  Scopes nest, and
    the global accumulator still receives every fold.
    """

    _KEYS = (
        "restarts", "hang_kills", "quarantined_shards",
        "inline_checks", "recovery_ms",
    )

    def __init__(self) -> None:
        self.counters = {key: 0.0 if key == "recovery_ms" else 0
                         for key in self._KEYS}

    def _fold(self, delta: dict) -> None:
        for key in self._KEYS:
            self.counters[key] += delta[key]

    def snapshot(self) -> dict:
        """The counters folded so far (a copy, safe to hand out)."""
        return dict(self.counters)

    def __enter__(self) -> "FleetHealthScope":
        _active_scopes().append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        stack = _active_scopes()
        if self in stack:  # pragma: no branch - mismatched exits only
            stack.remove(self)


class ProcessExecutor:
    """Execute shards in parallel worker processes, merge deterministically.

    The executor holds one dedicated worker process per shard; create it
    once per crawl/campaign (``ExecConfig.create`` does) and
    :meth:`close` it when done -- it is also a context manager.  Requires
    a world built by :func:`~repro.ecommerce.world.build_world` (workers
    regrow it from the spec) and the world's own vantage fleet.

    Supervision knobs (see the module docstring):

    * ``max_restarts`` -- respawns allowed per shard before quarantine
      (the CLI's ``--max-worker-restarts``);
    * ``restart_backoff_s`` -- base of the exponential backoff slept
      before each respawn (``base * 2**(failures-1)``, capped at 2 s;
      0 disables -- tests do);
    * ``min_deadline_s`` / ``deadline_per_cost_s`` -- a shard's hang
      deadline is ``min + per_cost *``
      :func:`~repro.exec.plan.predicted_batch_cost`, so live-heavy
      shards get proportionally more wall clock.
    """

    def __init__(
        self,
        world: "World",
        workers: int = 4,
        *,
        plan=None,
        start_method: Optional[str] = None,
        max_restarts: int = 3,
        restart_backoff_s: float = 0.05,
        min_deadline_s: float = 300.0,
        deadline_per_cost_s: float = 0.05,
    ) -> None:
        if max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        self._world = world
        self._spec = world.spec()
        self.plan = plan or make_planner("cost", workers)
        self.max_restarts = max_restarts
        self.restart_backoff_s = restart_backoff_s
        self.min_deadline_s = min_deadline_s
        self.deadline_per_cost_s = deadline_per_cost_s
        # fork is the fast path (no re-import) but is only safe where it
        # is the platform default; macOS deliberately switched to spawn
        # (fork-without-exec crashes), so prefer it only on Linux.
        method = start_method or (
            "fork" if sys.platform == "linux" else "spawn"
        )
        self._ctx = multiprocessing.get_context(method)
        self._handles: list[_WorkerHandle] = []
        try:
            for i in range(self.plan.workers):
                self._handles.append(self._spawn_worker(i))
        except BaseException:
            # Spawning worker k failed: close the k pipes already open
            # and join the k processes already started, then re-raise --
            # a half-constructed executor must not leak its fleet.
            for handle in self._handles:
                self._retire(handle)
            raise
        self._closed = False
        # Coordinator side of the archive dedup: content hash -> body,
        # across every worker and every batch of this executor.
        self._pages: dict[bytes, str] = {}
        self._batches = 0
        self._payload_ms = 0.0
        self._fold_ms = 0.0
        self._ship_bytes = 0
        self._recv_bytes = 0
        # Supervision state.
        self._failures: dict[int, int] = {}
        self._quarantined: set[int] = set()
        self._restarts = 0
        self._hang_kills = 0
        self._inline_checks = 0
        self._recovery_ms = 0.0

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn_worker(self, index: int) -> _WorkerHandle:
        """Start one dedicated worker; on failure leak neither pipe end."""
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn,),
            daemon=True,
            name=f"repro-exec-worker-{index}",
        )
        try:
            proc.start()
        except BaseException:
            parent_conn.close()
            child_conn.close()
            raise
        child_conn.close()
        return _WorkerHandle(proc, parent_conn)

    @staticmethod
    def _retire(handle: _WorkerHandle) -> None:
        """Kill (if needed), reap, and disconnect one worker."""
        if handle.proc.is_alive():
            handle.proc.kill()
        if handle.proc.pid is not None:
            handle.proc.join(timeout=10)
        if not handle.conn.closed:
            handle.conn.close()

    # ------------------------------------------------------------------
    def run(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence["ScheduledCheck"],
        fleet: Sequence["VantagePoint"],
        sink: Optional[Callable[["PriceCheckReport"], None]] = None,
    ) -> list["PriceCheckReport"]:
        """Dispatch shards to the workers and merge results in plan order."""
        try:
            return self._run(backend, scheduled, fleet, sink)
        except BaseException:
            # Anything the supervisor could not absorb (a relayed worker
            # exception, a coordinator bug, Ctrl-C mid-dispatch) must
            # not leak live worker processes or open pipes.
            self.close()
            raise

    def _run(self, backend, scheduled, fleet, sink):
        expected = [vp.name for vp in self._world.vantage_points]
        if [vp.name for vp in fleet] != expected:
            raise ExecError(
                "ProcessExecutor can only fan out over the world's own "
                "vantage fleet (workers rebuild that fleet from the spec)"
            )
        cache = backend.burst_cache
        shards = self.plan.partition_batch(backend, scheduled)
        merged: dict[int, tuple["PriceCheckReport", list[dict]]] = {}
        t0 = time.perf_counter()
        pending: list[tuple[int, list, float, float]] = []
        for shard_index, shard in enumerate(shards):
            if not shard:
                continue
            if shard_index in self._quarantined:
                self._run_inline(backend, shard, fleet, merged)
                continue
            state = self._dispatch_supervised(
                backend, shard_index, shard, fleet, merged
            )
            if state is not None:
                pending.append((shard_index, shard) + state)
        self._payload_ms += (time.perf_counter() - t0) * 1000.0

        for shard_index, shard, dispatched_at, deadline_s in pending:
            self._collect_supervised(
                backend, shard_index, shard, fleet, cache, merged,
                dispatched_at, deadline_s,
            )
        self._batches += 1
        return merge_in_plan_order(backend, scheduled, merged, sink)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _build_payload(self, handle, shard_index, shard, backend, fleet):
        """The shard's delta payload against this handle's ledger.

        A fresh (just-respawned) handle has an empty ledger, so the same
        delta logic degenerates to the full state ship recovery needs:
        spec, every session blob, every memo entry and demotion for the
        shard's domains.
        """
        cache = backend.burst_cache
        demoted = cache.demoted_domains()
        domains = sorted(
            {URL.parse(sched.request.url).host for sched in shard}
        )
        session: dict[str, bytes] = {}
        for domain in domains:
            blob = _domain_blob(fleet, self._world.servers, domain)
            if handle.session.get(domain) != blob:
                session[domain] = blob
                handle.session[domain] = blob
        memo_demotions: dict[str, str] = {}
        memo_entries: list[tuple] = []
        if cache.enabled:
            for domain in domains:
                if domain in demoted:
                    if domain not in handle.demotions:
                        memo_demotions[domain] = demoted[domain]
                        handle.demotions.add(domain)
                        handle.held_keys.pop(domain, None)
                    continue
                held = handle.held_keys.setdefault(domain, set())
                for key, entry in cache.entries_for(domain):
                    if key not in held:
                        memo_entries.append((domain, key, entry))
                        held.add(key)
        fault = None
        if _fault_hook is not None:
            fault = _fault_hook(shard_index, self._batches)
        return {
            # The spec crosses the boundary once per worker.
            "spec": None if handle.spec_sent else self._spec,
            "tasks": shard,
            "domains": domains,
            "burst_memo": {
                "enabled": cache.enabled,
                "validate_fraction": cache.validate_fraction,
                "max_entries_per_domain": cache.max_entries_per_domain,
            },
            "session": session,
            "memo_demotions": memo_demotions,
            "memo_entries": memo_entries,
            "fault": fault,
        }

    def _dispatch(self, backend, shard_index, shard, fleet):
        """Send one shard to its worker; returns (dispatched_at, deadline_s).

        Ledger updates made while building the payload are safe even if
        the send fails: recovery replaces the handle, and a fresh
        handle's empty ledger re-ships everything.
        """
        handle = self._handles[shard_index]
        payload = self._build_payload(
            handle, shard_index, shard, backend, fleet
        )
        blob = pickle.dumps(payload, protocol=_PROTOCOL)
        self._ship_bytes += len(blob)
        try:
            handle.conn.send_bytes(blob)
        except (BrokenPipeError, EOFError, OSError) as exc:
            raise _WorkerFailure(
                "died at dispatch",
                f"exit code {handle.proc.exitcode} ({exc})",
            ) from None
        handle.spec_sent = True
        deadline_s = self.min_deadline_s + (
            self.deadline_per_cost_s * predicted_batch_cost(backend, shard)
        )
        return time.monotonic(), deadline_s

    def _dispatch_supervised(self, backend, shard_index, shard, fleet,
                             merged):
        """Dispatch with recovery; ``None`` means quarantined + ran inline."""
        while True:
            try:
                return self._dispatch(backend, shard_index, shard, fleet)
            except _WorkerFailure as failure:
                if not self._recover(
                    backend, shard_index, shard, fleet, merged, failure
                ):
                    return None

    # ------------------------------------------------------------------
    # Collect
    # ------------------------------------------------------------------
    def _await_reply(self, handle, shard_index, dispatched_at,
                     deadline_s) -> bytes:
        remaining = (dispatched_at + deadline_s) - time.monotonic()
        try:
            # A single poll: returns early on data *or* pipe EOF.  At an
            # already-expired deadline this still polls once with zero
            # timeout, so a reply that landed just in time is folded
            # rather than discarded.
            if not handle.conn.poll(max(0.0, remaining)):
                raise _WorkerFailure(
                    "hung",
                    f"no reply from worker {shard_index} within its "
                    f"{deadline_s:.1f}s deadline",
                )
            return handle.conn.recv_bytes()
        except EOFError:
            raise _WorkerFailure(
                "died", f"exit code {handle.proc.exitcode}"
            ) from None
        except OSError as exc:
            raise _WorkerFailure("died", str(exc)) from None

    def _collect_supervised(self, backend, shard_index, shard, fleet,
                            cache, merged, dispatched_at, deadline_s):
        state: Optional[tuple[float, float]] = (dispatched_at, deadline_s)
        while True:
            if state is None:
                state = self._dispatch_supervised(
                    backend, shard_index, shard, fleet, merged
                )
                if state is None:
                    return  # quarantined; ran inline
            handle = self._handles[shard_index]
            try:
                blob = self._await_reply(
                    handle, shard_index, state[0], state[1]
                )
            except _WorkerFailure as failure:
                if not self._recover(
                    backend, shard_index, shard, fleet, merged, failure
                ):
                    return
                state = None
                continue
            break
        self._fold(backend, handle, shard, fleet, cache, merged, blob)

    def _fold(self, backend, handle, shard, fleet, cache, merged, blob):
        """Fold one worker reply into coordinator state (exactly once)."""
        self._recv_bytes += len(blob)
        t1 = time.perf_counter()
        result = pickle.loads(blob)
        error = result.get("error")
        if error is not None:
            raise error
        self._pages.update(result["pages"])
        for sched, (index, report, archives) in zip(
            shard, result["results"]
        ):
            url = URL.parse(sched.request.url)
            url_text = str(url)
            merged[index] = (report, [
                {
                    "check_id": sched.check_id,
                    "url": url_text,
                    "domain": url.host,
                    "vantage": vantage,
                    "timestamp": timestamp,
                    "html": self._pages[digest],
                }
                for vantage, timestamp, digest in archives
            ])
        # Fold the shard's post-batch session state back in, so the
        # coordinator's world is as-if it had run the shard itself.
        for domain, state_blob in result["session"].items():
            _install_domain_blob(
                fleet, self._world.servers, domain, state_blob
            )
            handle.session[domain] = state_blob
        # Fold the worker's memo news into the master cache:
        # demotions first (they kill entries), then entries, then
        # counters -- after which the coordinator's stats() speak
        # for the whole fleet.
        memo = result["memo"]
        for domain, reason in memo["demotions"].items():
            cache.fold_demotion(domain, reason)
            handle.demotions.add(domain)
            handle.held_keys.pop(domain, None)
        for domain, key, entry in memo["entries"]:
            if cache.fold_entry(backend, domain, key, entry):
                handle.held_keys.setdefault(domain, set()).add(key)
        cache.absorb_counters(memo["counters"])
        handle.worlds_built = result["worlds_built"]
        self._fold_ms += (time.perf_counter() - t1) * 1000.0

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def _recover(self, backend, shard_index, shard, fleet, merged,
                 failure: _WorkerFailure) -> bool:
        """Handle one worker failure.

        Returns ``True`` after a successful respawn (the caller re-
        dispatches to the fresh worker) or ``False`` after a quarantine
        (the shard already ran inline; nothing left to do).  Nothing of
        the failed attempt was folded -- the dead worker's partial
        results, journals, and counters died with it -- so the re-run
        starts from exactly the coordinator's pre-batch state.
        """
        t0 = time.perf_counter()
        self._failures[shard_index] = self._failures.get(shard_index, 0) + 1
        count = self._failures[shard_index]
        if failure.kind == "hung":
            self._hang_kills += 1
        logger.warning(
            "worker %d %s (failure %d, budget %d): %s",
            shard_index, failure.kind, count, self.max_restarts,
            failure.detail,
        )
        self._retire(self._handles[shard_index])
        if count > self.max_restarts:
            self._quarantined.add(shard_index)
            logger.warning(
                "quarantining shard %d after %d worker failures; running "
                "its %d checks inline on the coordinator for the rest of "
                "this run", shard_index, count, len(shard),
            )
            self._run_inline(backend, shard, fleet, merged)
            self._recovery_ms += (time.perf_counter() - t0) * 1000.0
            return False
        if self.restart_backoff_s > 0:
            time.sleep(
                min(2.0, self.restart_backoff_s * (2 ** (count - 1)))
            )
        # The crash window the chaos harness aims a coordinator SIGKILL
        # at: the worker is gone, its replacement not yet up.
        barrier(WORKER_RESPAWN)
        self._handles[shard_index] = self._spawn_worker(shard_index)
        self._restarts += 1
        self._recovery_ms += (time.perf_counter() - t0) * 1000.0
        return True

    def _run_inline(self, backend, shard, fleet, merged) -> None:
        """Run a quarantined shard on the coordinator (LocalExecutor-style).

        Counters and memo stores land directly in the master cache --
        the same totals the worker path reaches by drain + fold -- so
        fleet-wide stats stay exact.
        """
        for sched in shard:
            archives: list[dict] = []
            report = backend.run_scheduled_check(
                sched, fleet, lambda **kwargs: archives.append(kwargs)
            )
            merged[sched.index] = (report, archives)
        self._inline_checks += len(shard)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def boundary_stats(self) -> dict[str, float]:
        """What the process boundary cost so far (coordinator side).

        ``payload_ms`` is time spent building + serializing + sending
        payloads; ``fold_ms`` is time spent deserializing and folding
        results (session state, memo updates, archive reconstruction);
        ``ship_bytes``/``recv_bytes`` are the raw pickle traffic.
        Divide by ``batches`` for per-day overhead.
        """
        return {
            "batches": self._batches,
            "payload_ms": round(self._payload_ms, 3),
            "fold_ms": round(self._fold_ms, 3),
            "ship_bytes": self._ship_bytes,
            "recv_bytes": self._recv_bytes,
        }

    def supervision_stats(self) -> dict:
        """Fleet health so far (``boundary_stats``-style).

        ``restarts`` counts successful respawns (``hang_kills`` of them
        were deadline kills rather than spontaneous deaths),
        ``quarantined`` lists shards past their restart budget,
        ``inline_checks`` counts checks the coordinator ran for them,
        and ``recovery_ms`` is wall clock spent inside recovery
        (retire + backoff + respawn + inline re-runs).
        """
        return {
            "restarts": self._restarts,
            "hang_kills": self._hang_kills,
            "quarantined": sorted(self._quarantined),
            "inline_checks": self._inline_checks,
            "recovery_ms": round(self._recovery_ms, 3),
        }

    def worker_worlds_built(self) -> list[int]:
        """Per-worker cumulative world regrows (as of each last batch)."""
        return [handle.worlds_built for handle in self._handles]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the dedicated workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        sentinel = pickle.dumps(None, protocol=_PROTOCOL)
        for handle in self._handles:
            if handle.conn.closed:
                continue
            try:
                handle.conn.send_bytes(sentinel)
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            if handle.proc.pid is not None:
                handle.proc.join(timeout=10)
            if handle.proc.is_alive():  # pragma: no cover - defensive
                handle.proc.terminate()
                handle.proc.join(timeout=10)
            if not handle.conn.closed:
                handle.conn.close()
        if self._restarts or self._hang_kills or self._quarantined:
            logger.warning(
                "worker fleet health: %d restart(s) (%d after hang "
                "kills), %d quarantined shard(s), %d check(s) run inline, "
                "%.0f ms in recovery",
                self._restarts, self._hang_kills, len(self._quarantined),
                self._inline_checks, self._recovery_ms,
            )
        folded = {
            "restarts": self._restarts,
            "hang_kills": self._hang_kills,
            "quarantined_shards": len(self._quarantined),
            "inline_checks": self._inline_checks,
            "recovery_ms": self._recovery_ms,
        }
        with _FLEET_HEALTH_LOCK:
            for key, value in folded.items():
                _FLEET_HEALTH[key] += value
        for scope in _active_scopes():
            scope._fold(folded)

    def __enter__(self) -> "ProcessExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: release the workers."""
        self.close()

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.plan.workers})"
