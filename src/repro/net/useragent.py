"""Browser/OS profiles.

Fig. 7 of the paper includes three vantage points in Spain that differ only
in system configuration -- "Spain (Linux,FF)", "Spain (Mac,Safari)",
"Spain (Win,Chrome)" -- to separate the effect of the browser/OS from the
effect of location.  A :class:`BrowserProfile` carries everything a request
needs to look like that configuration: User-Agent string, Accept-Language,
and platform metadata that discriminating retailers may key on.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BrowserProfile", "STANDARD_PROFILES", "profile_for"]


@dataclass(frozen=True)
class BrowserProfile:
    """A reproducible browser configuration."""

    browser: str  # "firefox" | "chrome" | "safari"
    os: str  # "linux" | "windows" | "macos"
    version: str
    accept_language: str = "en-US,en;q=0.8"

    @property
    def label(self) -> str:
        short_os = {"linux": "Linux", "windows": "Win", "macos": "Mac"}[self.os]
        short_browser = {"firefox": "FF", "chrome": "Chrome", "safari": "Safari"}[
            self.browser
        ]
        return f"{short_os},{short_browser}"

    @property
    def user_agent(self) -> str:
        """A plausible circa-2013 User-Agent string for this profile."""
        platforms = {
            "linux": "X11; Linux x86_64",
            "windows": "Windows NT 6.1; WOW64",
            "macos": "Macintosh; Intel Mac OS X 10_8_2",
        }
        platform = platforms[self.os]
        if self.browser == "firefox":
            return (
                f"Mozilla/5.0 ({platform}; rv:{self.version}) "
                f"Gecko/20100101 Firefox/{self.version}"
            )
        if self.browser == "chrome":
            return (
                f"Mozilla/5.0 ({platform}) AppleWebKit/537.36 "
                f"(KHTML, like Gecko) Chrome/{self.version} Safari/537.36"
            )
        if self.browser == "safari":
            return (
                f"Mozilla/5.0 ({platform}) AppleWebKit/536.26.17 "
                f"(KHTML, like Gecko) Version/{self.version} Safari/536.26.17"
            )
        raise ValueError(f"unknown browser {self.browser!r}")


#: The configurations used by the standard vantage points.
STANDARD_PROFILES: dict[str, BrowserProfile] = {
    "linux-firefox": BrowserProfile("firefox", "linux", "19.0"),
    "windows-chrome": BrowserProfile("chrome", "windows", "25.0.1364.172"),
    "macos-safari": BrowserProfile("safari", "macos", "6.0.2"),
}


def profile_for(browser: str, os: str) -> BrowserProfile:
    """Look up or build a profile for a browser/os pair."""
    key = f"{os}-{browser}"
    if key in STANDARD_PROFILES:
        return STANDARD_PROFILES[key]
    versions = {"firefox": "19.0", "chrome": "25.0.1364.172", "safari": "6.0.2"}
    if browser not in versions:
        raise ValueError(f"unknown browser {browser!r}")
    if os not in ("linux", "windows", "macos"):
        raise ValueError(f"unknown os {os!r}")
    return BrowserProfile(browser, os, versions[browser])
