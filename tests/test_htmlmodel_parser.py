"""Unit tests for the HTML tokenizer/parser, including recovery."""

from __future__ import annotations

import pytest

from repro.htmlmodel.dom import Element, Text
from repro.htmlmodel.parser import HTMLParseError, decode_entities, parse_html
from repro.htmlmodel.selectors import select_one


def first_element(html: str) -> Element:
    doc = parse_html(html)
    return next(doc.iter_elements())


class TestBasics:
    def test_single_element(self):
        el = first_element("<div></div>")
        assert el.tag == "div"
        assert not el.children

    def test_nested(self):
        doc = parse_html("<div><p><b>x</b></p></div>")
        tags = [e.tag for e in doc.iter_elements()]
        assert tags == ["div", "p", "b"]

    def test_text_between_tags(self):
        doc = parse_html("<p>alpha<b>beta</b>gamma</p>")
        p = first_element("<p>alpha<b>beta</b>gamma</p>")
        assert p.text() == "alphabetagamma"

    def test_tag_name_case_folded(self):
        assert first_element("<DiV></dIv>").tag == "div"

    def test_rejects_non_string(self):
        with pytest.raises(HTMLParseError):
            parse_html(b"<div>")  # type: ignore[arg-type]

    def test_empty_input(self):
        assert parse_html("").children == []


class TestAttributes:
    def test_double_quoted(self):
        el = first_element('<a href="/x?a=1&amp;b=2" class="k">t</a>')
        assert el.get("href") == "/x?a=1&b=2"
        assert el.get("class") == "k"

    def test_single_quoted_and_unquoted(self):
        el = first_element("<input type='text' value=abc>")
        assert el.get("type") == "text"
        assert el.get("value") == "abc"

    def test_bare_attribute(self):
        el = first_element("<script src=x async></script>")
        assert el.get("async") == ""

    def test_attribute_name_case_folded(self):
        el = first_element('<div DATA-X="1">')
        assert el.get("data-x") == "1"

    def test_first_attribute_wins_on_duplicate(self):
        el = first_element('<div id="one" id="two">')
        assert el.id == "one"


class TestVoidAndSelfClosing:
    @pytest.mark.parametrize("tag", ["br", "img", "input", "meta", "hr", "link"])
    def test_void_elements_have_no_children(self, tag):
        doc = parse_html(f"<div><{tag}>after</div>")
        div = next(doc.iter_elements())
        void = div.child_elements()[0]
        assert void.tag == tag
        assert not void.children
        assert div.text() == "after"

    def test_self_closing_non_void(self):
        doc = parse_html("<div><span/>after</div>")
        div = next(doc.iter_elements())
        span = div.child_elements()[0]
        assert not span.children
        assert div.text() == "after"

    def test_stray_void_end_tag_ignored(self):
        doc = parse_html("<div></br>text</div>")
        assert next(doc.iter_elements()).text() == "text"


class TestRawText:
    def test_script_content_not_parsed(self):
        doc = parse_html("<script>if (a < b) { x(\"<div>\"); }</script>")
        script = next(doc.iter_elements())
        assert script.tag == "script"
        content = script.children[0]
        assert isinstance(content, Text)
        assert '<div>' in content.data

    def test_unterminated_script_swallows_rest(self):
        doc = parse_html("<script>var x = 1;")
        script = next(doc.iter_elements())
        assert "var x = 1;" in script.children[0].data

    def test_style_raw(self):
        doc = parse_html("<style>a > b {}</style><p>x</p>")
        tags = [e.tag for e in doc.iter_elements()]
        assert tags == ["style", "p"]


class TestCommentsAndDoctype:
    def test_comment_skipped(self):
        doc = parse_html("<div><!-- hidden <b>not parsed</b> -->shown</div>")
        assert next(doc.iter_elements()).text() == "shown"

    def test_doctype_skipped(self):
        doc = parse_html("<!DOCTYPE html><html></html>")
        assert [e.tag for e in doc.iter_elements()] == ["html"]

    def test_unterminated_comment(self):
        doc = parse_html("<div>a</div><!-- runs off the end")
        assert next(doc.iter_elements()).text() == "a"


class TestEntities:
    @pytest.mark.parametrize(
        "entity,char",
        [("&amp;", "&"), ("&lt;", "<"), ("&gt;", ">"), ("&euro;", "€"),
         ("&pound;", "£"), ("&nbsp;", " "), ("&#8364;", "€"),
         ("&#xA3;", "£"), ("&#65;", "A")],
    )
    def test_known_entities(self, entity, char):
        assert decode_entities(f"x{entity}y") == f"x{char}y"

    def test_unknown_entity_left_alone(self):
        assert decode_entities("&bogus;") == "&bogus;"

    def test_out_of_range_numeric(self):
        assert decode_entities("&#1114112;") == "&#1114112;"

    def test_entities_in_text_nodes(self):
        doc = parse_html("<p>1&nbsp;234,56&nbsp;&euro;</p>")
        assert next(doc.iter_elements()).text() == "1 234,56 €"


class TestRecovery:
    def test_unclosed_elements_closed_at_eof(self):
        doc = parse_html("<div><p>text")
        div = next(doc.iter_elements())
        assert div.child_elements()[0].text() == "text"

    def test_stray_end_tag_dropped(self):
        doc = parse_html("<div></span>text</div>")
        assert next(doc.iter_elements()).text() == "text"

    def test_li_implies_close(self):
        doc = parse_html("<ul><li>a<li>b<li>c</ul>")
        ul = next(doc.iter_elements())
        items = [li.text() for li in ul.child_elements()]
        assert items == ["a", "b", "c"]

    def test_p_closed_by_block(self):
        doc = parse_html("<p>one<div>two</div>")
        tags = [e.tag for e in doc.iter_elements()]
        assert tags == ["p", "div"]
        p, div = doc.child_elements()
        assert p.text() == "one"
        assert div.text() == "two"

    def test_mismatched_closes_intermediates(self):
        doc = parse_html("<div><span><b>x</div>after")
        div = doc.child_elements()[0]
        assert div.text() == "x"

    def test_bare_lt_is_text(self):
        doc = parse_html("<p>1 < 2</p>")
        assert next(doc.iter_elements()).text() == "1 < 2"

    def test_table_cells_imply_close(self):
        doc = parse_html("<table><tr><td>a<td>b<tr><td>c</table>")
        table = next(doc.iter_elements())
        rows = table.child_elements()
        assert len(rows) == 2
        assert [td.text() for td in rows[0].child_elements()] == ["a", "b"]


class TestRealisticPage:
    def test_retailer_like_page(self):
        html = (
            "<!DOCTYPE html><html lang=\"en-US\"><head><meta charset=utf-8>"
            "<title>Shop</title><script src=\"http://t.example/x.js\"></script>"
            "</head><body class=product-page>"
            "<div id=product><span id=product-price class=price>$19.99</span></div>"
            "<section class=recommendations>"
            "<span class=price>$5.99</span><span class=price>$7.99</span>"
            "</section></body></html>"
        )
        doc = parse_html(html)
        price = select_one(doc, "#product-price")
        assert price is not None
        assert price.text() == "$19.99"
        decoys = [e for e in doc.iter_elements()
                  if e.has_class("price") and e.id != "product-price"]
        assert len(decoys) == 2
