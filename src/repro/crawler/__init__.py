"""Systematic crawler.

§3.2/§4: "we systematically crawled the sites of retailers where $heriff
revealed price differences ... 21 retailers ... up to 100 products per
retailer ... prices checked on a daily basis for a week ... 188K extracted
prices in aggregate."

* :mod:`repro.crawler.plan` -- select target retailers from the crowd
  dataset (plus the carry-overs from the authors' earlier study), discover
  product URLs from the shops' index pages, and derive one price anchor
  per retailer,
* :mod:`repro.crawler.crawl` -- the synchronized daily crawl over the
  vantage fleet,
* :mod:`repro.crawler.records` -- the crawled dataset container.
"""

from repro.crawler.crawl import CrawlConfig, run_crawl
from repro.crawler.plan import CrawlPlan, CrawlTarget, build_plan
from repro.crawler.records import CrawlDataset

__all__ = [
    "CrawlConfig",
    "CrawlDataset",
    "CrawlPlan",
    "CrawlTarget",
    "build_plan",
    "run_crawl",
]
