"""Extent of price variation per domain (Fig. 3).

"Fig. 3 shows the fraction of requests we sent out to each retailer that
had price variation.  In some cases, we see a 100% coverage, pointing to
the fact that price variations are a persistent and repeatable phenomenon."
"""

from __future__ import annotations

from typing import Sequence

from repro.core.reports import PriceCheckReport
from repro.store import TableSlice, as_table_slice

__all__ = ["variation_extent"]


def variation_extent(
    reports: Sequence[PriceCheckReport], *, min_reports: int = 1
) -> dict[str, float]:
    """domain -> fraction of its checks that showed guarded variation.

    Accepts either a plain report sequence or a columnar
    :class:`~repro.store.TableSlice`; the latter runs as a single pass
    over the domain/ratio/guard columns.
    """
    if min_reports < 1:
        raise ValueError("min_reports must be >= 1")
    sliced = as_table_slice(reports)
    if sliced is not None:
        return _extent_kernel(sliced, min_reports)
    totals: dict[str, int] = {}
    varied: dict[str, int] = {}
    for report in reports:
        if report.ratio is None:
            continue
        totals[report.domain] = totals.get(report.domain, 0) + 1
        if report.has_variation:
            varied[report.domain] = varied.get(report.domain, 0) + 1
    return {
        domain: varied.get(domain, 0) / total
        for domain, total in totals.items()
        if total >= min_reports
    }


def _extent_kernel(sliced: TableSlice, min_reports: int) -> dict[str, float]:
    table = sliced.table
    ratio, guard, domain_id = table.ratio, table.guard, table.domain_id
    totals: dict[int, int] = {}
    varied: dict[int, int] = {}
    for i in sliced.rows:
        r = ratio[i]
        if r is None:
            continue
        did = domain_id[i]
        totals[did] = totals.get(did, 0) + 1
        if r > guard[i]:
            varied[did] = varied.get(did, 0) + 1
    value = table.domains.value
    return {
        value(did): varied.get(did, 0) / total
        for did, total in totals.items()
        if total >= min_reports
    }
