"""The synchronized daily crawl.

For each day in the window, every target product URL is fanned out to the
full vantage fleet through the $heriff backend -- the same synchronized
machinery the crowd checks use, so the crawled dataset inherits the
methodology's noise defenses (same-instant fan-out, per-day repetition).

Scale note: the paper's configuration (21 retailers x ≤100 products x
7 days x 14 vantage points) yields ~200K fetches and ~188K extracted
prices.  :class:`CrawlConfig` exposes the knobs so tests and benchmarks can
run reduced-scale crawls with identical structure, and
:class:`~repro.exec.ExecConfig` shards each day's batch across workers --
the dataset stays byte-identical at any worker count (the executor
determinism contract, ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.checkpoint import (
    MID_DAY,
    CheckpointMismatchError,
    RunCheckpoint,
    barrier,
    capture_run_state,
    restore_run_state,
    run_fingerprint,
)
from repro.core.backend import CheckRequest, SheriffBackend
from repro.crawler.plan import CrawlPlan
from repro.crawler.records import CrawlDataset
from repro.ecommerce.world import World
from repro.net.clock import SECONDS_PER_DAY
from repro.util import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import SupportsRun
    from repro.exec import ExecConfig

__all__ = ["CrawlConfig", "plan_digest", "run_crawl"]


@dataclass(frozen=True)
class CrawlConfig:
    """Crawl window and pacing."""

    days: int = 7
    #: First crawl day (days since 2013-01-01); the paper crawled after the
    #: Jan-May crowd phase, so the default starts in June.
    start_day: int = 155
    #: Seconds between consecutive product checks (crawler politeness).
    pacing_seconds: float = 2.0

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.start_day < 0:
            raise ValueError("start_day must be >= 0")
        if self.pacing_seconds < 0:
            raise ValueError("pacing_seconds must be >= 0")


def plan_digest(plan: CrawlPlan) -> str:
    """A stable identity for a crawl plan (part of the run fingerprint).

    Two plans digest equal exactly when they visit the same product URLs
    with the same anchors in the same order -- the inputs that determine
    the crawl's bytes.
    """
    parts: list[object] = []
    for target in plan.targets:
        parts.append(target.domain)
        parts.extend(target.product_urls)
        parts.append(target.anchor.selector)
        parts.append(target.anchor.node_path)
    return f"{stable_hash(*parts):016x}"


def run_crawl(
    world: World,
    backend: SheriffBackend,
    plan: CrawlPlan,
    config: Optional[CrawlConfig] = None,
    *,
    exec_config: Optional["ExecConfig"] = None,
    executor: Optional["SupportsRun"] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
) -> CrawlDataset:
    """Execute the crawl plan and return the crawled dataset.

    The world clock is advanced to each crawl day; within a day, targets
    are visited in plan order with ``pacing_seconds`` between checks, all
    checks of one product remaining a synchronized burst.

    ``exec_config`` shards each day's batch across workers (the executor
    is created here and closed when the crawl ends); ``executor`` passes a
    caller-owned executor instead (the caller closes it -- benchmarks use
    this to keep one process pool warm across many crawls).  Either way
    the dataset is byte-identical to the sequential run -- as it is with
    the backend's burst memo on or off (:mod:`repro.core.burstcache`):
    repeated checks of a signature-pure retailer's product on one day
    serve from the memo, byte-for-byte including archive timestamps.

    ``checkpoint_dir`` makes the crawl kill-safe: each completed day is
    durably committed (dataset shard + run state) before the next starts,
    and ``resume=True`` against a freshly built world and the same plan
    skips committed days -- see :mod:`repro.checkpoint`.  The crawl is
    already day-batched, so checkpointed and non-checkpointed crawls are
    byte-identical to each other.
    """
    config = config or CrawlConfig()
    if not plan.targets:
        raise ValueError("empty crawl plan")
    if exec_config is not None and executor is not None:
        raise ValueError("pass exec_config or executor, not both")

    checkpoint = None
    start_offset = 0
    if checkpoint_dir is not None:
        checkpoint = RunCheckpoint.open(
            checkpoint_dir,
            kind="crawl",
            fingerprint=run_fingerprint(
                "crawl", world.config, config, plan=plan_digest(plan)
            ),
            resume=resume,
        )
        committed = checkpoint.committed
        if len(committed) > config.days:
            raise CheckpointMismatchError(
                f"checkpoint holds {len(committed)} segments, crawl only "
                f"has {config.days} days"
            )
        for offset, record in enumerate(committed):
            if record["day"] != config.start_day + offset:
                raise CheckpointMismatchError(
                    f"checkpoint segment {record['seq']} covers day "
                    f"{record['day']}, crawl expects day "
                    f"{config.start_day + offset}"
                )
        start_offset = len(committed)

    owned = exec_config.create(world) if exec_config is not None else None
    active = executor if executor is not None else owned
    dataset = CrawlDataset()
    if checkpoint is not None:
        checkpoint.fold_into(dataset)
        state = checkpoint.load_last_state()
        if state is not None:
            restore_run_state(state, world, backend)
    try:
        for day_offset in range(start_offset, config.days):
            day_start = (config.start_day + day_offset) * SECONDS_PER_DAY
            if day_start > world.clock.now:
                world.clock.advance_to(day_start)
            # One batched submission per day: the backend amortizes URL
            # parsing and the FX guard across the day's burst while keeping
            # each check's fan-out (and the virtual timeline) identical to
            # a sequential loop.
            requests = [
                CheckRequest(url=url, anchor=target.anchor, origin="crawler")
                for target in plan.targets
                for url in target.product_urls
            ]
            # Stream the day's merged reports straight into the dataset's
            # columnar spine (plan order) -- no intermediate report list.
            if checkpoint is None:
                backend.check_batch(
                    requests,
                    pacing_seconds=config.pacing_seconds,
                    executor=active,
                    sink=dataset.add,
                )
                continue
            staging = CrawlDataset()

            def sink(report) -> None:
                barrier(MID_DAY)
                staging.add(report)

            backend.check_batch(
                requests,
                pacing_seconds=config.pacing_seconds,
                executor=active,
                sink=sink,
            )
            checkpoint.commit_segment(
                day=config.start_day + day_offset,
                dataset=staging,
                state=capture_run_state(world, backend),
            )
            dataset.append_segment(staging)
    finally:
        if owned is not None:
            owned.close()
    return dataset
