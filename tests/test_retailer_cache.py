"""RetailerServer cache machinery: render-memo LRU, counters, setters.

The render memo is the layer *below* the burst memo: it dedupes identical
renders inside one server.  These tests pin its bounds (the LRU never
exceeds ``_RENDER_CACHE_MAX``), the stats invariants under eviction, and
the session-state accessor guards the executors rely on.
"""

from __future__ import annotations

import pytest

from repro.ecommerce.retailer import _RENDER_CACHE_MAX
from repro.ecommerce.world import WorldConfig, build_world


def _server_and_world():
    world = build_world(WorldConfig(catalog_scale=1.0, long_tail_domains=0))
    return world, world.servers["www.digitalrev.com"]


def _product_request(world, domain, product, *, vantage=0, timestamp=0.0):
    point = world.vantage_points[vantage]
    return point.build_request(
        f"http://{domain}{product.path}", now=timestamp
    )


class TestRenderCacheLRU:
    def test_eviction_keeps_cache_at_cap(self):
        """Render more distinct (sku, locale, day) combinations than the
        cap: entries must never exceed ``_RENDER_CACHE_MAX``."""
        world, server = _server_and_world()
        domain = server.retailer.domain
        products = server.retailer.catalog.products
        combos = 0
        day = 0
        while combos <= _RENDER_CACHE_MAX + 40:
            for vantage_index in range(0, 14, 2):  # distinct locales
                product = products[combos % len(products)]
                request = _product_request(
                    world, domain, product,
                    vantage=vantage_index, timestamp=day * 86400.0,
                )
                response = server.handle(request)
                assert response.ok
                combos += 1
            day += 1
        stats = server.render_cache_stats()
        assert stats["render_entries"] <= _RENDER_CACHE_MAX
        assert stats["render_misses"] >= combos - stats["render_hits"]

    def test_stats_consistent_under_eviction(self):
        """hits + misses == product-page renders, even after eviction."""
        world, server = _server_and_world()
        domain = server.retailer.domain
        products = server.retailer.catalog.products
        renders = 0
        for day in range(4):
            for product in products:
                request = _product_request(
                    world, domain, product, timestamp=day * 86400.0
                )
                server.handle(request)
                renders += 1
        # Re-render today's pages: all hits while the entries survive.
        for product in products[:10]:
            request = _product_request(
                world, domain, product, timestamp=3 * 86400.0
            )
            server.handle(request)
            renders += 1
        stats = server.render_cache_stats()
        assert stats["render_hits"] + stats["render_misses"] == renders
        assert stats["render_entries"] <= _RENDER_CACHE_MAX
        assert stats["render_hits"] >= 10

    def test_eviction_preserves_correct_bodies(self):
        """An evicted-and-rerendered page is byte-identical to its first
        render (the cache is transparent)."""
        world, server = _server_and_world()
        domain = server.retailer.domain
        products = server.retailer.catalog.products
        first_product = products[0]
        request = _product_request(world, domain, first_product)
        original = server.handle(request).body
        # Flood the cache far past the cap to evict the first entry.
        for day in range(6):
            for product in products:
                server.handle(_product_request(
                    world, domain, product, timestamp=day * 86400.0
                ))
        again = server.handle(
            _product_request(world, domain, first_product)
        ).body
        assert again == original


class TestRequestCountAccessor:
    def test_setter_rejects_negative(self):
        _, server = _server_and_world()
        with pytest.raises(ValueError, match="cannot be negative"):
            server.request_count = -1

    def test_setter_roundtrip(self):
        world, server = _server_and_world()
        server.request_count = 41
        assert server.request_count == 41
        product = server.retailer.catalog.products[0]
        server.handle(_product_request(world, server.retailer.domain, product))
        assert server.request_count == 42
