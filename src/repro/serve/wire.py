"""Composition root: configuration in, a wired service + server out.

:func:`build_app` is the one place the hexagon's pieces meet -- it
builds the :class:`~repro.serve.service.SheriffService`, resumes any
incomplete jobs from the data dir, and binds the HTTP adapter.  Tests
and the crash-injection driver call it directly (port 0, no signals);
:func:`serve` is the CLI entry point around it, adding signal-driven
graceful shutdown.
"""

from __future__ import annotations

import signal
import tempfile
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.serve.app import SheriffHTTPServer
from repro.serve.service import SheriffService

__all__ = ["ServeConfig", "build_app", "serve"]


@dataclass(frozen=True)
class ServeConfig:
    """Everything the service needs, in one picklable bag."""

    host: str = "127.0.0.1"
    port: int = 8350
    scale: str = "tiny"
    seed: int = 2013
    #: Jobs persist (spec, checkpoint, results) under here; ``None``
    #: means a fresh temporary directory -- jobs die with the process.
    data_dir: Optional[str] = None
    exec_config: Optional[object] = None


def build_app(config: ServeConfig) -> tuple[SheriffService, SheriffHTTPServer]:
    """Wire service + HTTP server (bound, jobs resumed, not yet serving)."""
    data_dir = config.data_dir or tempfile.mkdtemp(prefix="sheriff-serve-")
    service = SheriffService(
        scale=config.scale, seed=config.seed,
        data_dir=Path(data_dir), exec_config=config.exec_config,
    )
    server = SheriffHTTPServer((config.host, config.port), service)
    resumed = service.start()
    if resumed:
        print(f"resumed {len(resumed)} job(s): {', '.join(resumed)}")
    return service, server


def serve(
    *,
    host: str = "127.0.0.1",
    port: int = 8350,
    scale: str = "tiny",
    seed: int = 2013,
    data_dir: Optional[str] = None,
    exec_config=None,
) -> int:
    """Run the service until SIGTERM/SIGINT; returns the exit code.

    ``serve_forever`` runs on a helper thread so the main thread can
    wait on the signal event and then call ``shutdown()`` -- calling it
    from inside the serving thread would deadlock.
    """
    config = ServeConfig(host=host, port=port, scale=scale, seed=seed,
                         data_dir=data_dir, exec_config=exec_config)
    service, server = build_app(config)
    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    runner = threading.Thread(
        target=server.serve_forever, name="sheriff-http", daemon=True
    )
    runner.start()
    print(
        f"sheriff service listening on http://{host}:{server.port} "
        f"(scale={scale}, seed={seed}, data={service.registry.root.parent})",
        flush=True,
    )
    stop.wait()
    print("shutting down...", flush=True)
    server.shutdown()
    runner.join(timeout=10)
    server.server_close()
    service.close()
    print("sheriff service stopped", flush=True)
    return 0
