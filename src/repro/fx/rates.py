"""Daily exchange-rate series with intraday low/high.

A seeded geometric random walk around each currency's early-2013 USD level,
with a bounded intraday spread.  Deterministic: the same seed always yields
the same series, so experiments are reproducible and the conservative
currency guard has a well-defined "maximum gap" per dataset.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterable

from repro.fx.currencies import CURRENCIES, Currency

__all__ = ["DailyRate", "RateService"]


@dataclass(frozen=True)
class DailyRate:
    """USD value of one unit of a currency on one day."""

    currency: str
    day_index: int
    low: float
    mid: float
    high: float

    def __post_init__(self) -> None:
        if not (0 < self.low <= self.mid <= self.high):
            raise ValueError(
                f"rates must satisfy 0 < low <= mid <= high, got "
                f"{self.low}/{self.mid}/{self.high}"
            )


class RateService:
    """Deterministic daily USD rates for every registered currency.

    Parameters
    ----------
    seed:
        RNG seed for the walk.
    daily_volatility:
        Standard deviation of the daily log-return (0.4% default, roughly
        a calm FX market).
    intraday_spread:
        Max fractional distance of low/high from the day's mid.
    """

    def __init__(
        self,
        *,
        seed: int = 2013,
        daily_volatility: float = 0.004,
        intraday_spread: float = 0.006,
    ) -> None:
        if daily_volatility < 0 or intraday_spread < 0:
            raise ValueError("volatility and spread must be non-negative")
        self.daily_volatility = daily_volatility
        self.intraday_spread = intraday_spread
        self._seed = seed
        self._cache: dict[str, list[DailyRate]] = {}

    # ------------------------------------------------------------------
    def rate(self, currency: str | Currency, day_index: int) -> DailyRate:
        """The rate of ``currency`` on ``day_index`` (days since epoch)."""
        code = currency.code if isinstance(currency, Currency) else currency.upper()
        if code not in CURRENCIES:
            raise KeyError(f"unknown currency {code!r}")
        if day_index < 0:
            raise ValueError("day_index must be >= 0")
        if code == "USD":
            return DailyRate("USD", day_index, 1.0, 1.0, 1.0)
        series = self._cache.setdefault(code, [])
        while len(series) <= day_index:
            series.append(self._next_rate(code, len(series), series))
        return series[day_index]

    def _next_rate(self, code: str, day_index: int, series: list[DailyRate]) -> DailyRate:
        currency = CURRENCIES[code]
        # Per-(currency, day) RNG: values do not depend on query order,
        # and the stable hash keeps them identical across processes.
        from repro.util import stable_rng

        rng = stable_rng(self._seed, code, day_index)
        if day_index == 0:
            mid = currency.usd_mid_2013
        else:
            previous = series[day_index - 1].mid
            mid = previous * math.exp(rng.gauss(0.0, self.daily_volatility))
            # Mean-revert weakly so multi-year runs stay plausible.
            anchor = currency.usd_mid_2013
            mid += 0.002 * (anchor - mid)
        spread = self.intraday_spread * rng.uniform(0.3, 1.0)
        low = mid * (1.0 - spread)
        high = mid * (1.0 + spread)
        return DailyRate(code, day_index, low, mid, high)

    # ------------------------------------------------------------------
    def extremes(
        self, currency: str | Currency, day_indices: Iterable[int]
    ) -> tuple[float, float]:
        """(lowest low, highest high) across ``day_indices``.

        This is the "two extreme exchange rates in our dataset" the paper's
        currency guard is computed from.
        """
        days = list(day_indices)
        if not days:
            raise ValueError("day_indices must be non-empty")
        rates = [self.rate(currency, d) for d in days]
        return min(r.low for r in rates), max(r.high for r in rates)
