"""Integration tests: the figure experiments at tiny scale.

These run the full pipeline (world -> crowd campaign -> crawl -> analysis)
once per session and assert every figure's *robust* shape checks.  Checks
known to need larger samples (annotated in each module) are exempted at
tiny scale but asserted to exist.
"""

from __future__ import annotations

import pytest

from repro.experiments import runner
from repro.experiments.base import FigureResult
from repro.experiments.context import SCALES, ExperimentContext

#: Checks that need quick/paper-scale samples to be reliable; everything
#: else must pass even at tiny scale.
SCALE_SENSITIVE = {
    ("FIG5", "cheap products show the largest ratios (towards x3)"),
    ("FIG5", "mid-range reaches beyond x1.5"),
    ("FIG7", "US boxes sit below continental-Europe boxes (q75)"),
    ("FIG7", "Brazil among the cheapest locations (q75 below Europe's)"),
    ("FIG8", "homedepot: Boston-Lincoln leans both ways (mixed pair)"),
    ("FIG8", "amazon: Germany and Spain mostly equal (same euro price)"),
    ("FIG8", "amazon: Germany dearer than USA for most products"),
    ("FIG1", "counts span an order of magnitude"),
    ("FIG2", "isolated cases approach x2"),
}


@pytest.fixture(scope="module")
def results(tiny_ctx) -> list[FigureResult]:
    return runner.run_all(tiny_ctx)


class TestHarness:
    def test_all_experiments_ran(self, results):
        assert len(results) == len(runner.ALL_EXPERIMENTS)
        ids = [r.figure_id for r in results]
        assert ids == [
            "FIG1", "FIG2", "FIG3", "FIG4", "FIG5", "FIG6", "FIG7", "FIG8",
            "FIG9", "FIG10", "TAB-DATA", "TAB-3P", "TAB-ATTR",
        ]

    def test_every_figure_has_rows_and_checks(self, results):
        for result in results:
            assert result.rows, result.figure_id
            assert result.checks, result.figure_id

    def test_robust_checks_pass_at_tiny_scale(self, results):
        failures = [
            (r.figure_id, name)
            for r in results
            for name, ok in r.checks.items()
            if not ok and (r.figure_id, name) not in SCALE_SENSITIVE
        ]
        assert not failures

    def test_format_text_renders(self, results):
        for result in results:
            text = result.format_text()
            assert result.figure_id in text
            assert "paper:" in text

    def test_report_rendering(self, results):
        report = runner.render_report(results, scale="tiny")
        assert "shape checks:" in report


class TestFigureResult:
    def test_row_width_enforced(self):
        result = FigureResult("X", "t", "c", columns=("a", "b"))
        result.add_row(1, 2)
        with pytest.raises(ValueError):
            result.add_row(1)

    def test_check_registration(self):
        result = FigureResult("X", "t", "c", columns=("a",))
        result.check("works", True)
        result.check("fails", False)
        assert not result.all_checks_pass
        assert "[FAIL] fails" in result.format_text()

    def test_row_truncation(self):
        result = FigureResult("X", "t", "c", columns=("a",))
        for i in range(50):
            result.add_row(i)
        text = result.format_text(max_rows=10)
        assert "more rows" in text


class TestContext:
    def test_scales_registered(self):
        assert set(SCALES) == {"tiny", "quick", "paper"}
        assert SCALES["paper"].crawl_products == 100
        assert SCALES["paper"].crawl_days == 7
        assert SCALES["paper"].crowd_checks == 1500
        assert SCALES["paper"].crowd_population == 340

    def test_unknown_scale_rejected(self):
        with pytest.raises(KeyError):
            ExperimentContext("gigantic")

    def test_lazy_shared_objects(self, tiny_ctx):
        assert tiny_ctx.world is tiny_ctx.world
        assert tiny_ctx.backend.network is tiny_ctx.world.network

    def test_crawl_uses_paper_retailers(self, tiny_ctx):
        assert set(tiny_ctx.plan.domains) == set(tiny_ctx.world.crawled_domains)

    def test_clean_views_guarded(self, tiny_ctx):
        assert tiny_ctx.crawl_clean.guard > 1.0
        assert all(
            r.guard_threshold == tiny_ctx.crawl_clean.guard
            for r in tiny_ctx.crawl_clean.kept
        )
