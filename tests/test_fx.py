"""FX substrate tests: currencies, rate series, conversion, the guard."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.fx.convert import ConversionError, Converter, max_gap_ratio
from repro.fx.currencies import CURRENCIES, currency_for_country
from repro.fx.rates import DailyRate, RateService


class TestCurrencies:
    def test_usd_is_unit(self):
        assert CURRENCIES["USD"].usd_mid_2013 == 1.0

    def test_country_mapping(self):
        assert currency_for_country("FI").code == "EUR"
        assert currency_for_country("GB").code == "GBP"
        assert currency_for_country("BR").code == "BRL"
        assert currency_for_country("us").code == "USD"

    def test_unknown_country_defaults_usd(self):
        assert currency_for_country("ZZ").code == "USD"


class TestRateService:
    def test_deterministic_across_instances(self):
        a = RateService(seed=42)
        b = RateService(seed=42)
        assert a.rate("EUR", 10) == b.rate("EUR", 10)

    def test_query_order_irrelevant(self):
        a = RateService(seed=1)
        b = RateService(seed=1)
        r_a = a.rate("EUR", 30)
        b.rate("EUR", 5)
        b.rate("GBP", 12)
        assert b.rate("EUR", 30) == r_a

    def test_seed_changes_series(self):
        assert RateService(seed=1).rate("EUR", 5) != RateService(seed=2).rate("EUR", 5)

    def test_usd_always_unity(self):
        rate = RateService().rate("USD", 123)
        assert (rate.low, rate.mid, rate.high) == (1.0, 1.0, 1.0)

    def test_low_mid_high_ordering(self):
        service = RateService()
        for day in range(0, 200, 17):
            for code in ("EUR", "GBP", "BRL", "JPY"):
                rate = service.rate(code, day)
                assert 0 < rate.low <= rate.mid <= rate.high

    def test_walk_stays_near_anchor(self):
        service = RateService(seed=7)
        anchor = CURRENCIES["EUR"].usd_mid_2013
        for day in (30, 90, 180, 364):
            mid = service.rate("EUR", day).mid
            assert 0.7 * anchor < mid < 1.3 * anchor

    def test_unknown_currency(self):
        with pytest.raises(KeyError):
            RateService().rate("XXX", 0)

    def test_negative_day(self):
        with pytest.raises(ValueError):
            RateService().rate("EUR", -1)

    def test_extremes(self):
        service = RateService()
        low, high = service.extremes("EUR", range(10))
        rates = [service.rate("EUR", d) for d in range(10)]
        assert low == min(r.low for r in rates)
        assert high == max(r.high for r in rates)

    def test_extremes_empty(self):
        with pytest.raises(ValueError):
            RateService().extremes("EUR", [])

    def test_daily_rate_validation(self):
        with pytest.raises(ValueError):
            DailyRate("EUR", 0, low=1.2, mid=1.1, high=1.3)


class TestConverter:
    def test_usd_identity(self):
        converter = Converter(RateService())
        assert converter.to_usd(10.0, "USD", 5) == 10.0

    def test_eur_uses_rate(self):
        service = RateService()
        converter = Converter(service)
        rate = service.rate("EUR", 3)
        assert converter.to_usd(100.0, "EUR", 3) == pytest.approx(100 * rate.mid)
        assert converter.to_usd(100.0, "EUR", 3, bound="low") == pytest.approx(100 * rate.low)

    def test_usd_range(self):
        converter = Converter(RateService())
        low, high = converter.usd_range(100.0, "EUR", 3)
        assert low < high

    def test_errors(self):
        converter = Converter(RateService())
        with pytest.raises(ConversionError):
            converter.to_usd(-1.0, "EUR", 0)
        with pytest.raises(ConversionError):
            converter.to_usd(1.0, "XXX", 0)
        with pytest.raises(ConversionError):
            converter.to_usd(1.0, "EUR", 0, bound="median")


class TestGuard:
    def test_usd_only_guard_is_one(self):
        assert max_gap_ratio(RateService(), ["USD"], [0, 1, 2]) == 1.0

    def test_guard_exceeds_one_with_foreign_currency(self):
        assert max_gap_ratio(RateService(), ["EUR"], [0]) > 1.0

    def test_guard_monotone_in_days(self):
        """More days can only widen the extreme-rate gap."""
        service = RateService()
        narrow = max_gap_ratio(service, ["EUR", "GBP"], range(3))
        wide = max_gap_ratio(service, ["EUR", "GBP"], range(30))
        assert wide >= narrow

    def test_guard_monotone_in_currencies(self):
        service = RateService()
        one = max_gap_ratio(service, ["EUR"], range(7))
        two = max_gap_ratio(service, ["EUR", "BRL"], range(7))
        assert two >= one

    def test_margin_inflates(self):
        service = RateService()
        base = max_gap_ratio(service, ["EUR"], [0])
        assert max_gap_ratio(service, ["EUR"], [0], margin=0.01) == pytest.approx(base * 1.01)

    def test_unknown_currency_rejected(self):
        with pytest.raises(ConversionError):
            max_gap_ratio(RateService(), ["XXX"], [0])

    def test_empty_days_rejected(self):
        with pytest.raises(ValueError):
            max_gap_ratio(RateService(), ["EUR"], [])

    @given(
        days=st.lists(st.integers(min_value=0, max_value=120), min_size=1, max_size=10),
        amount=st.floats(min_value=0.5, max_value=5000),
    )
    @settings(max_examples=50, deadline=None)
    def test_guard_bounds_pure_conversion_property(self, days, amount):
        """Converting one fixed EUR amount on any two dataset days can never
        produce a USD ratio exceeding the guard -- the paper's soundness
        property for the currency filter."""
        service = RateService()
        converter = Converter(service)
        guard = max_gap_ratio(service, ["EUR"], days)
        values = []
        for day in days:
            values.append(converter.to_usd(amount, "EUR", day, bound="low"))
            values.append(converter.to_usd(amount, "EUR", day, bound="high"))
        assert max(values) / min(values) <= guard * (1 + 1e-12)
