"""``python -m repro.serve`` -- the CLI's ``serve`` subcommand."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main(["serve", *sys.argv[1:]]))
