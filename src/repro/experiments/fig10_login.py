"""Fig. 10: the impact of login on Kindle ebook prices at amazon.com,
plus the §4.4 persona null result."""

from __future__ import annotations

import statistics

from repro.analysis.personal import login_experiment, persona_experiment
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 10 and the persona null result."""
    result = FigureResult(
        figure_id="FIG10",
        title="Impact of login on Kindle ebook prices (amazon.com)",
        paper_claim=(
            "price variations for the same product across three logged-in "
            "users and the logged-out state, with little correlation to "
            "being logged in or not; personas (affluent vs budget) show no "
            "differences at all"
        ),
        columns=("identity", "n_products", "mean_price", "times_cheapest"),
    )
    world = ctx.world
    n_products = max(10, int(40 * ctx.scale.catalog_scale))
    study = login_experiment(world, n_products=n_products, seed=ctx.seed)

    cheapest_counts = {identity: 0 for identity in study.series}
    for index in range(len(study.product_urls)):
        prices = {
            identity: values[index]
            for identity, values in study.series.items()
            if values[index] is not None
        }
        if not prices:
            continue
        low = min(prices.values())
        for identity, price in prices.items():
            if price == low:
                cheapest_counts[identity] += 1

    for identity, values in study.series.items():
        present = [v for v in values if v is not None]
        result.add_row(
            identity, len(present), statistics.fmean(present),
            cheapest_counts[identity],
        )

    differing = study.products_with_identity_differences()
    result.check(
        "a substantial share of ebooks price differently per identity",
        differing >= 0.3 * len(study.product_urls),
    )
    means = {i: study.mean_price(i) for i in study.series}
    anon = means["W/o login"]
    logged = [v for k, v in means.items() if k != "W/o login"]
    result.check(
        "no systematic logged-in premium (anon mean inside user range +/-5%)",
        min(logged) * 0.95 <= anon <= max(logged) * 1.05,
    )
    result.check(
        "being logged out is not uniformly cheapest",
        cheapest_counts["W/o login"] < len(study.product_urls),
    )

    # Persona null result (uses a subset of retailers to stay fast).
    domains = ctx.world.crawled_domains[:6]
    comparisons = persona_experiment(
        world, domains=domains, products_per_domain=3, seed=ctx.seed
    )
    differing_personas = [c for c in comparisons if c.differs]
    result.check(
        "personas (affluent vs budget) show zero price differences",
        not differing_personas,
    )
    result.notes.append(
        f"{differing}/{len(study.product_urls)} ebooks differ across identities; "
        f"{len(comparisons)} persona comparisons all equal"
    )
    return result
