"""Simulated network substrate.

The paper's measurement system depends on a piece of infrastructure we do
not have: 14 vantage points scattered around the world issuing synchronized
HTTP requests to live retailers.  This package provides a faithful,
deterministic stand-in:

* :mod:`repro.net.urls` -- URL parsing, joining and normalization,
* :mod:`repro.net.http` -- request/response messages and header handling,
* :mod:`repro.net.geoip` -- an IP address plan plus a geo-IP database that
  retailer servers use to localize prices and currencies (exactly the
  mechanism the paper says causes per-location prices),
* :mod:`repro.net.clock` -- virtual time shared by the whole simulation,
* :mod:`repro.net.transport` -- DNS + routing of requests to registered
  servers with a latency model,
* :mod:`repro.net.useragent` -- browser/OS profiles (Fig. 7 includes three
  Spain vantage points differing only in browser configuration),
* :mod:`repro.net.cookiejar` -- client-side cookie storage,
* :mod:`repro.net.vantage` -- the measurement vantage points themselves.
"""

from repro.net.clock import VirtualClock
from repro.net.geoip import GeoIPDatabase, GeoLocation, IPAddressPlan
from repro.net.http import Headers, HttpRequest, HttpResponse, HttpStatus
from repro.net.transport import DNSError, Network, TransportError
from repro.net.urls import URL, urljoin
from repro.net.useragent import BrowserProfile, STANDARD_PROFILES
from repro.net.vantage import VantagePoint, standard_vantage_points

__all__ = [
    "BrowserProfile",
    "DNSError",
    "GeoIPDatabase",
    "GeoLocation",
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HttpStatus",
    "IPAddressPlan",
    "Network",
    "STANDARD_PROFILES",
    "TransportError",
    "URL",
    "VantagePoint",
    "VirtualClock",
    "standard_vantage_points",
    "urljoin",
]
