"""API quality gates: every module imports, everything public is documented.

Not a style linter -- a contract: the README promises "doc comments on
every public item", and this test makes that promise falsifiable.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro


def _walk_modules() -> list[str]:
    names = ["repro"]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(info.name)
    return sorted(names)


ALL_MODULES = _walk_modules()


@pytest.mark.parametrize("name", ALL_MODULES)
def test_module_imports_and_documented(name):
    module = importlib.import_module(name)
    assert module.__doc__ and module.__doc__.strip(), f"{name} lacks a docstring"


@pytest.mark.parametrize("name", ALL_MODULES)
def test_public_items_documented(name):
    module = importlib.import_module(name)
    missing: list[str] = []
    for attr_name in dir(module):
        if attr_name.startswith("_"):
            continue
        attr = getattr(module, attr_name)
        if not (inspect.isclass(attr) or inspect.isfunction(attr)):
            continue
        if getattr(attr, "__module__", None) != name:
            continue  # re-export; documented at its home
        if not (attr.__doc__ and attr.__doc__.strip()):
            missing.append(attr_name)
        if inspect.isclass(attr):
            for method_name, method in inspect.getmembers(attr, inspect.isfunction):
                if method_name.startswith("_"):
                    continue
                if method.__qualname__.split(".")[0] != attr.__name__:
                    continue  # inherited
                if not (method.__doc__ and method.__doc__.strip()):
                    missing.append(f"{attr_name}.{method_name}")
    assert not missing, f"undocumented public items in {name}: {missing}"


def test_package_count_sanity():
    """The system inventory in DESIGN.md lists 9+ subsystems; make sure
    none silently disappears from the package."""
    packages = {name for name in ALL_MODULES if name.count(".") == 1}
    expected = {
        "repro.htmlmodel", "repro.net", "repro.fx", "repro.ecommerce",
        "repro.core", "repro.crowd", "repro.crawler", "repro.analysis",
        "repro.experiments",
    }
    assert expected <= {p.rsplit(".", 1)[0] + "." + p.rsplit(".", 1)[1]
                        for p in packages} or expected <= packages
