"""Extent of price variation per domain (Fig. 3).

"Fig. 3 shows the fraction of requests we sent out to each retailer that
had price variation.  In some cases, we see a 100% coverage, pointing to
the fact that price variations are a persistent and repeatable phenomenon."
"""

from __future__ import annotations

from typing import Sequence

from repro.core.reports import PriceCheckReport

__all__ = ["variation_extent"]


def variation_extent(
    reports: Sequence[PriceCheckReport], *, min_reports: int = 1
) -> dict[str, float]:
    """domain -> fraction of its checks that showed guarded variation."""
    if min_reports < 1:
        raise ValueError("min_reports must be >= 1")
    totals: dict[str, int] = {}
    varied: dict[str, int] = {}
    for report in reports:
        if report.ratio is None:
            continue
        totals[report.domain] = totals.get(report.domain, 0) + 1
        if report.has_variation:
            varied[report.domain] = varied.get(report.domain, 0) + 1
    return {
        domain: varied.get(domain, 0) / total
        for domain, total in totals.items()
        if total >= min_reports
    }
