"""The crawled dataset: reports from the systematic daily crawl.

Since the columnar-store refactor this is a thin view over a
:class:`~repro.store.ReportTable`: :meth:`CrawlDataset.add` appends
columns (no dataclass is retained), ``dataset.reports`` is a lazy
:class:`~repro.store.TableSlice`, and the grouping accessors ride the
table's cached, version-invalidated indexes instead of rebuilding a
dict of dataclasses on every call.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.core.reports import PriceCheckReport
from repro.store import ReportTable, TableSlice

__all__ = ["CrawlDataset"]


class CrawlDataset:
    """All product-day reports produced by :func:`repro.crawler.run_crawl`."""

    def __init__(
        self,
        reports: Optional[list[PriceCheckReport]] = None,
        *,
        table: Optional[ReportTable] = None,
    ) -> None:
        if reports and table is not None:
            raise ValueError("pass reports or table, not both")
        self._table = table if table is not None else ReportTable()
        if reports:
            self._table.extend(reports)

    @property
    def table(self) -> ReportTable:
        """The columnar spine backing this dataset."""
        return self._table

    @property
    def reports(self) -> TableSlice:
        """All reports, as a lazy list-compatible view."""
        return TableSlice(self._table)

    def add(self, report: PriceCheckReport) -> None:
        """Append one product-day report."""
        self._table.append(report)

    def append_segment(self, other: "CrawlDataset") -> None:
        """Fold another dataset's rows onto this spine (columnar merge).

        Delegates to :meth:`ReportTable.append_segment`; byte-identical
        to re-adding every report, without materializing any.
        """
        self._table.append_segment(other._table)

    def __len__(self) -> int:
        return len(self._table)

    def __iter__(self) -> Iterator[PriceCheckReport]:
        return iter(self.reports)

    # ------------------------------------------------------------------
    @property
    def domains(self) -> list[str]:
        value = self._table.domains.value
        return sorted(value(did) for did in self._table.rows_by_domain())

    @property
    def day_indices(self) -> list[int]:
        return self._table.day_values()

    @property
    def n_extracted_prices(self) -> int:
        """Total successful price extractions -- the paper's '188K'."""
        return sum(self._table.n_valid)

    def by_domain(self) -> dict[str, list[PriceCheckReport]]:
        """Reports grouped by retailer domain."""
        table = self._table
        return {
            table.domains.value(did): [table.report(i) for i in rows]
            for did, rows in table.rows_by_domain().items()
        }

    def by_product(self) -> dict[str, list[PriceCheckReport]]:
        """URL -> that product's reports across days."""
        table = self._table
        return {
            table.urls.value(uid): [table.report(i) for i in rows]
            for uid, rows in table.rows_by_url().items()
        }

    def summary(self) -> dict[str, int]:
        """Headline dataset statistics (the §3.2 crawl numbers)."""
        table = self._table
        return {
            "retailers": len(table.rows_by_domain()),
            "reports": len(table),
            "days": len(table.day_values()),
            "extracted_prices": self.n_extracted_prices,
            "products": len(table.rows_by_url()),
        }

    def __repr__(self) -> str:
        return f"CrawlDataset({len(self)} reports)"
