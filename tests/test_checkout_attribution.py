"""Checkout quotes and attribution analysis tests."""

from __future__ import annotations

import pytest

from repro.analysis.attribution import CheckoutProbe
from repro.analysis.personal import derive_anchor_for_domain
from repro.core.backend import CheckRequest
from repro.ecommerce.checkout import (
    CheckoutQuote,
    ShippingPolicy,
    VAT_RATES,
    vat_rate,
)
from repro.ecommerce.localization import parse_price
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import select, select_one


class TestShippingPolicy:
    def test_domestic_vs_international(self):
        policy = ShippingPolicy(domestic=4.0, international=15.0)
        assert policy.cost("US", "US", 20.0) == 4.0
        assert policy.cost("FI", "US", 20.0) == 15.0

    def test_free_threshold(self):
        policy = ShippingPolicy(domestic=4.0, international=15.0, free_threshold=50.0)
        assert policy.cost("FI", "US", 60.0) == 0.0
        assert policy.cost("FI", "US", 49.0) == 15.0

    def test_bundled_display_zero(self):
        policy = ShippingPolicy(
            domestic=8.0, international=8.0, bundled_display=frozenset({"FI"})
        )
        assert policy.cost("FI", "GB", 10.0) == 0.0
        assert policy.cost("GB", "GB", 10.0) == 8.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ShippingPolicy(domestic=-1.0)
        with pytest.raises(ValueError):
            ShippingPolicy(free_threshold=-5.0)


class TestVat:
    def test_eu_shop_charges_destination_rate(self):
        assert vat_rate("IT", "FI") == VAT_RATES["FI"]
        assert vat_rate("IT", "DE") == VAT_RATES["DE"]

    def test_eu_shop_exports_tax_free(self):
        assert vat_rate("IT", "US") == 0.0
        assert vat_rate("IT", "BR") == 0.0

    def test_non_eu_shop_charges_nothing(self):
        assert vat_rate("US", "FI") == 0.0
        assert vat_rate("US", "US") == 0.0

    def test_quote_total(self):
        quote = CheckoutQuote(item=10.0, shipping=2.0, tax=1.5, currency="USD")
        assert quote.total == 13.5
        with pytest.raises(ValueError):
            CheckoutQuote(item=-1.0, shipping=0, tax=0, currency="USD")


class TestCheckoutPage:
    def test_quote_page_structure(self, tiny_world):
        domain = "www.digitalrev.com"
        product = tiny_world.retailer(domain).catalog.products[0]
        vantage = tiny_world.vantage_points[0]  # Belgium
        response = vantage.fetch(
            tiny_world.network, f"http://{domain}/checkout/{product.sku}"
        )
        assert response.ok
        doc = parse_html(response.body)
        rows = select(doc, "table.checkout-summary tr.quote-line")
        assert [r.get("data-line") for r in rows] == [
            "item", "shipping", "tax", "total",
        ]

    def test_total_is_sum_of_lines(self, tiny_world):
        domain = "www.guess.eu"
        product = tiny_world.retailer(domain).catalog.products[0]
        vantage = next(v for v in tiny_world.vantage_points
                       if v.name == "Finland - Tampere")
        response = vantage.fetch(
            tiny_world.network, f"http://{domain}/checkout/{product.sku}"
        )
        doc = parse_html(response.body)
        values = {}
        for row in select(doc, "tr.quote-line"):
            cell = next(c for c in row.child_elements() if c.has_class("line-value"))
            values[row.get("data-line")] = parse_price(cell.text(strip=True)).amount
        assert values["total"] == pytest.approx(
            values["item"] + values["shipping"] + values["tax"], abs=0.03
        )
        # EU shop shipping to Finland: VAT charged at the Finnish rate.
        assert values["tax"] == pytest.approx(values["item"] * VAT_RATES["FI"], rel=0.02)

    def test_us_destination_no_tax(self, tiny_world):
        domain = "www.guess.eu"
        product = tiny_world.retailer(domain).catalog.products[0]
        vantage = next(v for v in tiny_world.vantage_points
                       if v.name == "USA - Boston")
        response = vantage.fetch(
            tiny_world.network, f"http://{domain}/checkout/{product.sku}"
        )
        doc = parse_html(response.body)
        tax_row = next(r for r in select(doc, "tr.quote-line")
                       if r.get("data-line") == "tax")
        cell = next(c for c in tax_row.child_elements() if c.has_class("line-value"))
        assert parse_price(cell.text(strip=True)).amount == 0.0

    def test_unknown_sku_404(self, tiny_world):
        vantage = tiny_world.vantage_points[0]
        response = vantage.fetch(
            tiny_world.network, "http://www.guess.eu/checkout/NOPE"
        )
        assert not response.ok


class TestAttribution:
    def _flagged_report(self, world, backend, domain):
        anchor = derive_anchor_for_domain(world, domain)
        product = world.retailer(domain).catalog.products[0]
        return backend.check(CheckRequest(
            url=f"http://{domain}{product.path}", anchor=anchor,
        ))

    def test_discriminator_unexplained(self, tiny_world, tiny_backend):
        report = self._flagged_report(tiny_world, tiny_backend, "www.digitalrev.com")
        verdict = CheckoutProbe(tiny_world).attribute(report)
        assert verdict is not None
        assert verdict.unexplained
        assert not verdict.explained_by_logistics

    def test_bundling_confound_explained(self, tiny_world, tiny_backend):
        report = self._flagged_report(tiny_world, tiny_backend, "www.zavvi.com")
        assert report.has_variation  # the crowd would flag it...
        verdict = CheckoutProbe(tiny_world).attribute(report)
        assert verdict is not None
        assert verdict.explained_by_logistics  # ...and the probe clears it
        assert verdict.merchant_total_ratio == pytest.approx(1.0, abs=0.01)

    def test_attribute_row_equals_attribute(self, tiny_world, tiny_backend):
        """The columnar row path must yield the dataclass path's verdict,
        including all-failed rows (None) and cheap/dear tie-breaking."""
        from repro.store import ReportTable

        probe = CheckoutProbe(tiny_world)
        table = ReportTable()
        for domain in ("www.digitalrev.com", "www.zavvi.com",
                       "www.bookdepository.co.uk"):
            report = self._flagged_report(tiny_world, tiny_backend, domain)
            row = table.append(report)
            assert probe.attribute_row(table, row) == probe.attribute(report)
        # A row with no usable observations attributes to None either way.
        from repro.core.reports import PriceCheckReport, VantageObservation

        dead = PriceCheckReport(
            check_id="chk9999999", url="http://www.zavvi.com/product/X",
            domain="www.zavvi.com", day_index=1, timestamp=86400.0,
            observations=[VantageObservation(
                vantage="UK - London", country_code="GB", city="London",
                ok=False, error="down",
            )],
        )
        row = table.append(dead)
        assert probe.attribute(dead) is None
        assert probe.attribute_row(table, row) is None

    def test_quote_in_usd(self, tiny_world):
        probe = CheckoutProbe(tiny_world)
        product = tiny_world.retailer("www.digitalrev.com").catalog.products[0]
        quote = probe.quote("Finland - Tampere", "www.digitalrev.com", product.sku)
        assert quote is not None
        assert quote.item > 0
        assert quote.merchant_total == pytest.approx(quote.item + quote.shipping)

    def test_unknown_vantage_rejected(self, tiny_world):
        probe = CheckoutProbe(tiny_world)
        with pytest.raises(KeyError):
            probe.quote("Atlantis", "www.digitalrev.com", "X")

    def test_unknown_sku_yields_none(self, tiny_world):
        probe = CheckoutProbe(tiny_world)
        assert probe.quote("USA - Boston", "www.digitalrev.com", "NOPE") is None

    def test_free_shipping_retailer(self, tiny_world):
        """bookdepository ships free worldwide: merchant ratio == displayed."""
        probe = CheckoutProbe(tiny_world)
        product = tiny_world.retailer("www.bookdepository.co.uk").catalog.products[0]
        quote = probe.quote(
            "Brazil - Sao Paulo", "www.bookdepository.co.uk", product.sku
        )
        assert quote is not None
        assert quote.shipping == 0.0
