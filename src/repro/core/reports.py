"""Report types: what $heriff tells the user and stores for analysis.

A :class:`PriceCheckReport` is the unit of both datasets in the paper --
one crowd-triggered check, or one crawler product-day.  It carries the
per-vantage-point :class:`VantageObservation` list plus the derived
statistics the figures are built from: min/max USD price, max/min ratio,
and whether the variation survives the conservative currency guard.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["VantageObservation", "PriceCheckReport"]


@dataclass(frozen=True)
class VantageObservation:
    """One vantage point's view of one product at one instant."""

    vantage: str  # vantage point name, e.g. "Finland - Tampere"
    country_code: str
    city: str
    ok: bool
    raw_text: str = ""
    amount: Optional[float] = None  # in display currency
    currency: Optional[str] = None  # ISO code of display currency
    usd: Optional[float] = None  # converted at the day's mid rate
    method: str = ""  # extraction method used
    error: str = ""

    def __post_init__(self) -> None:
        if self.ok and (self.usd is None or self.usd < 0):
            raise ValueError("a successful observation needs a USD value")


@dataclass
class PriceCheckReport:
    """The outcome of fanning one URI out to the vantage fleet."""

    check_id: str
    url: str
    domain: str
    day_index: int
    timestamp: float
    observations: list[VantageObservation] = field(default_factory=list)
    #: Largest ratio that currency translation alone could explain, given
    #: the currencies seen and the day's rate extremes.
    guard_threshold: float = 1.0
    #: Who asked (crowd user id or "crawler"), for dataset bookkeeping.
    origin: str = "crawler"

    # ------------------------------------------------------------------
    def valid_observations(self) -> list[VantageObservation]:
        """The observations that produced a usable USD price.

        A free product is a price too: the test is ``usd is not None``,
        not truthiness, so a legitimate ``usd == 0.0`` observation is
        never silently dropped.
        """
        return [obs for obs in self.observations if obs.ok and obs.usd is not None]

    @property
    def prices_usd(self) -> list[float]:
        return [obs.usd for obs in self.valid_observations()]  # type: ignore[misc]

    @property
    def min_usd(self) -> Optional[float]:
        prices = self.prices_usd
        return min(prices) if prices else None

    @property
    def max_usd(self) -> Optional[float]:
        prices = self.prices_usd
        return max(prices) if prices else None

    @property
    def ratio(self) -> Optional[float]:
        """max/min observed USD price, the paper's magnitude metric."""
        prices = self.prices_usd
        if len(prices) < 2:
            return None
        low = min(prices)
        if low <= 0:
            return None
        return max(prices) / low

    @property
    def has_variation(self) -> bool:
        """True when the spread strictly exceeds the currency guard.

        This is the paper's detection rule: "we keep only products whose
        price variation is strictly greater than the maximum gap that can
        exist given the two extreme exchange rates".
        """
        ratio = self.ratio
        return ratio is not None and ratio > self.guard_threshold

    def observation_for(self, vantage: str) -> Optional[VantageObservation]:
        """The named vantage point's observation, or None."""
        for obs in self.observations:
            if obs.vantage == vantage:
                return obs
        return None

    def ratios_by_vantage(self) -> dict[str, float]:
        """vantage name -> price(vantage)/min price, for Fig. 6/7-style plots."""
        low = self.min_usd
        if low is None or low <= 0:
            return {}
        return {
            obs.vantage: (obs.usd or 0.0) / low
            for obs in self.valid_observations()
        }

    def summary_line(self) -> str:
        """A one-line human rendering (used by examples and the CLI)."""
        ratio = self.ratio
        if ratio is None:
            return f"{self.url}: not enough data"
        flag = "VARIATION" if self.has_variation else "uniform"
        return (
            f"{self.url}: {len(self.valid_observations())} points, "
            f"${self.min_usd:.2f}-${self.max_usd:.2f} "
            f"(x{ratio:.3f}, guard x{self.guard_threshold:.3f}) [{flag}]"
        )
