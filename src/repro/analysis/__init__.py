"""Analysis pipeline: from raw check reports to the paper's figures.

* :mod:`repro.analysis.stats` -- percentiles and box-plot statistics,
* :mod:`repro.analysis.cleaning` -- noise removal: the dataset-wide
  currency guard, minimum-data filters, repeatability filters,
* :mod:`repro.analysis.ratios` -- per-domain variation counts and
  magnitude distributions (Figs. 1, 2, 4),
* :mod:`repro.analysis.extent` -- fraction of requests with variation per
  domain (Fig. 3),
* :mod:`repro.analysis.products` -- ratio vs product price and
  per-vantage structure (Figs. 5, 6),
* :mod:`repro.analysis.locations` -- per-location ratios, pairwise grids,
  the Finland profile (Figs. 7, 8, 9),
* :mod:`repro.analysis.personal` -- persona and login experiments
  (Fig. 10 and the §4.4 null result),
* :mod:`repro.analysis.thirdparty` -- the §4.4 tracker census,
* :mod:`repro.analysis.tables` -- dataset summary tables (§3.2),
* :mod:`repro.analysis.detection` -- detection precision/recall against
  scenario ground truth (:mod:`repro.scenarios`).
"""

from repro.analysis.attribution import AttributionVerdict, CheckoutProbe
from repro.analysis.cleaning import CleanResult, clean_reports, dataset_guard
from repro.analysis.detection import (
    DetectionScore,
    DomainTruth,
    detect_discriminators,
    score_detection,
)
from repro.analysis.extent import variation_extent
from repro.analysis.locations import (
    finland_profile,
    location_ratio_stats,
    pairwise_grid,
)
from repro.analysis.products import per_vantage_structure, ratio_vs_min_price
from repro.analysis.ratios import domain_ratio_stats, domain_variation_counts
from repro.analysis.stats import BoxStats, percentile
from repro.analysis.tables import dataset_summary
from repro.analysis.thirdparty import tracker_presence

__all__ = [
    "AttributionVerdict",
    "BoxStats",
    "CheckoutProbe",
    "CleanResult",
    "clean_reports",
    "dataset_guard",
    "dataset_summary",
    "detect_discriminators",
    "DetectionScore",
    "DomainTruth",
    "domain_ratio_stats",
    "domain_variation_counts",
    "finland_profile",
    "location_ratio_stats",
    "pairwise_grid",
    "per_vantage_structure",
    "percentile",
    "ratio_vs_min_price",
    "tracker_presence",
    "variation_extent",
]
