# Developer entry points.  Everything runs from the repo root with the
# in-tree package (PYTHONPATH=src); no installation step.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test docs-check bench examples

# Tier-1: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# Docs cannot rot: every symbol and CLI flag named in docs/API.md must
# resolve against the live code.
docs-check:
	$(PYTHON) -m pytest tests/test_docs_api.py -q

# Refresh benchmarks/BENCH_pipeline.json (per-check, crawl/campaign
# throughput, workers scaling curve).
bench:
	$(PYTHON) benchmarks/run_bench.py

# Run every example (docs/EXAMPLES.md shows expected output).
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crowd_campaign.py
	$(PYTHON) examples/systematic_crawl.py
	$(PYTHON) examples/currency_guard_demo.py
	$(PYTHON) examples/kindle_login_study.py
