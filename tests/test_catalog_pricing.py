"""Catalog generation and pricing-policy tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecommerce.catalog import (
    CATEGORY_PRICE_BANDS,
    Catalog,
    Product,
    generate_catalog,
)
from repro.ecommerce.pricing import (
    ABTestNoise,
    CategoryDispatch,
    CityMultiplicative,
    DampedGeoMultiplicative,
    GeoAdditive,
    GeoMultiplicative,
    GeoMultiplyAdd,
    IdentityKeyed,
    PricingContext,
    TemporalDrift,
    UniformPricing,
    coverage_includes,
)


def ctx(**kwargs) -> PricingContext:
    defaults = dict(country_code="US", city="Boston", day_index=0)
    defaults.update(kwargs)
    return PricingContext(**defaults)


def product(price: float = 100.0, sku: str = "SKU1", category: str = "books") -> Product:
    return Product(sku=sku, name="Thing", category=category,
                   base_price_usd=price, path=f"/product/{sku}")


class TestCatalog:
    def test_generation_deterministic(self):
        a = generate_catalog("shop.example", "books", 20, seed=5)
        b = generate_catalog("shop.example", "books", 20, seed=5)
        assert [(p.sku, p.base_price_usd) for p in a] == [
            (p.sku, p.base_price_usd) for p in b
        ]

    def test_seed_changes_prices(self):
        a = generate_catalog("shop.example", "books", 20, seed=5)
        b = generate_catalog("shop.example", "books", 20, seed=6)
        assert [p.base_price_usd for p in a] != [p.base_price_usd for p in b]

    def test_prices_inside_band(self):
        low, high = CATEGORY_PRICE_BANDS["photography"]
        catalog = generate_catalog("shop.example", "photography", 200, seed=1)
        for item in catalog:
            assert low * 0.9 <= item.base_price_usd <= high * 1.01

    def test_unique_skus_and_paths(self):
        catalog = generate_catalog("shop.example", "books", 100, seed=1)
        assert len({p.sku for p in catalog}) == 100
        assert len({p.path for p in catalog}) == 100

    def test_lookup_by_sku_and_path(self):
        catalog = generate_catalog("shop.example", "books", 5, seed=1)
        item = catalog.products[3]
        assert catalog.by_sku(item.sku) is item
        assert catalog.by_path(item.path) is item
        assert catalog.by_sku("missing") is None

    @pytest.mark.parametrize("style,prefix", [
        ("product", "/product/"), ("p-html", "/p/"),
        ("item-query", "/item/"), ("deep", "/shop/catalog/"),
    ])
    def test_path_styles(self, style, prefix):
        catalog = generate_catalog("s.x", "books", 3, seed=1, path_style=style)
        assert all(p.path.startswith(prefix) for p in catalog)

    def test_bad_path_style(self):
        with pytest.raises(ValueError):
            generate_catalog("s.x", "books", 1, seed=1, path_style="weird")

    def test_unknown_category(self):
        with pytest.raises(KeyError):
            generate_catalog("s.x", "vaporware", 1, seed=1)

    def test_merge_with_prefix(self):
        catalog = generate_catalog("s.x", "department", 10, seed=1)
        generate_catalog("s.x", "ebooks", 5, seed=1, sku_prefix="KND", into=catalog)
        assert len(catalog) == 15
        assert sum(1 for p in catalog if p.sku.startswith("KND")) == 5

    def test_duplicate_sku_rejected(self):
        catalog = Catalog(retailer="s.x")
        catalog.add(product(sku="A"))
        with pytest.raises(ValueError):
            catalog.add(product(sku="A"))

    def test_sample_bounds(self):
        import random
        catalog = generate_catalog("s.x", "books", 10, seed=1)
        rng = random.Random(0)
        assert len(catalog.sample(3, rng=rng)) == 3
        assert len(catalog.sample(99, rng=rng)) == 10

    def test_product_validation(self):
        with pytest.raises(ValueError):
            Product("S", "N", "books", 0.0, "/p/S")
        with pytest.raises(ValueError):
            Product("S", "N", "books", 1.0, "no-slash")


class TestCoverage:
    def test_extremes(self):
        assert coverage_includes(product(), 1.0, seed=0)
        assert not coverage_includes(product(), 0.0, seed=0)

    def test_stable_per_product(self):
        item = product(sku="X9")
        first = coverage_includes(item, 0.5, seed=3)
        assert all(coverage_includes(item, 0.5, seed=3) == first for _ in range(5))

    def test_fraction_approximates(self):
        items = [product(sku=f"S{i}") for i in range(600)]
        covered = sum(coverage_includes(p, 0.3, seed=1) for p in items)
        assert 0.22 * 600 < covered < 0.38 * 600

    def test_invalid_coverage(self):
        with pytest.raises(ValueError):
            coverage_includes(product(), 1.5, seed=0)


class TestGeoPolicies:
    def test_uniform(self):
        assert UniformPricing().price(product(50), ctx()) == 50
        assert UniformPricing(margin=1.1).price(product(50), ctx()) == pytest.approx(55)

    def test_multiplicative_table(self):
        policy = GeoMultiplicative(table={"FI": 1.3, "US": 1.0}, default=1.1)
        assert policy.price(product(100), ctx(country_code="FI")) == pytest.approx(130)
        assert policy.price(product(100), ctx(country_code="US")) == pytest.approx(100)
        assert policy.price(product(100), ctx(country_code="JP")) == pytest.approx(110)

    def test_multiplicative_coverage_exempts(self):
        policy = GeoMultiplicative(table={"FI": 2.0}, coverage=0.0)
        assert policy.price(product(100), ctx(country_code="FI")) == 100

    def test_additive(self):
        policy = GeoAdditive(table={"FI": 10.0}, default=0.0)
        assert policy.price(product(5), ctx(country_code="FI")) == 15
        assert policy.price(product(5), ctx(country_code="US")) == 5

    def test_additive_per_product_scale(self):
        policy = GeoAdditive(
            table={"FI": 10.0}, per_product_scale=(0.5, 2.0), seed=1
        )
        prices = {
            policy.price(product(100, sku=f"S{i}"), ctx(country_code="FI"))
            for i in range(20)
        }
        assert len(prices) > 5  # per-product variation
        assert all(105 <= p <= 120 for p in prices)

    def test_additive_scale_validation(self):
        with pytest.raises(ValueError):
            GeoAdditive(table={}, per_product_scale=(2.0, 1.0))

    def test_multiply_add(self):
        policy = GeoMultiplyAdd(
            mult_table={"FI": 1.15}, add_table={"US": 6.0}
        )
        assert policy.price(product(20), ctx(country_code="FI")) == pytest.approx(23)
        assert policy.price(product(20), ctx(country_code="US")) == pytest.approx(26)
        assert policy.price(product(20), ctx(country_code="DE")) == pytest.approx(20)

    def test_damped_full_below_knee(self):
        policy = DampedGeoMultiplicative(
            table={"FI": 1.4}, knee=1000, ceiling=2000, floor_fraction=0.5
        )
        assert policy.price(product(500), ctx(country_code="FI")) == pytest.approx(700)

    def test_damped_floor_above_ceiling(self):
        policy = DampedGeoMultiplicative(
            table={"FI": 1.4}, knee=1000, ceiling=2000, floor_fraction=0.5
        )
        # multiplier shrinks to 1 + 0.4*0.5 = 1.2
        assert policy.price(product(4000), ctx(country_code="FI")) == pytest.approx(4800)

    def test_damped_interpolates(self):
        policy = DampedGeoMultiplicative(
            table={"FI": 1.4}, knee=1000, ceiling=2000, floor_fraction=0.5
        )
        mid = policy.price(product(1500), ctx(country_code="FI"))
        assert 1500 * 1.2 < mid < 1500 * 1.4

    def test_damped_validation(self):
        with pytest.raises(ValueError):
            DampedGeoMultiplicative(table={}, knee=100, ceiling=50)


class TestCityPolicy:
    def test_city_table(self):
        policy = CityMultiplicative(table={"New York": 1.12, "Chicago": 1.0})
        assert policy.price(product(100), ctx(city="New York")) == pytest.approx(112)
        assert policy.price(product(100), ctx(city="Chicago")) == pytest.approx(100)
        assert policy.price(product(100), ctx(city="Berlin")) == pytest.approx(100)

    def test_noisy_city_mixed_per_product(self):
        policy = CityMultiplicative(
            table={"Lincoln": 1.0, "Boston": 1.0},
            noisy_cities=frozenset({"Lincoln"}),
            noise_amplitude=0.05,
            seed=2,
        )
        diffs = []
        for i in range(40):
            item = product(100, sku=f"S{i}")
            lincoln = policy.price(item, ctx(city="Lincoln"))
            boston = policy.price(item, ctx(city="Boston"))
            diffs.append(lincoln - boston)
        assert any(d > 0 for d in diffs) and any(d < 0 for d in diffs)

    def test_noise_stable_per_product_city(self):
        policy = CityMultiplicative(
            table={}, noisy_cities=frozenset({"Lincoln"}),
            noise_amplitude=0.05, seed=2,
        )
        item = product(sku="S")
        assert policy.price(item, ctx(city="Lincoln")) == policy.price(
            item, ctx(city="Lincoln")
        )


class TestIdentityAndNoise:
    def test_identity_keyed_varies_by_identity(self):
        policy = IdentityKeyed(multipliers=(0.8, 1.0, 1.2), seed=1)
        item = product(10)
        prices = {
            policy.price(item, ctx(identity=f"user{i}")) for i in range(12)
        }
        assert len(prices) > 1
        assert prices <= {8.0, 10.0, 12.0}

    def test_identity_keyed_stable(self):
        policy = IdentityKeyed(seed=1)
        item = product(10)
        assert policy.price(item, ctx(identity="alice")) == policy.price(
            item, ctx(identity="alice")
        )

    def test_identity_keyed_anonymous_default(self):
        policy = IdentityKeyed(seed=1)
        assert policy.price(product(10), ctx()) == policy.price(product(10), ctx())

    def test_identity_keyed_needs_points(self):
        with pytest.raises(ValueError):
            IdentityKeyed(multipliers=())

    def test_ab_noise_fraction(self):
        policy = ABTestNoise(UniformPricing(), amplitude=0.1, fraction=0.5, seed=1)
        item = product(100)
        bumped = sum(
            policy.price(item, ctx(nonce=i)) > 100 for i in range(400)
        )
        assert 120 < bumped < 280

    def test_ab_noise_off(self):
        policy = ABTestNoise(UniformPricing(), amplitude=0.0, fraction=1.0)
        assert policy.price(product(100), ctx(nonce=1)) == 100

    def test_ab_fraction_validated(self):
        with pytest.raises(ValueError):
            ABTestNoise(UniformPricing(), fraction=1.5)

    def test_temporal_drift_by_day(self):
        policy = TemporalDrift(UniformPricing(), amplitude=0.05, seed=1)
        item = product(100)
        day0 = policy.price(item, ctx(day_index=0))
        day1 = policy.price(item, ctx(day_index=1))
        assert day0 != day1
        assert policy.price(item, ctx(day_index=0)) == day0
        assert 95 <= day0 <= 105

    def test_dispatch_routes_by_category(self):
        policy = CategoryDispatch(
            routes={"ebooks": UniformPricing(margin=2.0)},
            default=UniformPricing(),
        )
        assert policy.price(product(10, category="ebooks"), ctx()) == 20
        assert policy.price(product(10, category="books"), ctx()) == 10


@given(
    price=st.floats(min_value=1.0, max_value=10000.0),
    country=st.sampled_from(["US", "FI", "DE", "BR", "GB", "JP"]),
    day=st.integers(min_value=0, max_value=200),
)
@settings(max_examples=100, deadline=None)
def test_policies_always_positive_property(price, country, day):
    """No policy composition may ever produce a non-positive price."""
    inner = DampedGeoMultiplicative(table={"FI": 1.4, "US": 1.0}, default=1.1)
    policy = ABTestNoise(
        TemporalDrift(
            GeoMultiplyAdd(mult_table={"FI": 1.2}, add_table={"US": 5.0}),
            amplitude=0.05,
        ),
        amplitude=0.05, fraction=0.2,
    )
    item = product(round(price, 2), sku=f"P{int(price * 100)}")
    c = ctx(country_code=country, day_index=day, nonce=day)
    assert inner.price(item, c) > 0
    assert policy.price(item, c) > 0
