"""Network transport tests: DNS, latency, redirects, loss."""

from __future__ import annotations

import pytest

from repro.net.clock import VirtualClock
from repro.net.http import Headers, HttpRequest, HttpResponse, HttpStatus, SetCookie
from repro.net.transport import DNSError, FunctionServer, Network, TransportError
from repro.net.urls import URL


def get(url: str, **kwargs) -> HttpRequest:
    return HttpRequest(method="GET", url=URL.parse(url), **kwargs)


def echo_server(request: HttpRequest) -> HttpResponse:
    return HttpResponse.html(f"path={request.url.path}")


class TestRouting:
    def test_fetch_routes_by_host(self):
        net = Network()
        net.register("a.example", FunctionServer(echo_server))
        net.register("b.example", FunctionServer(lambda r: HttpResponse.html("B")))
        assert net.fetch(get("http://a.example/x")).body == "path=/x"
        assert net.fetch(get("http://b.example/")).body == "B"

    def test_nxdomain(self):
        net = Network()
        with pytest.raises(DNSError):
            net.fetch(get("http://nowhere.example/"))

    def test_unregister(self):
        net = Network()
        net.register("a.example", FunctionServer(echo_server))
        net.unregister("a.example")
        with pytest.raises(DNSError):
            net.fetch(get("http://a.example/"))

    def test_hostname_case_insensitive(self):
        net = Network()
        net.register("Shop.Example", FunctionServer(echo_server))
        assert net.fetch(get("http://shop.example/")).ok

    def test_hostnames_listing(self):
        net = Network()
        net.register("b.x", FunctionServer(echo_server))
        net.register("a.x", FunctionServer(echo_server))
        assert net.hostnames == ["a.x", "b.x"]


class TestTiming:
    def test_clock_advances_per_request(self):
        clock = VirtualClock()
        net = Network(clock, seed=1)
        net.register("a.example", FunctionServer(echo_server))
        before = clock.now
        response = net.fetch(get("http://a.example/"))
        assert clock.now > before
        assert response.elapsed == pytest.approx(clock.now - before)

    def test_deterministic_with_seed(self):
        def run(seed):
            clock = VirtualClock()
            net = Network(clock, seed=seed)
            net.register("a.example", FunctionServer(echo_server))
            for _ in range(5):
                net.fetch(get("http://a.example/"))
            return clock.now

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_request_timestamp_stamped(self):
        net = Network(VirtualClock(1000))
        seen = []
        net.register("a.example", FunctionServer(lambda r: (seen.append(r.timestamp), HttpResponse.html("x"))[1]))
        net.fetch(get("http://a.example/"))
        assert seen and seen[0] > 1000


class TestRedirects:
    def _redirecting_network(self) -> Network:
        net = Network()

        def server(request: HttpRequest) -> HttpResponse:
            if request.url.path == "/old":
                resp = HttpResponse.redirect("/new")
                resp.headers.add("Set-Cookie", SetCookie("hop", "1").to_header())
                return resp
            if request.url.path == "/loop":
                return HttpResponse.redirect("/loop")
            return HttpResponse.html(f"cookie={request.cookies.get('hop', '-')}")

        net.register("a.example", FunctionServer(server))
        return net

    def test_follow_redirect(self):
        net = self._redirecting_network()
        response = net.fetch(get("http://a.example/old"))
        assert response.ok
        assert response.url.path == "/new"

    def test_redirect_carries_set_cookie_to_final_response(self):
        net = self._redirecting_network()
        response = net.fetch(get("http://a.example/old"))
        names = [c.name for c in response.set_cookies]
        assert "hop" in names

    def test_redirect_hop_sends_new_cookie(self):
        net = self._redirecting_network()
        response = net.fetch(get("http://a.example/old"))
        assert response.body == "cookie=1"

    def test_no_follow_option(self):
        net = self._redirecting_network()
        response = net.fetch(get("http://a.example/old"), follow_redirects=False)
        assert response.status.is_redirect

    def test_redirect_loop_detected(self):
        net = self._redirecting_network()
        with pytest.raises(TransportError):
            net.fetch(get("http://a.example/loop"))


class TestLoss:
    def test_loss_raises_transport_error(self):
        net = Network(seed=3, loss_rate=0.99)
        net.register("a.example", FunctionServer(echo_server))
        with pytest.raises(TransportError):
            for _ in range(10):
                net.fetch(get("http://a.example/"))

    def test_zero_loss_never_fails(self):
        net = Network(seed=3, loss_rate=0.0)
        net.register("a.example", FunctionServer(echo_server))
        for _ in range(50):
            assert net.fetch(get("http://a.example/")).ok

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            Network(loss_rate=1.0)


class TestAccounting:
    def test_request_count(self):
        net = Network()
        net.register("a.example", FunctionServer(echo_server))
        for _ in range(3):
            net.fetch(get("http://a.example/"))
        assert net.request_count == 3

    def test_request_log_opt_in(self):
        net = Network()
        net.register("a.example", FunctionServer(echo_server))
        net.fetch(get("http://a.example/"))
        assert not net.request_log
        net.fetch(get("http://a.example/"), record=True)
        assert len(net.request_log) == 1
