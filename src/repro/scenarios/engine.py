"""The scenario engine: named, seeded world mutations with ground truth.

A :class:`Scenario` is a declarative recipe for an adversarial world:

* a base :class:`~repro.ecommerce.world.WorldConfig` (tiny roster, no
  long tail -- scenario worlds carry only the retailers their story
  needs),
* a **mutator** that wires those retailers (honest controls, plain geo
  discriminators, and the adversarial behaviours from
  :mod:`repro.scenarios.behaviors`) into the freshly built world, and
* machine-readable **ground truth**
  (:class:`~repro.analysis.detection.DomainTruth` per retailer), the
  reference the harness scores detection against.

The mutation runs *inside* :func:`~repro.ecommerce.world.build_world`
(triggered by ``WorldConfig.scenario``), so a
:class:`~repro.ecommerce.world.WorldSpec` regrows the mutated world
bit-for-bit in executor worker processes -- scenario worlds shard
exactly like the paper world does.

Registering a scenario is declarative too: build a :class:`Scenario`
and pass it to :func:`register_scenario` (the built-ins in
:mod:`repro.scenarios.definitions` do exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.analysis.detection import DomainTruth
from repro.ecommerce.catalog import Catalog, generate_catalog
from repro.ecommerce.pricing import PricingPolicy
from repro.ecommerce.retailer import Retailer, RetailerServer
from repro.ecommerce.templates import PageTemplate, template_for
from repro.ecommerce.world import WorldConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ecommerce.world import World

__all__ = [
    "Scenario",
    "SCENARIOS",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "apply_scenario",
    "scenario_catalog",
    "scenario_retailer",
]


@dataclass(frozen=True)
class Scenario:
    """One named adversarial world plus everything needed to judge it.

    ``mutate`` receives the freshly built world and the world seed; it
    must be a deterministic function of both (no ambient randomness), or
    worker processes regrowing the world would diverge.  ``truth`` must
    cover every domain in ``crawl_domains``.  ``reanchor_daily`` marks
    scenarios whose operator must re-derive price anchors each crawl day
    (template churn); ``live_only_domains`` lists retailers the burst
    memo is *expected* to keep on the live path -- the harness asserts
    the expectation.
    """

    name: str
    description: str
    mutate: Callable[["World", int], None]
    truth: tuple[DomainTruth, ...]
    crawl_domains: tuple[str, ...]
    reanchor_daily: bool = False
    live_only_domains: frozenset[str] = frozenset()
    crawl_days: int = 2
    crawl_start_day: int = 155
    products_per_retailer: int = 3
    pacing_seconds: float = 2.0
    #: The campaign window is deliberately short and busy (40 checks in
    #: 6 days over a handful of shops): same-day repeat checks of one
    #: product are what give the burst memo hits to prove equivalence on.
    campaign_checks: int = 40
    campaign_population: int = 16
    campaign_end_day: int = 6
    min_extent: float = 0.5
    #: Cleaning drop reasons the scenario is expected to trigger (the
    #: harness asserts each appears at least once -- corrupted pages must
    #: die in cleaning, visibly, not by accident).
    expected_drop_reasons: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name or " " in self.name:
            raise ValueError("scenario names are non-empty and space-free")
        if not self.crawl_domains:
            raise ValueError("a scenario must crawl at least one domain")
        covered = {entry.domain for entry in self.truth}
        missing = set(self.crawl_domains) - covered
        if missing:
            raise ValueError(
                f"scenario {self.name!r} crawls {sorted(missing)} "
                "without ground truth"
            )

    def world_config(self, seed: int = 2013) -> WorldConfig:
        """The config whose :func:`build_world` yields this scenario."""
        return WorldConfig(
            seed=seed,
            catalog_scale=0.15,
            long_tail_domains=0,
            include_long_tail=False,
            include_named_retailers=False,
            scenario=self.name,
        )

    def build_world(self, seed: int = 2013) -> "World":
        """Build (and mutate) this scenario's world."""
        from repro.ecommerce.world import build_world

        return build_world(self.world_config(seed))

    def truth_for(self, domain: str) -> DomainTruth:
        """The ground-truth entry for ``domain`` (KeyError if absent)."""
        for entry in self.truth:
            if entry.domain == domain:
                return entry
        raise KeyError(domain)


#: The scenario registry; populated by :mod:`repro.scenarios.definitions`
#: at import time and extendable by tests/users via
#: :func:`register_scenario`.
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add ``scenario`` to the registry (same-name re-registration wins)."""
    SCENARIOS[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name (helpful KeyError)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; registered: {scenario_names()}"
        ) from None


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(SCENARIOS)


def apply_scenario(name: str, world: "World") -> None:
    """Run the named scenario's mutator against ``world``.

    Called by :func:`~repro.ecommerce.world.build_world` when its config
    carries a scenario name -- the one place mutation happens, so specs
    and live worlds can never disagree.
    """
    scenario = get_scenario(name)
    scenario.mutate(world, world.config.seed)
    missing = [d for d in scenario.crawl_domains if d not in world.retailers]
    if missing:
        raise RuntimeError(
            f"scenario {name!r} promised to crawl {missing} "
            "but its mutator never registered them"
        )


# ----------------------------------------------------------------------
# Mutator helpers
# ----------------------------------------------------------------------
def scenario_catalog(
    domain: str, category: str, size: int, *, seed: int
) -> Catalog:
    """A small product catalog for a scenario retailer."""
    return generate_catalog(domain, category, size, seed=seed)


def scenario_retailer(
    world: "World",
    domain: str,
    policy: PricingPolicy,
    *,
    seed: int,
    category: str = "department",
    catalog_size: int = 6,
    template: Optional[PageTemplate] = None,
    crowd_weight: float = 4.0,
    home_country: str = "US",
    server_factory: Optional[Callable[..., RetailerServer]] = None,
    **server_kwargs,
) -> RetailerServer:
    """Build and register one scenario retailer in ``world``.

    ``server_factory`` selects the server behaviour (defaults to the
    plain :class:`~repro.ecommerce.retailer.RetailerServer`); extra
    keyword arguments go to the factory.  The retailer is also weighted
    into the crowd-campaign domain choice.
    """
    labels = domain.split(".")
    retailer = Retailer(
        domain=domain,
        name=(labels[1] if len(labels) > 1 else labels[0]).title(),
        category=category,
        catalog=scenario_catalog(domain, category, catalog_size, seed=seed),
        policy=policy,
        template=template if template is not None
        else template_for(domain, seed=seed),
        trackers=(),
        home_country=home_country,
    )
    factory = server_factory or RetailerServer
    server = factory(
        retailer, geoip=world.geoip, rates=world.rates, seed=seed,
        **server_kwargs,
    )
    world.register_retailer(retailer, server=server)
    world.extra_crowd_weights[domain] = crowd_weight
    return server
