"""Statistics helpers and cleaning-stage tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

import numpy as np

from repro.analysis.cleaning import clean_reports, dataset_guard, repeatable_products
from repro.analysis.stats import BoxStats, percentile
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.fx.rates import RateService


def obs(vantage: str, usd: float, *, currency: str = "USD",
        country: str = "US", ok: bool = True) -> VantageObservation:
    return VantageObservation(
        vantage=vantage, country_code=country, city="", ok=ok,
        raw_text=f"${usd}", amount=usd, currency=currency,
        usd=usd if ok else None,
    )


def report(prices: dict[str, float], *, day: int = 0, url: str = "http://d/p",
           guard: float = 1.0, currency: str = "USD") -> PriceCheckReport:
    return PriceCheckReport(
        check_id="c", url=url, domain="d", day_index=day, timestamp=0.0,
        observations=[obs(v, p, currency=currency) for v, p in prices.items()],
        guard_threshold=guard,
    )


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 50) == 5.0

    def test_median_even(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_bounds(self):
        values = [3, 1, 4, 1, 5]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 5

    def test_errors(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)

    @given(
        values=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                        max_size=50),
        q=st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_numpy(self, values, q):
        ours = percentile(values, q)
        theirs = float(np.percentile(values, q))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-9)


class TestBoxStats:
    def test_quartiles(self):
        stats = BoxStats.from_values([1, 2, 3, 4, 5, 6, 7, 8, 9])
        assert stats.median == 5
        assert stats.q25 == 3
        assert stats.q75 == 7
        assert stats.n == 9

    def test_whiskers_exclude_outliers(self):
        values = [10, 11, 12, 13, 14, 100]
        stats = BoxStats.from_values(values)
        assert stats.whisker_high < 100
        assert stats.maximum == 100

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values([])

    def test_as_row(self):
        row = BoxStats.from_values([1.0, 2.0]).as_row()
        assert set(row) == {
            "n", "median", "q25", "q75", "whisker_low", "whisker_high",
            "min", "max",
        }

    @given(st.lists(st.floats(min_value=0.1, max_value=1e4), min_size=1, max_size=60))
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, values):
        stats = BoxStats.from_values(values)
        assert stats.minimum <= stats.whisker_low <= stats.q25 <= stats.median
        assert stats.median <= stats.q75 <= stats.whisker_high <= stats.maximum


class TestDatasetGuard:
    def test_usd_only(self):
        reports = [report({"a": 10, "b": 10})]
        assert dataset_guard(RateService(), reports) == 1.0

    def test_foreign_currency_widens(self):
        reports = [report({"a": 10, "b": 10}, currency="EUR")]
        assert dataset_guard(RateService(), reports) > 1.0

    def test_more_days_never_narrower(self):
        service = RateService()
        one_day = [report({"a": 1, "b": 1}, currency="EUR", day=0)]
        week = one_day + [
            report({"a": 1, "b": 1}, currency="EUR", day=d) for d in range(1, 7)
        ]
        assert dataset_guard(service, week) >= dataset_guard(service, one_day)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dataset_guard(RateService(), [])


class TestCleanReports:
    def test_guard_rewritten(self):
        reports = [report({"a": 10, "b": 11}, currency="EUR")]
        result = clean_reports(reports, RateService())
        assert result.n_kept == 1
        assert result.kept[0].guard_threshold == result.guard
        assert result.guard > 1.0

    def test_too_few_observations_dropped(self):
        reports = [report({"a": 10})]
        result = clean_reports(reports, RateService())
        assert result.n_kept == 0
        assert result.dropped["too-few-observations"] == 1

    def test_small_variation_suppressed_by_guard(self):
        # 0.2% gap in EUR data: below even the narrowest intraday spread
        # the rate model can produce, so always inside the guard.
        reports = [report({"a": 100.0, "b": 100.2}, currency="EUR")]
        result = clean_reports(reports, RateService())
        assert result.n_kept == 1
        assert not result.kept[0].has_variation

    def test_large_variation_survives_guard(self):
        reports = [report({"a": 100.0, "b": 125.0}, currency="EUR")]
        result = clean_reports(reports, RateService())
        assert result.kept[0].has_variation

    def test_empty_ok(self):
        result = clean_reports([], RateService())
        assert result.n_kept == 0 and result.n_dropped == 0


class TestRepeatability:
    def _rounds(self, url: str, varied_flags: list[bool]) -> list[PriceCheckReport]:
        out = []
        for day, varied in enumerate(varied_flags):
            prices = {"a": 100.0, "b": 130.0 if varied else 100.0}
            out.append(report(prices, day=day, url=url))
        return out

    def test_consistent_product_is_repeatable(self):
        reports = self._rounds("http://d/p1", [True, True, True])
        assert repeatable_products(reports, guard=1.01) == {"http://d/p1"}

    def test_one_off_fluke_not_repeatable(self):
        reports = self._rounds("http://d/p1", [True, False, False, False])
        assert repeatable_products(reports, guard=1.01) == set()

    def test_single_measurement_passes(self):
        reports = self._rounds("http://d/p1", [True])
        assert repeatable_products(reports, guard=1.01) == {"http://d/p1"}

    def test_clean_with_repeatability_drops_flukes(self):
        fluke = self._rounds("http://d/fluke", [True, False, False, False])
        steady = self._rounds("http://d/steady", [True, True, True, True])
        result = clean_reports(
            fluke + steady, RateService(), require_repeatable=True
        )
        kept_urls = {r.url for r in result.kept if r.has_variation}
        assert kept_urls == {"http://d/steady"}
        assert result.dropped["not-repeatable"] == 1
