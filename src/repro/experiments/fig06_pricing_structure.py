"""Fig. 6: ratio of price difference per product price for two retailers --
multiplicative (digitalrev) vs additive-for-one-location (energie)."""

from __future__ import annotations

import math

from repro.analysis.products import VantageSeries, per_vantage_structure
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

#: The vantage points the paper's legend shows.
LEGEND = ("USA - New York", "UK - London", "Finland - Tampere")
MULTIPLICATIVE_DOMAIN = "www.digitalrev.com"
ADDITIVE_DOMAIN = "www.energie.it"


def _loglinear_slope(series: VantageSeries) -> float:
    """OLS slope of ratio against log10(price) -- 0 for a flat line."""
    points = [(math.log10(p), r) for p, r in series.points if p > 0]
    n = len(points)
    if n < 2:
        return 0.0
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    var_x = sum((x - mean_x) ** 2 for x, _ in points)
    if var_x == 0:
        return 0.0
    cov = sum((x - mean_x) * (y - mean_y) for x, y in points)
    return cov / var_x


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 6's per-vantage line structure."""
    result = FigureResult(
        figure_id="FIG6",
        title="Per-vantage ratio vs product price: multiplicative vs additive",
        paper_claim=(
            "digitalrev: parallel horizontal lines (multiplicative) across "
            "the whole price range; energie: one location additive -- its "
            "ratio decays towards the others as price grows past ~$100"
        ),
        columns=("domain", "vantage", "n", "median_ratio", "slope_vs_logprice"),
    )
    reports = ctx.crawl_clean.kept

    slopes: dict[tuple[str, str], float] = {}
    medians: dict[tuple[str, str], float] = {}
    for domain in (MULTIPLICATIVE_DOMAIN, ADDITIVE_DOMAIN):
        for series in per_vantage_structure(reports, domain, vantages=LEGEND):
            slope = _loglinear_slope(series)
            slopes[(domain, series.vantage)] = slope
            medians[(domain, series.vantage)] = series.median_ratio()
            result.add_row(
                domain, series.vantage, len(series.points),
                series.median_ratio(), slope,
            )

    # digitalrev: flat distinct levels NY < UK < FI.
    dr = MULTIPLICATIVE_DOMAIN
    result.check(
        "digitalrev lines are flat (|slope| < 0.02 per decade)",
        all(abs(slopes.get((dr, v), 1.0)) < 0.02 for v in LEGEND),
    )
    result.check(
        "digitalrev levels ordered NY < UK < Finland",
        medians.get((dr, LEGEND[0]), 9) < medians.get((dr, LEGEND[1]), 0)
        < medians.get((dr, LEGEND[2]), 0),
    )
    # energie: the US line decays with price (additive), UK/FI stay flat.
    en = ADDITIVE_DOMAIN
    result.check(
        "energie US line decays with price (slope < -0.03 per decade)",
        slopes.get((en, "USA - New York"), 0.0) < -0.03,
    )
    result.check(
        "energie UK/Finland lines flat",
        all(abs(slopes.get((en, v), 1.0)) < 0.02
            for v in ("UK - London", "Finland - Tampere")),
    )
    return result
