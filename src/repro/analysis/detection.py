"""Detection quality: the pipeline's verdicts scored against ground truth.

The paper's central claim is that crowd-assisted checks *detect* price
discrimination in the wild -- so detection quality must be measurable,
not asserted.  The scenario layer (:mod:`repro.scenarios`) builds worlds
whose retailers carry machine-readable ground truth (who discriminates,
and by at least how much); this module runs the paper's own analysis
chain -- cleaning with the dataset-wide currency guard and the
repeatability rule, then per-domain variation extent -- and scores the
resulting verdicts as precision/recall against that truth.

The detector is deliberately the *production* pipeline, not a bespoke
classifier: a domain is flagged when, after cleaning, at least
``min_extent`` of its checks show guarded variation.  Whatever fools the
cleaning stage fools the detector -- which is exactly what the scenario
matrix is there to measure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.analysis.cleaning import CleanResult, clean_reports
from repro.analysis.extent import variation_extent
from repro.analysis.ratios import domain_ratio_stats
from repro.core.reports import PriceCheckReport
from repro.fx.rates import RateService

__all__ = [
    "DomainTruth",
    "DetectionScore",
    "detect_discriminators",
    "score_detection",
]


@dataclass(frozen=True)
class DomainTruth:
    """Ground truth about one retailer in a scenario world.

    ``discriminates`` is the label the detector is scored against;
    ``min_ratio`` is a conservative lower bound on the true max/min USD
    ratio a full vantage fan-out can observe on covered products (1.0
    for honest retailers), letting the harness also check the *measured
    magnitude* against truth -- detection that flags the right domain
    with a wildly wrong magnitude still fails.  ``kind`` is a human
    label ("geo", "session", "none", ...).
    """

    domain: str
    discriminates: bool
    min_ratio: float = 1.0
    kind: str = ""

    def __post_init__(self) -> None:
        if self.min_ratio < 1.0:
            raise ValueError("min_ratio is a max/min ratio bound; must be >= 1")
        if not self.discriminates and self.min_ratio > 1.0:
            raise ValueError("an honest retailer cannot promise a ratio > 1")


def detect_discriminators(
    reports: Sequence[PriceCheckReport],
    rates: RateService,
    *,
    min_extent: float = 0.5,
    min_reports: int = 2,
    require_repeatable: bool = True,
    clean: Optional[CleanResult] = None,
) -> dict[str, float]:
    """domain -> variation extent, for domains the pipeline flags.

    Runs the production chain: :func:`~repro.analysis.cleaning.
    clean_reports` (dataset-wide currency guard; repeatability by
    default, suppressing single-round flukes) then
    :func:`~repro.analysis.extent.variation_extent`, keeping domains
    whose extent reaches ``min_extent``.  Pass ``clean`` to reuse an
    already-cleaned result.
    """
    if not 0.0 < min_extent <= 1.0:
        raise ValueError("min_extent must be in (0, 1]")
    if clean is None:
        clean = clean_reports(
            reports, rates, require_repeatable=require_repeatable
        )
    extent = variation_extent(clean.kept, min_reports=min_reports)
    return {
        domain: fraction
        for domain, fraction in extent.items()
        if fraction >= min_extent
    }


@dataclass
class DetectionScore:
    """Precision/recall of flagged domains against scenario ground truth.

    ``detected`` maps every flagged domain to its variation extent;
    ``magnitude`` maps flagged domains to the median max/min ratio of
    their flagged checks.  Domains flagged without *any* truth entry
    count as false positives -- a scenario's truth table must cover
    everything it crawls.
    """

    detected: dict[str, float]
    magnitude: dict[str, float]
    truth: tuple[DomainTruth, ...]
    guard: float

    @property
    def truth_by_domain(self) -> dict[str, DomainTruth]:
        return {entry.domain: entry for entry in self.truth}

    @property
    def true_positives(self) -> list[str]:
        truth = self.truth_by_domain
        return sorted(
            domain for domain in self.detected
            if domain in truth and truth[domain].discriminates
        )

    @property
    def false_positives(self) -> list[str]:
        truth = self.truth_by_domain
        return sorted(
            domain for domain in self.detected
            if domain not in truth or not truth[domain].discriminates
        )

    @property
    def false_negatives(self) -> list[str]:
        return sorted(
            entry.domain for entry in self.truth
            if entry.discriminates and entry.domain not in self.detected
        )

    @property
    def precision(self) -> float:
        """Flagged domains that truly discriminate (1.0 when none flagged)."""
        if not self.detected:
            return 1.0
        return len(self.true_positives) / len(self.detected)

    @property
    def recall(self) -> float:
        """True discriminators flagged (1.0 when the truth has none)."""
        positives = sum(1 for entry in self.truth if entry.discriminates)
        if not positives:
            return 1.0
        return len(self.true_positives) / positives

    def magnitude_violations(self) -> dict[str, tuple[float, float]]:
        """domain -> (measured median ratio, promised bound) shortfalls.

        A true positive whose measured magnitude falls below the truth's
        ``min_ratio`` bound means the pipeline found the right retailer
        for the wrong reason (noise above the guard rather than the
        planted discrimination).
        """
        truth = self.truth_by_domain
        out: dict[str, tuple[float, float]] = {}
        for domain in self.true_positives:
            bound = truth[domain].min_ratio
            measured = self.magnitude.get(domain, 1.0)
            if measured < bound:
                out[domain] = (measured, bound)
        return out

    def summary_lines(self) -> list[str]:
        """Human-readable verdict table (CLI / harness output)."""
        truth = self.truth_by_domain
        lines = []
        for entry in sorted(self.truth, key=lambda t: t.domain):
            flagged = entry.domain in self.detected
            verdict = (
                "true positive" if flagged and entry.discriminates else
                "FALSE POSITIVE" if flagged else
                "MISSED" if entry.discriminates else
                "true negative"
            )
            measured = self.magnitude.get(entry.domain)
            ratio = f" x{measured:.3f}" if measured is not None else ""
            lines.append(
                f"{entry.domain:34s} {entry.kind or '-':10s} {verdict}{ratio}"
            )
        for domain in self.false_positives:
            if domain not in truth:
                lines.append(f"{domain:34s} {'?':10s} FALSE POSITIVE (untracked)")
        lines.append(
            f"precision {self.precision:.2f}  recall {self.recall:.2f}  "
            f"guard x{self.guard:.4f}"
        )
        return lines


def score_detection(
    reports: Sequence[PriceCheckReport],
    rates: RateService,
    truth: Sequence[DomainTruth] | Mapping[str, bool],
    *,
    min_extent: float = 0.5,
    min_reports: int = 2,
    require_repeatable: bool = True,
    clean: Optional[CleanResult] = None,
) -> DetectionScore:
    """Run the detector over ``reports`` and score it against ``truth``.

    ``truth`` is a sequence of :class:`DomainTruth` entries (or a plain
    ``domain -> discriminates`` mapping, promoted with default bounds).
    Pass ``clean`` to reuse an already-cleaned result instead of
    cleaning ``reports`` again.
    """
    if isinstance(truth, Mapping):
        truth = tuple(
            DomainTruth(domain=domain, discriminates=flag)
            for domain, flag in sorted(truth.items())
        )
    else:
        truth = tuple(truth)
    if clean is None:
        clean = clean_reports(
            reports, rates, require_repeatable=require_repeatable
        )
    detected = detect_discriminators(
        reports, rates,
        min_extent=min_extent, min_reports=min_reports, clean=clean,
    )
    stats = domain_ratio_stats(clean.kept, only_variation=True)
    magnitude = {
        domain: stats[domain].median for domain in detected if domain in stats
    }
    return DetectionScore(
        detected=detected, magnitude=magnitude, truth=truth, guard=clean.guard
    )
