"""Currency registry and country→currency mapping."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Currency", "CURRENCIES", "currency_for_country", "COUNTRY_CURRENCY"]


@dataclass(frozen=True)
class Currency:
    """An ISO-4217-style currency with display metadata.

    ``usd_mid_2013`` is the approximate USD value of one unit at the start
    of 2013; the rate series random-walks around it.
    """

    code: str
    symbol: str
    name: str
    usd_mid_2013: float
    symbol_before: bool = True  # "$12.34" vs "12,34 €"

    def __str__(self) -> str:
        return self.code


CURRENCIES: dict[str, Currency] = {
    c.code: c
    for c in (
        Currency("USD", "$", "US dollar", 1.0),
        Currency("EUR", "€", "euro", 1.32, symbol_before=False),
        Currency("GBP", "£", "pound sterling", 1.58),
        Currency("BRL", "R$", "Brazilian real", 0.49),
        Currency("CAD", "C$", "Canadian dollar", 0.99),
        Currency("AUD", "A$", "Australian dollar", 1.04),
        Currency("JPY", "¥", "Japanese yen", 0.0115),
        Currency("INR", "₹", "Indian rupee", 0.0184),
        Currency("CHF", "Fr.", "Swiss franc", 1.07, symbol_before=False),
        Currency("SEK", "kr", "Swedish krona", 0.154, symbol_before=False),
        Currency("PLN", "zł", "Polish złoty", 0.32, symbol_before=False),
    )
}

#: ISO country code -> currency code, for every country in the geo seed.
COUNTRY_CURRENCY: dict[str, str] = {
    "US": "USD",
    "GB": "GBP",
    "ES": "EUR",
    "FI": "EUR",
    "DE": "EUR",
    "BE": "EUR",
    "IT": "EUR",
    "FR": "EUR",
    "NL": "EUR",
    "PT": "EUR",
    "GR": "EUR",
    "IE": "EUR",
    "BR": "BRL",
    "PL": "PLN",
    "SE": "SEK",
    "CH": "CHF",
    "CA": "CAD",
    "AU": "AUD",
    "JP": "JPY",
    "IN": "INR",
}


def currency_for_country(country_code: str) -> Currency:
    """The local currency of ``country_code`` (defaults to USD)."""
    code = COUNTRY_CURRENCY.get(country_code.upper(), "USD")
    return CURRENCIES[code]
