"""Parse-once fan-out: caches, batching, and dedupe behave transparently.

The perf layer must be invisible to results: cached parses yield the same
trees, the structured fast path extracts exactly what a string re-parse
would, batched checks report byte-identically to sequential ones, and the
deduped archive still returns every page's full HTML.
"""

from __future__ import annotations

import pytest

from repro.core.backend import CheckRequest, SheriffBackend
from repro.core.extraction import extract_price, extract_price_from_document
from repro.core.store import PageStore
from repro.ecommerce.localization import locale_for_country
from repro.ecommerce.templates import TEMPLATE_FAMILIES, ProductView
from repro.ecommerce.world import WorldConfig, build_world
from repro.htmlmodel.dom import Document, Element, Text
from repro.htmlmodel.parser import (
    parse_cache_stats,
    parse_html,
    parse_html_cached,
    reset_parse_cache,
)
from repro.htmlmodel.serialize import to_html
from repro.net.geoip import GeoLocation
from repro.net.transport import Network
from repro.net.useragent import profile_for
from repro.net.vantage import VantagePoint


def anchor_for(world, domain: str):
    from repro.analysis.personal import derive_anchor_for_domain

    return derive_anchor_for_domain(world, domain)


def product_url(world, domain: str, index: int = 0) -> str:
    product = world.retailer(domain).catalog.products[index]
    return f"http://{domain}{product.path}"


def trees_equal(a, b) -> bool:
    """Structural equality: tags, attrs, and text runs, in order."""
    if type(a) is not type(b):
        return False
    if isinstance(a, Text):
        return a.data == b.data
    if isinstance(a, Element) and (a.tag != b.tag or a.attrs != b.attrs):
        return False
    if len(a.children) != len(b.children):
        return False
    return all(trees_equal(x, y) for x, y in zip(a.children, b.children))


# ----------------------------------------------------------------------
# parse_html_cached
# ----------------------------------------------------------------------
class TestParseCache:
    def _family_pages(self, tiny_world) -> list[str]:
        """One serialized product page per template family."""
        product = tiny_world.retailer("www.digitalrev.com").catalog.products[0]
        locale = locale_for_country("US")
        pages = []
        for template in TEMPLATE_FAMILIES:
            view = ProductView(
                retailer_name="Shop",
                domain="shop.example",
                product=product,
                price_text=locale.format_price(129.99),
                locale=locale,
                structural_seed=7,
            )
            pages.append(to_html(template.render(view)))
        return pages

    def test_cached_and_uncached_trees_identical_per_family(self, tiny_world):
        reset_parse_cache()
        pages = self._family_pages(tiny_world)
        assert len(pages) == 4  # the paper-world's four template families
        for html in pages:
            fresh = parse_html(html)
            cached = parse_html_cached(html)
            assert trees_equal(fresh, cached)
            assert to_html(fresh) == to_html(cached)

    def test_hit_returns_shared_document_and_counts(self):
        reset_parse_cache()
        html = "<html><body><p id='x'>hello</p></body></html>"
        first = parse_html_cached(html)
        second = parse_html_cached(html)
        assert first is second  # shared, read-only tree
        # A distinct-but-equal string object also hits (content-keyed).
        third = parse_html_cached(html[:10] + html[10:])
        assert third is first
        stats = parse_cache_stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 1
        assert stats["entries"] == 1

    def test_reset_clears_entries_and_counters(self):
        parse_html_cached("<p>x</p>")
        reset_parse_cache()
        stats = parse_cache_stats()
        assert stats == {"hits": 0, "misses": 0, "hit_rate": 0.0, "entries": 0}


# ----------------------------------------------------------------------
# Structured fast path vs. string re-parse
# ----------------------------------------------------------------------
class TestStructuredFastPath:
    def test_responses_carry_documents(self, tiny_world):
        domain = "www.digitalrev.com"
        vantage = tiny_world.vantage_points[0]
        response = vantage.fetch(tiny_world.network, product_url(tiny_world, domain))
        assert isinstance(response.document, Document)
        # The attached tree serializes to exactly the wire body.
        assert to_html(response.document) == response.body

    def test_extraction_identical_to_string_reparse(self, tiny_world):
        """Acceptance: amounts, currencies, and methods are bit-identical
        between the structured fast path and the string re-parse path."""
        domains = tiny_world.crawled_domains[:6]
        for domain in domains:
            anchor = anchor_for(tiny_world, domain)
            for vantage in tiny_world.vantage_points[:4]:
                response = vantage.fetch(
                    tiny_world.network, product_url(tiny_world, domain)
                )
                locale = locale_for_country(vantage.location.country_code)
                fast = extract_price_from_document(
                    response.document, anchor, locale_hint=locale
                )
                slow = extract_price(
                    response.body, anchor, locale_hint=locale, cache=False
                )
                assert fast == slow


# ----------------------------------------------------------------------
# check_batch
# ----------------------------------------------------------------------
def _fresh_setup():
    world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    domain = "www.digitalrev.com"
    anchor = anchor_for(world, domain)
    requests = [
        CheckRequest(url=product_url(world, domain, i), anchor=anchor)
        for i in range(3)
    ]
    return world, backend, requests


class TestCheckBatch:
    def test_batch_reports_identical_to_sequential(self):
        """The batch path amortizes work without changing a single byte of
        the reports: two identical worlds, one checked sequentially, one
        batched, must agree on every field of every observation."""
        _, backend_a, requests_a = _fresh_setup()
        _, backend_b, requests_b = _fresh_setup()

        sequential = [backend_a.check(request) for request in requests_a]
        batched = backend_b.check_batch(requests_b)
        assert sequential == batched

    def test_batch_pacing_matches_manual_advance(self):
        world_a, backend_a, requests_a = _fresh_setup()
        world_b, backend_b, requests_b = _fresh_setup()

        sequential = []
        for request in requests_a:
            sequential.append(backend_a.check(request))
            world_a.clock.advance(2.0)
        batched = backend_b.check_batch(requests_b, pacing_seconds=2.0)
        assert sequential == batched
        assert world_a.clock.now == world_b.clock.now

    def test_batch_rejects_negative_pacing(self):
        _, backend, requests = _fresh_setup()
        with pytest.raises(ValueError):
            backend.check_batch(requests, pacing_seconds=-1.0)

    def test_empty_batch(self):
        _, backend, _ = _fresh_setup()
        assert backend.check_batch([]) == []


# ----------------------------------------------------------------------
# PageStore dedupe
# ----------------------------------------------------------------------
class TestStoreDedup:
    def _archive(self, store: PageStore, html: str, n: int, domain="shop.x"):
        for i in range(n):
            store.archive(
                check_id=f"c{i}", url="http://shop.x/p", domain=domain,
                vantage=f"v{i}", timestamp=float(i), html=html,
            )

    def test_duplicate_bodies_stored_once(self):
        store = PageStore(html_per_domain=100)
        self._archive(store, "<html>same</html>", 10)
        self._archive(store, "<html>other</html>", 5)
        assert store.retained_html_count() == 15
        assert store.unique_html_count() == 2
        stats = store.dedup_stats()
        assert stats["store_unique_bodies"] == 2
        assert stats["store_dedup_hits"] == 13

    def test_every_page_remains_retrievable(self):
        store = PageStore(html_per_domain=100)
        bodies = [f"<html><body>page {i % 3}</body></html>" for i in range(12)]
        for i, html in enumerate(bodies):
            store.archive(
                check_id=f"c{i}", url=f"http://shop.x/{i}", domain="shop.x",
                vantage="v", timestamp=float(i), html=html,
            )
        for page, html in zip(store, bodies):
            assert page.html == html  # full text, byte for byte
        # All equal bodies share one interned object.
        retained = [page.html for page in store]
        assert len({id(h) for h in retained}) == 3

    def test_cap_still_applies_and_clear_resets(self):
        store = PageStore(html_per_domain=2)
        self._archive(store, "<p>a</p>", 4)
        assert store.retained_html_count() == 2
        store.clear()
        assert len(store) == 0
        assert store.unique_html_count() == 0
        assert store.dedup_stats()["store_dedup_hits"] == 0


# ----------------------------------------------------------------------
# Retry reporting
# ----------------------------------------------------------------------
class TestRetryReporting:
    def test_failure_error_includes_attempts_and_first_cause(self, tiny_world):
        network = Network()  # no servers registered: every fetch NXDOMAINs
        vantage = VantagePoint(
            name="Test - Nowhere",
            location=GeoLocation("US", "United States", "Nowhere"),
            ip="198.51.100.1",
            profile=profile_for("firefox", "linux"),
        )
        backend = SheriffBackend(network, [vantage], tiny_world.rates)
        report = backend.check(
            CheckRequest(
                url="http://unregistered.example/p",
                anchor=anchor_for(tiny_world, "www.digitalrev.com"),
            )
        )
        (observation,) = report.observations
        assert not observation.ok
        assert "NXDOMAIN" in observation.error
        assert "(after 3 attempts)" in observation.error  # MAX_RETRIES + 1


# ----------------------------------------------------------------------
# Backend cache stats surface
# ----------------------------------------------------------------------
class TestCacheStats:
    def test_stats_exposed_for_reports(self):
        world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0))
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        domain = "www.digitalrev.com"
        backend.check(
            CheckRequest(
                url=product_url(world, domain), anchor=anchor_for(world, domain)
            )
        )
        stats = backend.cache_stats()
        for key in (
            "parse_cache_hits",
            "parse_cache_misses",
            "guard_cache_entries",
            "store_unique_bodies",
            "store_dedup_hits",
        ):
            assert key in stats
        assert stats["guard_cache_entries"] >= 1
