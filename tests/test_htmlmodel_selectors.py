"""Unit tests for the CSS-subset selector engine."""

from __future__ import annotations

import pytest

from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import Selector, SelectorError, matches, select, select_one

PAGE = """
<html><body>
  <div id="main" class="wrap">
    <p class="intro big">first</p>
    <p class="intro">second</p>
    <div class="box">
      <span class="price" data-cur="USD">$10</span>
      <span class="price sale">$8</span>
    </div>
    <ul>
      <li>a</li><li class="hot">b</li><li>c</li>
    </ul>
  </div>
  <div class="box outer"><span class="price">$99</span></div>
</body></html>
"""


@pytest.fixture(scope="module")
def doc():
    return parse_html(PAGE)


class TestSimpleSelectors:
    def test_by_tag(self, doc):
        assert len(select(doc, "p")) == 2

    def test_universal(self, doc):
        assert len(select(doc, "*")) == len(list(doc.iter_elements()))

    def test_by_id(self, doc):
        el = select_one(doc, "#main")
        assert el is not None and el.tag == "div"

    def test_by_class(self, doc):
        assert len(select(doc, ".price")) == 3

    def test_stacked_classes(self, doc):
        els = select(doc, "span.price.sale")
        assert len(els) == 1
        assert els[0].text() == "$8"

    def test_tag_and_id(self, doc):
        assert select_one(doc, "div#main") is select_one(doc, "#main")

    def test_no_match_returns_empty(self, doc):
        assert select(doc, "#nonexistent") == []
        assert select_one(doc, "#nonexistent") is None


class TestAttributeSelectors:
    def test_presence(self, doc):
        assert len(select(doc, "[data-cur]")) == 1

    def test_exact(self, doc):
        assert select_one(doc, '[data-cur="USD"]').text() == "$10"

    def test_exact_unquoted(self, doc):
        assert select_one(doc, "[data-cur=USD]") is not None

    def test_prefix_suffix_substring(self, doc):
        assert select_one(doc, "[data-cur^=US]") is not None
        assert select_one(doc, "[data-cur$=SD]") is not None
        assert select_one(doc, "[data-cur*=S]") is not None
        assert select_one(doc, "[data-cur^=XX]") is None

    def test_word_match(self, doc):
        assert len(select(doc, "[class~=intro]")) == 2


class TestCombinators:
    def test_descendant(self, doc):
        assert len(select(doc, "#main .price")) == 2

    def test_child(self, doc):
        assert len(select(doc, "div.box > span.price")) == 3
        assert len(select(doc, "#main > .price")) == 0

    def test_adjacent_sibling(self, doc):
        el = select_one(doc, "p.big + p")
        assert el.text() == "second"

    def test_adjacent_no_match(self, doc):
        assert select_one(doc, "ul + p") is None

    def test_chain(self, doc):
        els = select(doc, "#main div.box > span[data-cur=USD]")
        assert len(els) == 1


class TestPseudo:
    def test_first_of_type(self, doc):
        assert select_one(doc, "li:first-of-type").text() == "a"

    def test_nth_of_type(self, doc):
        assert select_one(doc, "li:nth-of-type(2)").text() == "b"
        assert select_one(doc, "li:nth-of-type(3)").text() == "c"

    def test_nth_out_of_range(self, doc):
        assert select_one(doc, "li:nth-of-type(9)") is None


class TestExtendedPseudo:
    SIBLINGS = "<div><p>a</p><span>s1</span><em>e</em><span>s2</span><span>s3</span></div>"

    @pytest.fixture()
    def sibdoc(self):
        return parse_html(self.SIBLINGS)

    def test_general_sibling(self, sibdoc):
        assert [e.text() for e in select(sibdoc, "p ~ span")] == ["s1", "s2", "s3"]
        assert [e.text() for e in select(sibdoc, "em ~ span")] == ["s2", "s3"]

    def test_general_sibling_no_match(self, sibdoc):
        assert select(sibdoc, "span ~ p") == []

    def test_last_of_type(self, sibdoc):
        assert select_one(sibdoc, "span:last-of-type").text() == "s3"
        assert select_one(sibdoc, "em:last-of-type").text() == "e"

    def test_nth_child(self, sibdoc):
        assert select_one(sibdoc, "div :nth-child(1)").text() == "a"
        assert select_one(sibdoc, "div :nth-child(3)").text() == "e"
        assert select_one(sibdoc, "div :nth-child(9)") is None

    def test_first_child(self, sibdoc):
        assert select_one(sibdoc, "div :first-child").text() == "a"

    def test_nth_child_validation(self):
        with pytest.raises(SelectorError):
            Selector.parse(":nth-child(0)")
        with pytest.raises(SelectorError):
            Selector.parse(":nth-child")


class TestGroups:
    def test_comma_groups(self, doc):
        els = select(doc, "p.big, li.hot")
        texts = sorted(e.text() for e in els)
        assert texts == ["b", "first"]


class TestMatchesApi:
    def test_matches(self, doc):
        el = select_one(doc, "#main")
        assert matches(el, "div.wrap")
        assert not matches(el, "span")

    def test_parsed_selector_reuse(self, doc):
        sel = Selector.parse(".price")
        assert len(sel.select(doc)) == 3
        assert str(sel) == ".price"


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        ["", "  ", ">", "div >", "> div", "div >> p", "[", "[]", "[=x]",
         ":nth-of-type", "li:nth-of-type(0)", "li:nth-of-type(x)",
         ":hover", "div p q r["],
    )
    def test_rejected(self, bad):
        with pytest.raises(SelectorError):
            Selector.parse(bad)

    def test_double_dot_rejected(self):
        with pytest.raises(SelectorError):
            Selector.parse("div#a p..x")

    def test_long_chain_is_valid(self):
        Selector.parse("div p#x span b#y i")  # must not raise

    def test_trailing_comma_tolerated(self):
        # Lenient like the rest of the grammar: empty groups are skipped.
        assert Selector.parse("p,,").select_one(parse_html("<p>x</p>")) is not None


class TestDocumentOrder:
    def test_select_returns_document_order(self, doc):
        prices = select(doc, ".price")
        assert [p.text() for p in prices] == ["$10", "$8", "$99"]

    def test_select_one_is_first(self, doc):
        assert select_one(doc, ".price").text() == "$10"
