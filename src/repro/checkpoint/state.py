"""Run-state capture: everything a resumed run must restore.

The determinism contract (``docs/ARCHITECTURE.md``) makes a check's bytes
a function of its schedule entry plus a small set of mutable cursors.
:func:`capture_run_state` snapshots exactly those cursors after each
committed day-segment:

* the world clock and the backend's check-id counter,
* the page store's archive hash chain (stream identity, not the window),
* every vantage point's cookie jar and -- for campaigns -- every crowd
  user's jar,
* every retailer server's ``session_state()`` (request counters, plus
  whatever stateful scenario servers add),
* the burst memo's live-only demotions (evidence, not cache entries),
* the campaign RNG's ``getstate()``.

State is serialized as *tagged JSON*: plain JSON cannot round-trip the
tuples inside ``random.Random.getstate()`` or the ``(ip, day)``-keyed
dicts the cloaking server tracks, so :func:`encode_state` wraps tuples as
``{"__t__": [...]}`` and non-string-keyed dicts as ``{"__m__": [[k, v],
...]}``.  :func:`decode_state` inverts exactly, so
``decode(json(encode(x))) == x`` for every value the session-state SPI
produces (test-asserted, including fuzzed nests).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Optional

from repro.checkpoint.manifest import CheckpointMismatchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import random

    from repro.core.backend import SheriffBackend
    from repro.core.extension import UserClient
    from repro.ecommerce.world import World

__all__ = [
    "capture_run_state",
    "decode_state",
    "encode_state",
    "restore_run_state",
]

_TUPLE_TAG = "__t__"
_MAP_TAG = "__m__"
_TAGS = (_TUPLE_TAG, _MAP_TAG)


# ----------------------------------------------------------------------
# Tagged JSON encoding
# ----------------------------------------------------------------------
def encode_state(obj):
    """Encode ``obj`` into JSON-representable data, losslessly.

    Tuples and dicts with non-string (or tag-colliding) keys get tagged
    wrappers; lists, string-keyed dicts, and scalars pass through.
    Anything else is a hard error -- state that cannot round-trip must
    never be silently approximated.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, tuple):
        return {_TUPLE_TAG: [encode_state(v) for v in obj]}
    if isinstance(obj, list):
        return [encode_state(v) for v in obj]
    if isinstance(obj, dict):
        plain = all(
            isinstance(k, str) and k not in _TAGS for k in obj
        )
        if plain:
            return {k: encode_state(v) for k, v in obj.items()}
        return {
            _MAP_TAG: [
                [encode_state(k), encode_state(v)] for k, v in obj.items()
            ]
        }
    raise TypeError(
        f"cannot checkpoint a {type(obj).__name__} value: {obj!r}"
    )


def decode_state(obj):
    """Invert :func:`encode_state`."""
    if isinstance(obj, list):
        return [decode_state(v) for v in obj]
    if isinstance(obj, dict):
        if set(obj) == {_TUPLE_TAG}:
            return tuple(decode_state(v) for v in obj[_TUPLE_TAG])
        if set(obj) == {_MAP_TAG}:
            return {
                decode_state(k): decode_state(v) for k, v in obj[_MAP_TAG]
            }
        return {k: decode_state(v) for k, v in obj.items()}
    return obj


# ----------------------------------------------------------------------
# Run-state capture / restore
# ----------------------------------------------------------------------
def capture_run_state(
    world: "World",
    backend: "SheriffBackend",
    *,
    rng: Optional["random.Random"] = None,
    user_clients: Optional[Mapping[str, "UserClient"]] = None,
) -> dict:
    """Snapshot every mutable cursor a resumed run must restore."""
    state = {
        "clock": world.clock.now,
        "next_check_number": backend.next_check_number,
        "archive_chain": backend.store.archive_chain,
        "vantage_jars": {
            vp.name: vp.jar.snapshot() for vp in world.vantage_points
        },
        "servers": {
            domain: server.session_state()
            for domain, server in sorted(world.servers.items())
        },
        "burst_live_only": backend.burst_cache.live_only_domains(),
    }
    if rng is not None:
        state["rng"] = rng.getstate()
    if user_clients is not None:
        state["user_jars"] = {
            user_id: client.jar.snapshot()
            for user_id, client in sorted(user_clients.items())
        }
    return state


def restore_run_state(
    state: dict,
    world: "World",
    backend: "SheriffBackend",
    *,
    rng: Optional["random.Random"] = None,
    user_clients: Optional[Mapping[str, "UserClient"]] = None,
) -> None:
    """Install a :func:`capture_run_state` snapshot into a *fresh* world.

    The world must be newly regrown from its :class:`WorldSpec` (clock at
    the epoch, jars empty, counters zeroed) -- restore advances cursors
    forward, it cannot rewind a world that already ran.  A snapshot
    naming a vantage point, server, or user the world does not have
    raises :class:`CheckpointMismatchError`.
    """
    vantages = {vp.name: vp for vp in world.vantage_points}
    for name, snapshot in state["vantage_jars"].items():
        point = vantages.get(name)
        if point is None:
            raise CheckpointMismatchError(
                f"checkpoint names unknown vantage point {name!r}"
            )
        point.jar.restore(snapshot)
    for domain, server_state in state["servers"].items():
        server = world.servers.get(domain)
        if server is None:
            raise CheckpointMismatchError(
                f"checkpoint names unknown retailer server {domain!r}"
            )
        server.restore_session_state(server_state)
    if user_clients is not None:
        for user_id, snapshot in state.get("user_jars", {}).items():
            client = user_clients.get(user_id)
            if client is None:
                raise CheckpointMismatchError(
                    f"checkpoint names unknown crowd user {user_id!r}"
                )
            client.jar.restore(snapshot)
    if rng is not None and "rng" in state:
        rng.setstate(state["rng"])
    backend.burst_cache.restore_live_only(state["burst_live_only"])
    backend.store.restore_archive_chain(state["archive_chain"])
    backend.next_check_number = state["next_check_number"]
    world.clock.advance_to(state["clock"])
