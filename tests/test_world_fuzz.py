"""Seeded property-style fuzzing of world construction and the crowd.

Plain stdlib ``random`` with fixed seeds -- no new dependencies, fully
reproducible.  The properties:

* any in-range :class:`WorldConfig` builds a working world,
* every built world's :class:`WorldSpec` survives the pickle round-trip
  :class:`~repro.exec.ProcessExecutor` workers depend on, and the
  regrown world serves byte-identical pages,
* out-of-range configs fail loudly at construction, never at build,
* :func:`build_population` is deterministic, well-formed, and in-plan
  at any size.
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro.crowd.population import COUNTRY_SHARES, build_population
from repro.ecommerce.world import WorldConfig, WorldSpec, build_world
from repro.net.geoip import IPAddressPlan
from repro.scenarios import DEFAULT_SCENARIOS

N_WORLDS = 8


def _random_config(rng: random.Random) -> WorldConfig:
    """One in-range config; occasionally a scenario world."""
    scenario = None
    include_named = True
    if rng.random() < 0.4:
        scenario = rng.choice(DEFAULT_SCENARIOS)
        include_named = rng.random() < 0.3
    return WorldConfig(
        seed=rng.randrange(1, 10_000),
        catalog_scale=round(rng.uniform(0.05, 0.5), 3),
        long_tail_domains=rng.randrange(0, 12),
        loss_rate=round(rng.uniform(0.0, 0.15), 3),
        include_long_tail=rng.random() < 0.7,
        include_named_retailers=include_named,
        scenario=scenario,
    )


def _sample_page(world) -> tuple[str, str]:
    """(url, body) of a deterministic first page fetch in ``world``."""
    domain = sorted(world.retailers)[0]
    product = world.retailer(domain).catalog.products[0]
    url = f"http://{domain}{product.path}"
    vantage = world.vantage_points[0]
    body = vantage.fetch_with_retries(world.network, url).body
    return url, body


class TestWorldConfigFuzz:
    def test_random_worlds_build_and_serve(self):
        rng = random.Random(0xC0FFEE)
        for _ in range(N_WORLDS):
            config = _random_config(rng)
            world = build_world(config)
            assert world.retailers, config
            assert len(world.vantage_points) == 14
            for domain, retailer in world.retailers.items():
                assert domain in world.servers
                assert len(retailer.catalog) > 0
            if config.scenario is None and config.include_named_retailers:
                assert len(world.crawled_domains) == 21
            _, body = _sample_page(world)
            assert "<html" in body

    def test_spec_pickle_round_trip_regrows_identical_worlds(self):
        """The ProcessExecutor contract: a worker unpickling the spec
        must regrow a world serving byte-identical responses."""
        rng = random.Random(0xBEEF)
        for _ in range(N_WORLDS):
            config = _random_config(rng)
            world = build_world(config)
            spec = world.spec()
            assert spec == WorldSpec(config=config)
            shipped = pickle.loads(pickle.dumps(spec))
            assert shipped == spec
            regrown = shipped.build()
            assert sorted(regrown.retailers) == sorted(world.retailers)
            assert regrown.extra_crowd_weights == world.extra_crowd_weights
            assert [vp.ip for vp in regrown.vantage_points] == [
                vp.ip for vp in world.vantage_points
            ]
            url, body = _sample_page(world)
            regrown_url, regrown_body = _sample_page(regrown)
            assert (url, body) == (regrown_url, regrown_body)

    def test_out_of_range_configs_fail_at_construction(self):
        rng = random.Random(0xDEAD)
        for _ in range(20):
            field = rng.choice(("catalog_scale", "long_tail_domains", "loss_rate"))
            bad = {
                "catalog_scale": rng.choice([0.0, -0.5, 1.0001, 7.0]),
                "long_tail_domains": -rng.randrange(1, 100),
                "loss_rate": rng.choice([-0.1, 1.0, 1.5]),
            }[field]
            with pytest.raises(ValueError):
                WorldConfig(**{field: bad})


class TestPopulationFuzz:
    def test_random_populations_are_well_formed(self):
        plan_countries = {code for code, _ in COUNTRY_SHARES}
        rng = random.Random(0xFACADE)
        for _ in range(10):
            size = rng.randrange(1, 60)
            seed = rng.randrange(1, 10_000)
            users = build_population(IPAddressPlan(), size=size, seed=seed)
            assert len(users) == size
            assert len({user.user_id for user in users}) == size
            for user in users:
                assert user.country_code in plan_countries
                assert 2 <= len(user.interests) <= 3
                assert user.activity > 0
                assert user.client.ip.count(".") == 3

    def test_population_is_deterministic_in_the_seed(self):
        for seed in (1, 77, 2013):
            first = build_population(IPAddressPlan(), size=25, seed=seed)
            second = build_population(IPAddressPlan(), size=25, seed=seed)
            assert [
                (u.user_id, u.client.ip, u.interests, u.activity)
                for u in first
            ] == [
                (u.user_id, u.client.ip, u.interests, u.activity)
                for u in second
            ]

    def test_population_rejects_empty(self):
        with pytest.raises(ValueError):
            build_population(IPAddressPlan(), size=0)
