"""Stable-hash utility tests."""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

import repro
from repro.util import stable_choice, stable_hash, stable_rng, stable_uniform


class TestStableHash:
    def test_deterministic_in_process(self):
        assert stable_hash("a", 1, 2.5) == stable_hash("a", 1, 2.5)

    def test_differs_by_part(self):
        assert stable_hash("a") != stable_hash("b")
        assert stable_hash("a", "b") != stable_hash("ab")

    def test_stable_across_processes(self):
        """The whole point: no PYTHONHASHSEED dependence."""
        code = "from repro.util import stable_hash; print(stable_hash('seed', 42))"
        # The spawned interpreter inherits nothing: give it an explicit
        # import path to the package under test or the run exits 1 and the
        # round-trip check never exercises hash stability.
        package_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        outputs = {
            subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True, text=True, check=True,
                env={
                    "PYTHONHASHSEED": str(i),
                    "PATH": "/usr/bin:/bin",
                    "PYTHONPATH": os.pathsep.join([package_root] + sys.path),
                },
            ).stdout.strip()
            for i in (0, 1)
        }
        assert len(outputs) == 1
        assert outputs == {str(stable_hash("seed", 42))}

    def test_range(self):
        for parts in (("x",), (1, 2, 3), ("a", 0.5)):
            value = stable_hash(*parts)
            assert 0 <= value < 2**64


class TestDerived:
    def test_rng_reproducible(self):
        assert stable_rng("k").random() == stable_rng("k").random()

    @given(st.floats(min_value=-10, max_value=10), st.floats(min_value=0, max_value=5))
    @settings(max_examples=50, deadline=None)
    def test_uniform_in_range(self, low, width):
        value = stable_uniform(low, low + width, "key")
        assert low <= value <= low + width

    def test_uniform_rejects_inverted(self):
        with pytest.raises(ValueError):
            stable_uniform(1.0, 0.0, "k")

    def test_choice(self):
        options = ["a", "b", "c"]
        assert stable_choice(options, "k") in options
        assert stable_choice(options, "k") == stable_choice(options, "k")
        with pytest.raises(ValueError):
            stable_choice([], "k")
