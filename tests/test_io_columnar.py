"""Columnar dataset files: round-trip equality with the row layout, and
the CLI's kind auto-detection."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import cli
from repro import io as dataset_io
from repro.io import report_to_dict


def crawl_record_dicts(dataset):
    return [report_to_dict(r) for r in dataset.reports]


def crowd_record_dicts(dataset):
    return [
        {
            "user": rec.user_id, "country": rec.user_country,
            "day": rec.day_index, "domain": rec.domain, "url": rec.url,
            "outcome_url": rec.outcome.url, "outcome_user": rec.outcome.user,
            "amount": rec.outcome.user_amount,
            "currency": rec.outcome.user_currency,
            "failure": rec.outcome.failure,
            "report": report_to_dict(rec.report) if rec.report else None,
        }
        for rec in dataset.records
    ]


class TestCrawlColumnar:
    def test_roundtrip_equals_row_layout(self, tiny_ctx, tmp_path: Path):
        dataset = tiny_ctx.crawl
        rows_path = tmp_path / "crawl_rows.jsonl"
        cols_path = tmp_path / "crawl_cols.jsonl"
        dataset_io.save_crawl_dataset(dataset, rows_path, seed=2013)
        lines = dataset_io.save_crawl_dataset(
            dataset, cols_path, seed=2013, columnar=True
        )
        assert lines == 3  # pools + report columns + observation columns
        from_rows = dataset_io.load_crawl_dataset(rows_path)
        from_cols = dataset_io.load_crawl_dataset(cols_path)
        assert crawl_record_dicts(from_cols) == crawl_record_dicts(from_rows)
        assert from_cols.summary() == dataset.summary()

    def test_columnar_is_compact(self, tiny_ctx, tmp_path: Path):
        dataset = tiny_ctx.crawl
        rows_path = tmp_path / "rows.jsonl"
        cols_path = tmp_path / "cols.jsonl"
        dataset_io.save_crawl_dataset(dataset, rows_path)
        dataset_io.save_crawl_dataset(dataset, cols_path, columnar=True)
        assert cols_path.stat().st_size < 0.5 * rows_path.stat().st_size

    def test_corrupt_columnar_sections(self, tiny_ctx, tmp_path: Path):
        path = tmp_path / "cols.jsonl"
        dataset_io.save_crawl_dataset(tiny_ctx.crawl, path, columnar=True)
        lines = path.read_text().splitlines()
        # Drop the observations line: wrong section count must fail loudly.
        path.write_text("\n".join(lines[:-1]) + "\n")
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crawl_dataset(path)

    def test_legacy_header_without_layout_still_loads(self, tmp_path: Path):
        """Files written before the layout field (PR <= 2) stay readable."""
        import json

        from tests.test_io_cli import make_report

        path = tmp_path / "old.jsonl"
        header = {"format": "repro-reports", "version": 1, "kind": "crawl"}
        path.write_text(
            json.dumps(header) + "\n" + json.dumps(report_to_dict(make_report())) + "\n"
        )
        loaded = dataset_io.load_crawl_dataset(path)
        assert len(loaded) == 1


class TestCrowdColumnar:
    def test_roundtrip_equals_row_layout(self, tiny_ctx, tmp_path: Path):
        dataset = tiny_ctx.crowd
        rows_path = tmp_path / "crowd_rows.jsonl"
        cols_path = tmp_path / "crowd_cols.jsonl"
        dataset_io.save_crowd_dataset(dataset, rows_path, seed=2013)
        lines = dataset_io.save_crowd_dataset(
            dataset, cols_path, seed=2013, columnar=True
        )
        assert lines == 4  # pools + reports + observations + records
        from_rows = dataset_io.load_crowd_dataset(rows_path)
        from_cols = dataset_io.load_crowd_dataset(cols_path)
        assert crowd_record_dicts(from_cols) == crowd_record_dicts(from_rows)
        assert from_cols.summary() == dataset.summary()
        assert from_cols.variation_counts() == dataset.variation_counts()
        assert from_cols.ratios_by_domain() == dataset.ratios_by_domain()


class TestKindDetection:
    def test_dataset_kind(self, tiny_ctx, tmp_path: Path):
        crawl_path = tmp_path / "a.jsonl"
        crowd_path = tmp_path / "b.jsonl"
        dataset_io.save_crawl_dataset(tiny_ctx.crawl, crawl_path)
        dataset_io.save_crowd_dataset(tiny_ctx.crowd, crowd_path, columnar=True)
        assert dataset_io.dataset_kind(crawl_path) == "crawl"
        assert dataset_io.dataset_kind(crowd_path) == "crowd"

    def test_load_dataset_dispatches(self, tiny_ctx, tmp_path: Path):
        path = tmp_path / "crowd.jsonl"
        dataset_io.save_crowd_dataset(tiny_ctx.crowd, path)
        kind, loaded = dataset_io.load_dataset(path)
        assert kind == "crowd"
        assert loaded.summary() == tiny_ctx.crowd.summary()

    def test_unknown_kind_rejected(self, tmp_path: Path):
        path = tmp_path / "odd.jsonl"
        path.write_text('{"format": "repro-reports", "version": 1, "kind": "odd"}\n')
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.dataset_kind(path)


class TestCliAutoDetect:
    def test_analyze_crowd_file(self, tmp_path: Path, capsys):
        out_file = tmp_path / "crowd.jsonl"
        code = cli.main(["campaign", "--scale", "tiny", "--out", str(out_file)])
        assert code == 0
        capsys.readouterr()
        code = cli.main(["analyze", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "loaded crowd dataset" in out
        assert "checks with variation per domain" in out
        assert "magnitude" in out

    def test_analyze_crawl_file_output_unchanged(self, tmp_path: Path, capsys):
        out_file = tmp_path / "crawl.jsonl"
        code = cli.main(["crawl", "--scale", "tiny", "--out", str(out_file)])
        assert code == 0
        capsys.readouterr()
        code = cli.main(["analyze", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "extent of variation" in out
        assert "Finland profile" in out


class TestTornFiles:
    """Crash artifacts: loads must fail loudly, never misread.

    A process dying mid-write leaves either a torn final line (killed
    mid-line) or a file truncated at a line boundary (killed between
    lines).  The first breaks the per-line JSON parse; the second leaves
    every line valid, and only the header's declared count betrays it.
    """

    def test_torn_last_line_raises_crawl(self, tiny_ctx, tmp_path: Path):
        path = tmp_path / "torn.jsonl"
        dataset_io.save_crawl_dataset(tiny_ctx.crawl, path, columnar=True)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - len(raw.splitlines(True)[-1]) // 2])
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crawl_dataset(path)

    def test_torn_last_line_raises_crowd(self, tiny_ctx, tmp_path: Path):
        path = tmp_path / "torn.jsonl"
        dataset_io.save_crowd_dataset(tiny_ctx.crowd, path, columnar=True)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crowd_dataset(path)

    def test_line_boundary_truncation_raises_crawl_rows(
        self, tiny_ctx, tmp_path: Path
    ):
        path = tmp_path / "short.jsonl"
        dataset_io.save_crawl_dataset(tiny_ctx.crawl, path)
        lines = path.read_text().splitlines(True)
        path.write_text("".join(lines[:-1]))  # every line still valid JSON
        with pytest.raises(dataset_io.DatasetFormatError, match="declares"):
            dataset_io.load_crawl_dataset(path)

    def test_line_boundary_truncation_raises_crowd_rows(
        self, tiny_ctx, tmp_path: Path
    ):
        path = tmp_path / "short.jsonl"
        dataset_io.save_crowd_dataset(tiny_ctx.crowd, path)
        lines = path.read_text().splitlines(True)
        path.write_text("".join(lines[:-1]))
        with pytest.raises(dataset_io.DatasetFormatError, match="declares"):
            dataset_io.load_crowd_dataset(path)

    def test_kind_detection_does_not_misclassify_torn_files(
        self, tiny_ctx, tmp_path: Path
    ):
        """A torn tail must not flip a file's detected kind -- and a torn
        *header* must be an error, not a guess."""
        path = tmp_path / "torn.jsonl"
        dataset_io.save_crawl_dataset(tiny_ctx.crawl, path, columnar=True)
        path.write_bytes(path.read_bytes()[:-25])
        assert dataset_io.dataset_kind(path) == "crawl"

        header_torn = tmp_path / "torn_header.jsonl"
        full = path.read_bytes()
        header_torn.write_bytes(full[: full.index(b"\n") // 2])
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.dataset_kind(header_torn)
