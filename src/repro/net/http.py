"""HTTP message model: headers, requests, responses, wire cookies.

The simulation routes :class:`HttpRequest` objects from vantage points to
retailer servers and :class:`HttpResponse` objects back.  Headers carry the
signals the paper identifies as price-relevant: the client IP (geo-located
by retailers), ``User-Agent`` (browser/OS), ``Accept-Language``, ``Cookie``
(login sessions, personas, A/B buckets) and ``Referer`` (the earlier paper
[4] found referrer-dependent prices).
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

from repro.net.urls import URL

if TYPE_CHECKING:  # structured-fetch channel; avoids a hard layer dependency
    from repro.htmlmodel.dom import Document

__all__ = [
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HttpStatus",
    "SetCookie",
    "parse_cookie_header",
]


class HttpStatus(enum.IntEnum):
    """The status codes the simulation produces."""

    OK = 200
    MOVED_PERMANENTLY = 301
    FOUND = 302
    NOT_MODIFIED = 304
    BAD_REQUEST = 400
    FORBIDDEN = 403
    NOT_FOUND = 404
    TOO_MANY_REQUESTS = 429
    INTERNAL_SERVER_ERROR = 500
    SERVICE_UNAVAILABLE = 503

    @property
    def is_success(self) -> bool:
        return 200 <= self.value < 300

    @property
    def is_redirect(self) -> bool:
        return self.value in (301, 302)


class Headers:
    """Case-insensitive, order-preserving multi-header map."""

    def __init__(self, items: Optional[Iterable[tuple[str, str]]] = None) -> None:
        self._items: list[tuple[str, str]] = []
        if items:
            for name, value in items:
                self.add(name, value)

    # ------------------------------------------------------------------
    def add(self, name: str, value: str) -> None:
        """Append a header, preserving any existing values for ``name``."""
        self._items.append((str(name), str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace all values of ``name`` with a single value."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self._items.append((str(name), str(value)))

    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of ``name``, or ``default``."""
        lowered = name.lower()
        for n, v in self._items:
            if n.lower() == lowered:
                return v
        return default

    def get_all(self, name: str) -> list[str]:
        """Every value of ``name``, in insertion order."""
        lowered = name.lower()
        return [v for n, v in self._items if n.lower() == lowered]

    def remove(self, name: str) -> None:
        """Delete all values of ``name``."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def copy(self) -> "Headers":
        """An independent copy of this header map."""
        return Headers(self._items)

    def __repr__(self) -> str:
        return f"Headers({self._items!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        return self._items == other._items


@dataclass
class HttpRequest:
    """A simulated HTTP request.

    ``client_ip`` is what a real server would read from the TCP connection;
    it is the primary geo signal.  ``timestamp`` is virtual-clock seconds.
    """

    method: str
    url: URL
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    client_ip: str = ""
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        self.method = self.method.upper()
        if self.method not in ("GET", "HEAD", "POST"):
            raise ValueError(f"unsupported method {self.method!r}")
        if isinstance(self.url, str):  # tolerated convenience
            self.url = URL.parse(self.url)

    @property
    def cookies(self) -> dict[str, str]:
        """Cookies sent by the client, parsed from the Cookie header."""
        header = self.headers.get("Cookie")
        return parse_cookie_header(header) if header else {}

    @property
    def user_agent(self) -> str:
        return self.headers.get("User-Agent", "")

    @property
    def accept_language(self) -> str:
        return self.headers.get("Accept-Language", "")

    @property
    def referer(self) -> Optional[str]:
        return self.headers.get("Referer")


@dataclass(frozen=True)
class SetCookie:
    """A parsed ``Set-Cookie`` value."""

    name: str
    value: str
    path: str = "/"
    max_age: Optional[int] = None
    secure: bool = False
    http_only: bool = False

    def to_header(self) -> str:
        """Serialize to a ``Set-Cookie`` header value."""
        parts = [f"{self.name}={self.value}", f"Path={self.path}"]
        if self.max_age is not None:
            parts.append(f"Max-Age={self.max_age}")
        if self.secure:
            parts.append("Secure")
        if self.http_only:
            parts.append("HttpOnly")
        return "; ".join(parts)

    @classmethod
    def parse(cls, header: str) -> "SetCookie":
        parts = [p.strip() for p in header.split(";") if p.strip()]
        if not parts or "=" not in parts[0]:
            raise ValueError(f"bad Set-Cookie: {header!r}")
        name, _, value = parts[0].partition("=")
        kwargs: dict = {"path": "/", "max_age": None, "secure": False, "http_only": False}
        for attr in parts[1:]:
            key, _, val = attr.partition("=")
            key = key.strip().lower()
            if key == "path":
                kwargs["path"] = val.strip() or "/"
            elif key == "max-age":
                try:
                    kwargs["max_age"] = int(val.strip())
                except ValueError:
                    pass
            elif key == "secure":
                kwargs["secure"] = True
            elif key == "httponly":
                kwargs["http_only"] = True
        return cls(name=name.strip(), value=value.strip(), **kwargs)


def parse_cookie_header(header: str) -> dict[str, str]:
    """Parse a ``Cookie:`` request header into a name→value map."""
    out: dict[str, str] = {}
    for pair in header.split(";"):
        pair = pair.strip()
        if not pair or "=" not in pair:
            continue
        name, _, value = pair.partition("=")
        out[name.strip()] = value.strip()
    return out


@dataclass
class HttpResponse:
    """A simulated HTTP response.

    ``document`` is the structured-fetch channel: a server that *renders* a
    DOM tree may attach it alongside the serialized ``body`` so in-process
    consumers (the $heriff backend fan-out) can skip re-parsing the wire
    text.  The body remains the byte-faithful archival representation; the
    attached tree is shared and must be treated as read-only.
    """

    status: HttpStatus
    headers: Headers = field(default_factory=Headers)
    body: str = ""
    url: Optional[URL] = None  # final URL after redirects
    elapsed: float = 0.0  # virtual seconds from request to response
    #: Parsed/rendered DOM of ``body``, when the server kept it (read-only).
    document: Optional["Document"] = field(
        default=None, compare=False, repr=False
    )

    @property
    def content_type(self) -> str:
        return self.headers.get("Content-Type", "")

    @property
    def set_cookies(self) -> list[SetCookie]:
        out = []
        for value in self.headers.get_all("Set-Cookie"):
            try:
                out.append(SetCookie.parse(value))
            except ValueError:
                continue
        return out

    @property
    def ok(self) -> bool:
        return self.status.is_success

    @classmethod
    def html(
        cls,
        body: str,
        *,
        status: HttpStatus = HttpStatus.OK,
        document: Optional["Document"] = None,
    ) -> "HttpResponse":
        """Convenience constructor for an HTML page response.

        ``document`` optionally attaches the already-built DOM of ``body``
        (the structured-fetch channel) so in-process consumers need not
        re-parse the serialized text.
        """
        headers = Headers()
        headers.set("Content-Type", "text/html; charset=utf-8")
        headers.set("Content-Length", str(len(body.encode("utf-8"))))
        return cls(status=status, headers=headers, body=body, document=document)

    @classmethod
    def not_found(cls, message: str = "not found") -> "HttpResponse":
        headers = Headers()
        headers.set("Content-Type", "text/plain; charset=utf-8")
        return cls(status=HttpStatus.NOT_FOUND, headers=headers, body=message)

    @classmethod
    def redirect(cls, location: str, *, permanent: bool = False) -> "HttpResponse":
        headers = Headers()
        headers.set("Location", location)
        status = HttpStatus.MOVED_PERMANENTLY if permanent else HttpStatus.FOUND
        return cls(status=status, headers=headers, body="")
