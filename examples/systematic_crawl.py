"""Systematic crawl of the paper's 21 retailers (paper §4).

Runs a reduced-scale version of the crawled dataset (products x days x 14
vantage points), then prints condensed versions of Figs. 3, 4, 5, 7 and 9:
extent and magnitude per retailer, ratio vs product price, per-location
premia, and the Finland profile.

Run:  python examples/systematic_crawl.py [workers] [local|process]

The optional arguments shard each crawl day across workers (the sharded
execution engine, ``repro.exec``); the printed figures are identical at
any worker count because the dataset is byte-identical.
"""

from __future__ import annotations

import sys

from repro.analysis import (
    clean_reports,
    domain_ratio_stats,
    finland_profile,
    location_ratio_stats,
    ratio_vs_min_price,
    variation_extent,
)
from repro.core import SheriffBackend
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.ecommerce import WorldConfig, build_world
from repro.exec import ExecConfig


def main() -> None:
    workers = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    mode = sys.argv[2] if len(sys.argv) > 2 else "local"
    exec_config = ExecConfig(workers=workers, mode=mode) if workers > 1 else None

    world = build_world(WorldConfig(catalog_scale=0.3, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    plan = build_plan(world, domains=world.crawled_domains, products_per_retailer=15)
    sharding = f" ({workers} {mode} shards)" if exec_config else ""
    print(
        f"crawling {len(plan)} retailers x {plan.total_product_urls // len(plan)} "
        f"products x 3 days x 14 vantage points{sharding} ..."
    )
    crawl = run_crawl(world, backend, plan, CrawlConfig(days=3),
                      exec_config=exec_config)
    print(f"-> {crawl.n_extracted_prices:,} extracted prices\n")

    clean = clean_reports(crawl.reports, world.rates)
    print(f"currency guard: x{clean.guard:.4f} "
          f"(kept {clean.n_kept}, dropped {clean.n_dropped})\n")

    print("Fig. 3 -- extent of variation per retailer:")
    extent = variation_extent(clean.kept)
    for domain in sorted(extent, key=extent.get, reverse=True):
        bar = "#" * int(extent[domain] * 30)
        print(f"  {domain:35s} {bar:30s} {extent[domain]:.0%}")

    print("\nFig. 4 -- magnitude per retailer (median max/min ratio):")
    stats = domain_ratio_stats(clean.kept, only_variation=True)
    for domain in sorted(stats, key=lambda d: stats[d].median):
        s = stats[domain]
        print(f"  {domain:35s} median=x{s.median:.3f} max=x{s.maximum:.3f}")

    print("\nFig. 5 -- maximal ratio vs minimal product price:")
    points = ratio_vs_min_price(clean.kept)
    for label, low, high in (("<$50", 0, 50), ("$50-500", 50, 500),
                             ("$500-2000", 500, 2000), (">$2000", 2000, 1e9)):
        band = [p.max_ratio for p in points if low <= p.min_price_usd < high]
        if band:
            print(f"  {label:10s} n={len(band):4d} max ratio=x{max(band):.2f}")

    print("\nFig. 7 -- price premium per location (median ratio to cheapest):")
    locations = location_ratio_stats(clean.kept)
    for vantage in sorted(locations, key=lambda v: locations[v].median):
        s = locations[vantage]
        print(f"  {vantage:22s} median=x{s.median:.3f} q75=x{s.q75:.3f}")

    print("\nFig. 9 -- Finland vs cheapest location, per retailer:")
    varied = [r for r in clean.kept if r.has_variation]
    for domain, s in sorted(finland_profile(varied).items(), key=lambda kv: kv[1].median):
        marker = "  <- Finland cheapest" if s.median <= 1.02 else ""
        print(f"  {domain:35s} median=x{s.median:.3f}{marker}")


if __name__ == "__main__":
    main()
