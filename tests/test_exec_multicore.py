"""Multicore execution: pool persistence, memo sharing, cheap boundary.

PR-8 pins three properties of :class:`~repro.exec.process.ProcessExecutor`
beyond byte identity (which ``test_exec_sharding.py`` owns):

* **Pool persistence** -- each dedicated worker regrows its world from
  the spec exactly once, no matter how many day batches it serves;
* **Shared burst memo** -- workers drain new cache entries, demotions,
  and counter deltas back to the coordinator, which folds them into its
  master cache: fleet-wide misses stay within 1.25x of a single-worker
  run, and the coordinator's ``cache_stats()`` report the whole fleet;
* **Delta boundary** -- a batch that changes nothing (all memo hits)
  ships almost nothing: session state, memo entries, and page bodies
  cross the boundary only when they changed.
"""

from __future__ import annotations

import pytest

from repro.core.backend import CheckRequest, SheriffBackend
from repro.crowd import CampaignConfig, run_campaign
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.ecommerce.world import WorldConfig, build_world
from repro.exec import ProcessExecutor


def _world(**overrides):
    config = dict(catalog_scale=0.15, long_tail_domains=0)
    config.update(overrides)
    return build_world(WorldConfig(**config))


def _backend(world, **kwargs):
    return SheriffBackend(
        world.network, world.vantage_points, world.rates, **kwargs
    )


def _campaign_stats(world, backend, exec_config=None):
    run_campaign(
        world, backend,
        CampaignConfig(n_checks=60, population_size=20, seed=11),
        exec_config=exec_config,
    )
    return backend.cache_stats()


class TestPoolPersistence:
    def test_worker_regrows_world_exactly_once_across_days(self):
        """A dedicated worker's world is built once per process, not per
        day batch -- the ~80ms/day respawn tax the old pool paid."""
        world = _world()
        backend = _backend(world)
        plan = build_plan(
            world, domains=world.crawled_domains[:4], products_per_retailer=3
        )
        with ProcessExecutor(world, 2) as executor:
            run_crawl(
                world, backend, plan, CrawlConfig(days=3), executor=executor
            )
            builds = executor.worker_worlds_built()
        assert len(builds) == 2
        # Every worker that served at least one batch built exactly once.
        assert all(count == 1 for count in builds if count), builds
        assert any(builds), "no worker reported a world build"


class TestSharedMemo:
    def test_fleet_misses_within_bound_of_single_worker(self):
        """Issue acceptance: total misses across 4 workers <= 1.25x the
        single-worker miss count on a memo-friendly world."""
        from repro.exec import ExecConfig

        solo = _campaign_stats(_world(), _backend(_world()))
        fleet = _campaign_stats(
            _world(), _backend(_world()),
            exec_config=ExecConfig(workers=4, mode="process"),
        )
        assert solo["burst_misses"] > 0
        assert fleet["burst_misses"] <= 1.25 * solo["burst_misses"], (
            f"fleet misses {fleet['burst_misses']} vs "
            f"solo {solo['burst_misses']}"
        )

    def test_coordinator_stats_cover_the_fleet(self):
        """The worker-blind telemetry fix: under process mode the
        coordinator's burst counters equal the sequential run's, because
        every worker's counter deltas are absorbed at fold time.  (Hit
        absorption specifically is pinned by the delta-boundary test,
        where repeat batches guarantee hits.)"""
        from repro.exec import ExecConfig

        solo = _campaign_stats(_world(), _backend(_world()))
        fleet = _campaign_stats(
            _world(), _backend(_world()),
            exec_config=ExecConfig(workers=2, mode="process"),
        )
        assert solo["burst_misses"] > 0  # the campaign exercised the memo
        assert {k: v for k, v in fleet.items() if k.startswith("burst_")} \
            == {k: v for k, v in solo.items() if k.startswith("burst_")}

    def test_demotion_priority_over_entries(self):
        """A folded demotion kills and blocks entries for its domain."""
        from repro.core.burstcache import BurstCache, BurstEntry

        world = _world()
        backend = _backend(world)
        cache: BurstCache = backend.burst_cache
        domain = "www.digitalrev.com"
        entry = BurstEntry(observations=(), htmls=(), currencies=frozenset())
        assert cache.fold_entry(backend, domain, ("k1",), entry)
        assert cache.entries_for(domain)
        cache.fold_demotion(domain, "another worker caught the policy")
        assert not cache.entries_for(domain)
        assert domain in cache.demoted_domains()
        # Entries arriving after the demotion are rejected.
        assert not cache.fold_entry(backend, domain, ("k2",), entry)
        # Propagated demotions are not new discoveries.
        assert cache.stats()["demotions"] == 0


class TestDeltaBoundary:
    def _requests(self, world, domains):
        from repro.analysis.personal import derive_anchor_for_domain

        requests = []
        for domain in domains:
            anchor = derive_anchor_for_domain(world, domain)
            product = world.retailer(domain).catalog.products[0]
            requests.append(CheckRequest(
                url=f"http://{domain}{product.path}", anchor=anchor
            ))
        return requests

    def test_unchanged_state_ships_almost_nothing(self):
        """Batch 2 of identical same-day checks is all memo hits: no new
        session state, entries, or page bodies cross the boundary."""
        world = _world()
        backend = _backend(world)
        domains = [
            d for d in world.crawled_domains
            if world.servers[d].signature_profile() is not None
        ][:3]
        requests = self._requests(world, domains)
        start_times = [float(i) for i in range(len(requests))]
        with ProcessExecutor(world, 2) as executor:
            backend.check_batch(
                requests, start_times=start_times, executor=executor
            )
            first = executor.boundary_stats()
            backend.check_batch(
                requests, start_times=start_times, executor=executor
            )
            second = executor.boundary_stats()
        ship2 = second["ship_bytes"] - first["ship_bytes"]
        recv2 = second["recv_bytes"] - first["recv_bytes"]
        assert second["batches"] == 2
        # Outbound: only the tasks themselves remain -- no spec, no
        # session blobs, no memo entries travel again.
        assert 0 < ship2 < 0.9 * first["ship_bytes"], (
            f"second batch shipped {ship2} of {first['ship_bytes']}"
        )
        # Inbound: page bodies and memo entries shipped last batch, so
        # hits come back as hash references only.
        assert 0 < recv2 < 0.25 * first["recv_bytes"], (
            f"second batch received {recv2} of {first['recv_bytes']}"
        )
        # ... and it was served from the shared memo.
        assert backend.cache_stats()["burst_hits"] >= len(requests)

    def test_boundary_stats_accounting(self):
        world = _world()
        backend = _backend(world)
        plan = build_plan(
            world, domains=world.crawled_domains[:3], products_per_retailer=2
        )
        with ProcessExecutor(world, 2) as executor:
            run_crawl(
                world, backend, plan, CrawlConfig(days=2), executor=executor
            )
            stats = executor.boundary_stats()
        assert stats["batches"] == 2
        assert stats["payload_ms"] > 0
        assert stats["fold_ms"] > 0
        assert stats["ship_bytes"] > 0
        assert stats["recv_bytes"] > 0
