"""One benchmark per paper figure: regenerate the figure from the shared
datasets and record its headline numbers as benchmark extra-info.

Each benchmark's asserted ``FigureResult`` is the same object the
experiment runner prints; the bench target therefore both times the
analysis and regenerates the paper artifact.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    fig01_crowd_domains,
    fig02_crowd_magnitude,
    fig03_crawl_extent,
    fig04_crawl_magnitude,
    fig05_ratio_vs_price,
    fig06_pricing_structure,
    fig07_locations,
    fig08_pairwise_grids,
    fig09_finland,
    fig10_login,
)


def _run_figure(benchmark, ctx, module, *, rounds: int = 3):
    result = benchmark.pedantic(
        module.run, args=(ctx,), rounds=rounds, iterations=1
    )
    benchmark.extra_info["figure"] = result.figure_id
    benchmark.extra_info["rows"] = len(result.rows)
    benchmark.extra_info["checks_passed"] = sum(result.checks.values())
    benchmark.extra_info["checks_total"] = len(result.checks)
    assert result.rows
    return result


def test_bench_fig1_crowd_domains(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig01_crowd_domains)
    assert result.checks["amazon/hotels/steam occupy the head"]


def test_bench_fig2_crowd_magnitude(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig02_crowd_magnitude)
    assert result.checks["typical magnitude in the 10%-45% band"]


def test_bench_fig3_crawl_extent(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig03_crawl_extent)
    assert result.checks["the paper's 100%-extent retailers measure >= 90%"]


def test_bench_fig4_crawl_magnitude(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig04_crawl_magnitude)
    assert result.checks["rank correlation with paper ordering > 0.8"]


def test_bench_fig5_ratio_vs_price(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig05_ratio_vs_price)
    assert result.checks["multi-$K products stay below x1.5"]


def test_bench_fig6_pricing_structure(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig06_pricing_structure)
    assert result.checks["digitalrev lines are flat (|slope| < 0.02 per decade)"]
    assert result.checks["energie US line decays with price (slope < -0.03 per decade)"]


def test_bench_fig7_locations(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig07_locations)
    assert result.checks["Finland is the most expensive location"]


def test_bench_fig8_pairwise_grids(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig08_pairwise_grids)
    assert result.checks["homedepot: New York consistently dearer than Chicago"]


def test_bench_fig9_finland(benchmark, ctx):
    result = _run_figure(benchmark, ctx, fig09_finland)
    assert result.checks["exactly the paper's exceptions are Finland-cheap"]


def test_bench_fig10_login(benchmark, ctx):
    # Fig. 10 re-measures (login sessions), so it is heavier: 1 round.
    result = _run_figure(benchmark, ctx, fig10_login, rounds=1)
    assert result.checks["personas (affluent vs budget) show zero price differences"]
