"""The $heriff backend: synchronized fan-out, extraction, archiving.

§3.1 steps (iii)-(vi): when a check arrives, the exact URI is requested
from the 14 vantage points "around the world" in a tight, synchronized
burst (reducing the chance that observed variation is temporal spread --
§2.2), each downloaded page is archived, the price is extracted at the
anchored location, parsed with the vantage point's locale as a hint,
converted to USD at the day's mid market rate, and the per-location prices
are returned to the user as a :class:`~repro.core.reports.PriceCheckReport`.

Transient network failures are retried a bounded number of times; a vantage
point that stays unreachable yields a failed observation rather than
aborting the check.

Performance notes (the parse-once fan-out): simulated retailers attach
their rendered DOM to the response (the *structured-fetch channel*,
``HttpResponse.document``), so :meth:`SheriffBackend._observe` extracts
straight from the tree and never re-parses the serialized body it just
archived.  String-only pages (crowd uploads, store replays) fall back to a
content-hash-keyed parse cache.  :meth:`SheriffBackend.check_batch` is the
primitive -- :meth:`SheriffBackend.check` is a batch of one -- and
amortizes URL parsing and the FX ``max_gap_ratio`` guard across a day's
burst of checks.

Scheduled execution (the shard/merge seam): a batch is first resolved into
:class:`ScheduledCheck` entries -- (index, check id, start time, request)
-- and each entry is executed by :meth:`SheriffBackend.run_scheduled_check`
on its *own* burst clock forked at the scheduled start time.  The world
clock never moves during a fan-out (the synchronized burst is instantaneous
from the campaign/crawl timeline's perspective), so a check's bytes depend
only on its schedule entry and the per-retailer state it touches, never on
what other checks ran before it.  That property lets an executor from
:mod:`repro.exec` partition a batch across workers by retailer and merge
the reports back in plan order, byte-identical to the sequential loop.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, Optional, Protocol, Sequence

from repro.core.burstcache import BurstCache, BurstPlan
from repro.core.extraction import extract_price, extract_price_from_document
from repro.core.highlight import PriceAnchor
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.core.store import PageStore
from repro.ecommerce.localization import locale_for_country
from repro.fx.convert import Converter, max_gap_ratio
from repro.fx.rates import RateService
from repro.htmlmodel.parser import parse_cache_stats
from repro.net.clock import SECONDS_PER_DAY, VirtualClock
from repro.net.transport import Network, TransportError
from repro.net.urls import URL
from repro.net.vantage import VantagePoint

__all__ = ["CheckRequest", "ScheduledCheck", "SheriffBackend"]

_USD_ONLY = frozenset({"USD"})

#: Signature of an archive sink: receives exactly the keyword arguments of
#: :meth:`repro.core.store.PageStore.archive`.  Executors substitute a
#: buffering sink so archives can be replayed into the real store in plan
#: order regardless of which worker fetched the page.
ArchiveSink = Callable[..., object]


@dataclass(frozen=True)
class CheckRequest:
    """What the extension sends to the backend."""

    url: str
    anchor: PriceAnchor
    origin: str = "anonymous"

    def __post_init__(self) -> None:
        URL.parse(self.url)  # validate eagerly; fail at submission time


@dataclass(frozen=True)
class ScheduledCheck:
    """One resolved entry of a batch: what to check, as whom, and when.

    ``index`` is the request's position in the submitted batch (the merge
    key); ``check_id`` is pre-assigned so workers need no shared counter;
    ``start_ts`` is the virtual instant the synchronized burst begins.
    The tuple is picklable -- process executors ship it to workers.
    """

    index: int
    check_id: str
    start_ts: float
    request: CheckRequest


class SupportsRun(Protocol):
    """What :meth:`SheriffBackend.check_batch` needs from an executor.

    Implementations live in :mod:`repro.exec`; ``run`` must return one
    report per schedule entry, in ``scheduled`` (= submission) order, and
    leave ``backend.store`` exactly as the inline loop would.
    """

    def run(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence[ScheduledCheck],
        fleet: Sequence[VantagePoint],
        sink: Optional[Callable[[PriceCheckReport], None]] = None,
    ) -> list[PriceCheckReport]:  # pragma: no cover - protocol
        """Execute every entry and return reports in submission order.

        With a ``sink``, deliver each report to it in submission order
        instead of accumulating a list (and return an empty list).
        """
        ...


class SheriffBackend:
    """Fan-out coordinator over a fixed vantage-point fleet."""

    MAX_RETRIES = 2

    def __init__(
        self,
        network: Network,
        vantage_points: Sequence[VantagePoint],
        rates: RateService,
        *,
        store: Optional[PageStore] = None,
        burst_memo: bool = True,
        burst_cache: Optional[BurstCache] = None,
    ) -> None:
        if not vantage_points:
            raise ValueError("backend needs at least one vantage point")
        self.network = network
        self.vantage_points = list(vantage_points)
        self.rates = rates
        self.converter = Converter(rates)
        self.store = store if store is not None else PageStore()
        self._next_check_number = 1
        # The guard depends only on (currencies seen, day); a day's burst of
        # checks over the same retailers recomputes it constantly otherwise.
        self._guard_cache: dict[tuple[int, frozenset[str]], float] = {}
        # Burst memo (repro.core.burstcache): whole-fan-out memoization for
        # signature-pure retailers.  Always constructed so executors can
        # toggle ``enabled`` per task; pass an instance to configure
        # validation sampling or LRU size.
        self.burst_cache = (
            burst_cache
            if burst_cache is not None
            else BurstCache(enabled=burst_memo)
        )
        self._structured_fetch_hits = 0

    # ------------------------------------------------------------------
    @property
    def next_check_number(self) -> int:
        """The number the next scheduled check's id will carry.

        Checkpoint resume restores this cursor so a resumed run assigns
        the same ``chk%07d`` ids an uninterrupted run would have.
        """
        return self._next_check_number

    @next_check_number.setter
    def next_check_number(self, value: int) -> None:
        if value < 1:
            raise ValueError("next_check_number must be >= 1")
        self._next_check_number = int(value)

    # ------------------------------------------------------------------
    def check(
        self,
        request: CheckRequest,
        *,
        vantage_points: Optional[Sequence[VantagePoint]] = None,
    ) -> PriceCheckReport:
        """Run one synchronized price check and return the report."""
        return self.check_batch([request], vantage_points=vantage_points)[0]

    def check_batch(
        self,
        requests: Sequence[CheckRequest],
        *,
        vantage_points: Optional[Sequence[VantagePoint]] = None,
        pacing_seconds: float = 0.0,
        start_times: Optional[Sequence[float]] = None,
        executor: Optional["SupportsRun"] = None,
        sink: Optional[Callable[[PriceCheckReport], None]] = None,
    ) -> list[PriceCheckReport]:
        """Run a burst of checks, amortizing per-day work across them.

        Checks are scheduled in order -- check *i* starts at
        ``now + i * pacing_seconds`` (crawler politeness), or at
        ``start_times[i]`` when an explicit schedule is given (the crowd
        campaign passes each click's own timestamp).  Each check's fan-out
        runs on a burst clock forked at its start time, so reports are
        byte-identical to a sequential loop no matter how the schedule is
        executed.  With the default pacing schedule the world clock ends at
        ``now + len(requests) * pacing_seconds``; an explicit schedule
        leaves the world clock to the caller.

        ``executor`` (see :mod:`repro.exec`) partitions the schedule across
        workers by retailer and merges reports back in plan order; ``None``
        runs the schedule inline.  Amortized across the batch either way:
        URL parsing (memoized), day-index math, and the FX
        ``max_gap_ratio`` guard (cached per currency-set and day).

        ``sink`` streams each report out in schedule order instead of
        accumulating a list (the crawl appends rows straight into the
        columnar dataset spine this way); the return value is then an
        empty list.
        """
        if pacing_seconds < 0:
            raise ValueError("pacing_seconds must be >= 0")
        requests = list(requests)  # the schedule build iterates twice
        fleet = list(vantage_points) if vantage_points else self.vantage_points
        clock = self.network.clock
        advance_after: Optional[float] = None
        if start_times is not None:
            if pacing_seconds:
                raise ValueError(
                    "pacing_seconds and start_times conflict: an explicit "
                    "schedule already fixes every check's start"
                )
            if len(start_times) != len(requests):
                raise ValueError("start_times must match requests 1:1")
            times = [float(ts) for ts in start_times]
        else:
            # Accumulate instead of multiplying: bit-identical to a loop
            # that advances the clock by pacing_seconds after each check.
            times = []
            tick = clock.now
            for _ in requests:
                times.append(tick)
                tick += pacing_seconds
            if pacing_seconds and requests:
                advance_after = tick
        scheduled = []
        for i, request in enumerate(requests):
            scheduled.append(
                ScheduledCheck(
                    index=i,
                    check_id=f"chk{self._next_check_number:07d}",
                    start_ts=times[i],
                    request=request,
                )
            )
            self._next_check_number += 1
        if executor is None:
            reports = []
            for sched in scheduled:
                report = self.run_scheduled_check(sched, fleet, self.store.archive)
                if sink is not None:
                    sink(report)
                else:
                    reports.append(report)
        else:
            reports = executor.run(self, scheduled, fleet, sink)
        if advance_after is not None:
            clock.advance_to(advance_after)
        return reports

    def run_scheduled_check(
        self,
        sched: ScheduledCheck,
        fleet: Sequence[VantagePoint],
        archive: ArchiveSink,
    ) -> PriceCheckReport:
        """Execute one schedule entry: the executor SPI.

        The fan-out runs on a private burst clock forked at
        ``sched.start_ts``; the world clock is untouched.  Archived pages
        go through ``archive`` (same keywords as
        :meth:`~repro.core.store.PageStore.archive`) so executors can
        buffer them and replay into the real store in plan order.  Given
        identical per-retailer state (vantage cookies for the URL's domain,
        the retailer server's request counter), the returned report is
        byte-identical wherever and whenever the entry runs -- the
        invariant every executor relies on.
        """
        url = URL.parse(sched.request.url)
        day_index = int(sched.start_ts // SECONDS_PER_DAY)
        cache = self.burst_cache
        plan: Optional[BurstPlan] = None
        if cache.enabled:
            plan = cache.plan(self, sched, url, fleet)
            if plan is not None and plan.entry is not None and not plan.validate:
                return self._cached_burst_report(
                    sched, url, day_index, fleet, plan, archive
                )
        # Live fan-out.  A memo-candidate burst additionally records the
        # pricing signals the policy actually reads and captures what was
        # archived, so the cache can verify and store the outcome.
        live_archive = archive
        captured: list[dict] = []
        if plan is not None:

            def live_archive(**kwargs):
                captured.append(kwargs)
                return archive(**kwargs)

        recording = (
            plan.server.record_signal_reads()
            if plan is not None
            else nullcontext(set())
        )
        world_clock = self.network.clock
        self.network.clock = VirtualClock(sched.start_ts)
        try:
            with recording as reads:
                observations: list[VantageObservation] = []
                currencies_seen: set[str] = set()
                for vantage in fleet:
                    observations.append(
                        self._observe(vantage, url, sched.request.anchor,
                                      sched.check_id, day_index,
                                      currencies_seen, live_archive)
                    )
        finally:
            self.network.clock = world_clock
        guard = self._guard_threshold(currencies_seen, day_index)
        report = PriceCheckReport(
            check_id=sched.check_id,
            url=str(url),
            domain=url.host,
            day_index=day_index,
            timestamp=sched.start_ts,
            observations=observations,
            guard_threshold=guard,
            origin=sched.request.origin,
        )
        if plan is not None:
            cache.after_live(plan, fleet, report, captured, reads)
        return report

    def _cached_burst_report(
        self,
        sched: ScheduledCheck,
        url: URL,
        day_index: int,
        fleet: Sequence[VantagePoint],
        plan: BurstPlan,
        archive: ArchiveSink,
    ) -> PriceCheckReport:
        """Serve a memo hit: replayed archives + shared observations.

        Byte-identical to the live fan-out by construction: the archive
        timestamps come from the replayed delivery timeline, the page
        bodies and observations from an entry proven to be a pure
        function of the cache key.  No request is built and no server or
        session state is touched.
        """
        entry = plan.entry
        assert entry is not None
        url_text = str(url)
        for vantage, (_, archive_ts), html in zip(
            fleet, plan.timeline, entry.htmls
        ):
            archive(
                check_id=sched.check_id,
                url=url_text,
                domain=url.host,
                vantage=vantage.name,
                timestamp=archive_ts,
                html=html,
            )
        guard = self._guard_threshold(set(entry.currencies), day_index)
        return PriceCheckReport(
            check_id=sched.check_id,
            url=url_text,
            domain=url.host,
            day_index=day_index,
            timestamp=sched.start_ts,
            observations=list(entry.observations),
            guard_threshold=guard,
            origin=sched.request.origin,
        )

    def _guard_threshold(self, currencies: set[str], day_index: int) -> float:
        """Cached ``max_gap_ratio`` -- rates are immutable for a given day."""
        key = (day_index, frozenset(currencies) if currencies else _USD_ONLY)
        guard = self._guard_cache.get(key)
        if guard is None:
            guard = max_gap_ratio(self.rates, key[1], [day_index])
            self._guard_cache[key] = guard
        return guard

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss statistics of the caches behind the fan-out hot path.

        The ``parse_cache_*`` counters are *process-global* (the parse
        cache is shared by every backend in the process) and count
        **string pages only** -- crowd uploads and store replays that
        arrive without an attached DOM.  Simulated retailers deliver
        their rendered tree over the structured-fetch channel, which
        bypasses the parser entirely; ``structured_fetch_hits`` counts
        those, so a 0.0 parse-cache hit rate next to a large
        ``structured_fetch_hits`` means the parser had nothing to do, not
        that a cache failed.  The guard, store, and ``burst_*`` counters
        are this instance's own.
        """
        stats = {f"parse_cache_{k}": v for k, v in parse_cache_stats().items()}
        stats["structured_fetch_hits"] = self._structured_fetch_hits
        stats["guard_cache_entries"] = len(self._guard_cache)
        stats.update(self.store.dedup_stats())
        stats.update(
            {f"burst_{k}": v for k, v in self.burst_cache.stats().items()}
        )
        return stats

    # ------------------------------------------------------------------
    def _observe(
        self,
        vantage: VantagePoint,
        url: URL,
        anchor: PriceAnchor,
        check_id: str,
        day_index: int,
        currencies_seen: set[str],
        archive: ArchiveSink,
    ) -> VantageObservation:
        response = None
        errors: list[str] = []
        attempts = 0
        for _ in range(self.MAX_RETRIES + 1):
            attempts += 1
            try:
                response = vantage.fetch(self.network, url)
                break
            except TransportError as exc:
                message = str(exc)
                # Keep the first distinct cause; a retry that fails the
                # same way adds nothing to the diagnosis.
                if message not in errors:
                    errors.append(message)
        location = vantage.location
        if response is None:
            cause = errors[0] if errors else "unknown transport failure"
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=f"network: {cause} (after {attempts} attempts)",
            )
        if not response.ok:
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=f"http {int(response.status)}",
            )

        archive(
            check_id=check_id,
            url=str(url),
            domain=url.host,
            vantage=vantage.name,
            timestamp=self.network.clock.now,
            html=response.body,
        )

        locale = locale_for_country(location.country_code)
        if response.document is not None:
            # Structured-fetch fast path: the retailer rendered this tree;
            # the serialized body was archived above, but there is nothing
            # to learn from re-parsing it.
            self._structured_fetch_hits += 1
            extracted = extract_price_from_document(
                response.document, anchor, locale_hint=locale
            )
        else:
            extracted = extract_price(response.body, anchor, locale_hint=locale)
        if not extracted.ok or extracted.amount is None:
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=extracted.error or "extraction failed",
            )
        # A symbol-less price string falls back to the locale the retailer
        # would have displayed for this vantage point.
        currency = extracted.currency or locale.currency.code
        currencies_seen.add(currency)
        usd = self.converter.to_usd(extracted.amount, currency, day_index)
        return VantageObservation(
            vantage=vantage.name,
            country_code=location.country_code,
            city=location.city,
            ok=True,
            raw_text=extracted.raw_text,
            amount=extracted.amount,
            currency=currency,
            usd=usd,
            method=extracted.method,
        )
