"""Shared fixtures.

Heavy objects (worlds, datasets) are session-scoped: the simulation is
deterministic and the tests only read from them.  Tests that need to
mutate state build their own small worlds.
"""

from __future__ import annotations

import pytest

from repro.core.backend import SheriffBackend
from repro.ecommerce.world import World, WorldConfig, build_world
from repro.experiments.context import ExperimentContext


@pytest.fixture(scope="session")
def tiny_world() -> World:
    """A small but complete world: all named retailers, short catalogs."""
    return build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=12))


@pytest.fixture(scope="session")
def tiny_backend(tiny_world: World) -> SheriffBackend:
    return SheriffBackend(
        tiny_world.network, tiny_world.vantage_points, tiny_world.rates
    )


@pytest.fixture(scope="session")
def tiny_ctx() -> ExperimentContext:
    """A tiny experiment context; crowd/crawl built lazily on first use."""
    return ExperimentContext("tiny", seed=2013)


@pytest.fixture()
def fresh_world() -> World:
    """A private world for tests that log in, train personas, or advance
    the clock aggressively."""
    return build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=3))
