"""Attribution: can shipping or tax explain an observed price gap?

The paper performed this check manually (§2.2): "For factors like taxation,
shipping costs, and custom duties, we manually checked to ensure these
reasons cannot explain the price differences."  This module automates it.

For a flagged check, the probe visits the retailer's checkout page from the
cheapest and the dearest vantage points and itemizes both quotes.  The
verdict compares the *merchant totals* (item + shipping -- tax is owed to
the destination government either way, and duties settle post-sale):

* if the displayed gap survives in the merchant totals, logistics cannot
  explain it -- the paper's conclusion for every retailer it examined;
* if the merchant totals are (guard-)equal while the displayed prices
  differ, the shop is merely bundling shipping into some destinations'
  displayed prices -- variation, but not discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.reports import PriceCheckReport
from repro.ecommerce.localization import locale_for_country, parse_price
from repro.ecommerce.world import World
from repro.fx.convert import Converter
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import Selector
from repro.net.clock import SECONDS_PER_DAY
from repro.net.urls import URL

__all__ = ["CheckoutProbe", "QuoteInUSD", "AttributionVerdict"]

_LINE_SELECTOR = Selector.parse("table.checkout-summary tr.quote-line")


@dataclass(frozen=True)
class QuoteInUSD:
    """A checkout quote, normalized to USD at the day's mid rate."""

    vantage: str
    item: float
    shipping: float
    tax: float

    @property
    def merchant_total(self) -> float:
        """What the retailer actually collects: item + shipping."""
        return self.item + self.shipping

    @property
    def total(self) -> float:
        return self.item + self.shipping + self.tax


@dataclass(frozen=True)
class AttributionVerdict:
    """The outcome of attributing one flagged check."""

    url: str
    domain: str
    displayed_ratio: float
    merchant_total_ratio: float
    cheap_quote: QuoteInUSD
    dear_quote: QuoteInUSD
    guard: float

    @property
    def explained_by_logistics(self) -> bool:
        """True when shipping bundling accounts for the displayed gap."""
        return (
            self.displayed_ratio > self.guard
            and self.merchant_total_ratio <= self.guard
        )

    @property
    def unexplained(self) -> bool:
        """True when the gap persists net of shipping -- the paper's
        "could not attribute ... to currency, shipping, or taxation"."""
        return self.merchant_total_ratio > self.guard


class CheckoutProbe:
    """Fetches and parses checkout quotes through the vantage fleet."""

    def __init__(self, world: World) -> None:
        self.world = world
        self._converter = Converter(world.rates)
        self._vantage_by_name = {v.name: v for v in world.vantage_points}

    # ------------------------------------------------------------------
    def quote(self, vantage_name: str, domain: str, sku: str) -> Optional[QuoteInUSD]:
        """One vantage point's checkout quote for ``sku``, in USD."""
        vantage = self._vantage_by_name.get(vantage_name)
        if vantage is None:
            raise KeyError(f"unknown vantage point {vantage_name!r}")
        response = vantage.fetch(
            self.world.network, f"http://{domain}/checkout/{sku}"
        )
        if not response.ok:
            return None
        document = parse_html(response.body)
        locale = locale_for_country(vantage.location.country_code)
        lines: dict[str, float] = {}
        currency: Optional[str] = None
        for row in _LINE_SELECTOR.select(document):
            name = row.get("data-line")
            value_cell = next(
                (c for c in row.child_elements() if c.has_class("line-value")),
                None,
            )
            if not name or value_cell is None:
                continue
            parsed = parse_price(value_cell.text(strip=True), locale_hint=locale)
            lines[name] = parsed.amount
            currency = currency or parsed.currency
        if not {"item", "shipping", "tax"} <= set(lines):
            return None
        code = currency or locale.currency.code
        day = int(self.world.clock.now // SECONDS_PER_DAY)

        def usd(amount: float) -> float:
            return self._converter.to_usd(amount, code, day)

        return QuoteInUSD(
            vantage=vantage_name,
            item=usd(lines["item"]),
            shipping=usd(lines["shipping"]),
            tax=usd(lines["tax"]),
        )

    # ------------------------------------------------------------------
    def attribute(self, report: PriceCheckReport) -> Optional[AttributionVerdict]:
        """Attribute one flagged report; ``None`` when probing fails."""
        ratio = report.ratio
        if ratio is None:
            return None
        valid = report.valid_observations()
        cheapest = min(valid, key=lambda obs: obs.usd or 0.0)
        dearest = max(valid, key=lambda obs: obs.usd or 0.0)
        return self._attribute(
            url=report.url,
            domain=report.domain,
            displayed_ratio=ratio,
            guard=report.guard_threshold,
            cheap_vantage=cheapest.vantage,
            dear_vantage=dearest.vantage,
        )

    def attribute_row(self, table, row: int) -> Optional[AttributionVerdict]:
        """Attribute one :class:`~repro.store.ReportTable` row.

        Same verdict as :meth:`attribute` on the materialized report, but
        the cheapest/dearest vantage points are read straight off the
        observation columns -- no dataclass is built.
        """
        ratio = table.ratio[row]
        if ratio is None:
            return None
        cheap_j = dear_j = None
        cheap = dear = None
        for j in table.valid_obs_indices(row):
            usd = table.o_usd[j] or 0.0
            if cheap is None or usd < cheap:
                cheap, cheap_j = usd, j
            if dear is None or usd > dear:
                dear, dear_j = usd, j
        if cheap_j is None or dear_j is None:
            return None
        return self._attribute(
            url=table.urls.value(table.url_id[row]),
            domain=table.domains.value(table.domain_id[row]),
            displayed_ratio=ratio,
            guard=table.guard[row],
            cheap_vantage=table.vantages.value(table.o_vantage_id[cheap_j]),
            dear_vantage=table.vantages.value(table.o_vantage_id[dear_j]),
        )

    def _attribute(
        self,
        *,
        url: str,
        domain: str,
        displayed_ratio: float,
        guard: float,
        cheap_vantage: str,
        dear_vantage: str,
    ) -> Optional[AttributionVerdict]:
        sku = _sku_from_url(self.world, domain, url)
        if sku is None:
            return None
        cheap_quote = self.quote(cheap_vantage, domain, sku)
        dear_quote = self.quote(dear_vantage, domain, sku)
        if cheap_quote is None or dear_quote is None:
            return None
        merchant_ratio = (
            dear_quote.merchant_total / cheap_quote.merchant_total
            if cheap_quote.merchant_total > 0
            else 1.0
        )
        return AttributionVerdict(
            url=url,
            domain=domain,
            displayed_ratio=displayed_ratio,
            merchant_total_ratio=merchant_ratio,
            cheap_quote=cheap_quote,
            dear_quote=dear_quote,
            guard=guard,
        )


def _sku_from_url(world: World, domain: str, url: str) -> Optional[str]:
    retailer = world.retailers.get(domain)
    if retailer is None:
        return None
    path = URL.parse(url).path
    product = retailer.catalog.by_path(path)
    return product.sku if product else None
