"""Product-axis analyses (Figs. 5 and 6).

Fig. 5: for every product, the maximal per-check (synchronized) max/min
ratio against the product's minimal observed price -- cheap products show
the largest relative gaps (additive surcharges), the multi-$K tail stays
under ×1.5.

Fig. 6: for one retailer, each vantage point's ratio-to-minimum as a
function of product price.  Parallel flat lines = multiplicative pricing;
lines converging to 1 as price grows = additive pricing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.stats import percentile
from repro.core.reports import PriceCheckReport
from repro.store import TableSlice, as_table_slice

__all__ = ["ProductPoint", "ratio_vs_min_price", "per_vantage_structure", "VantageSeries"]


@dataclass(frozen=True)
class ProductPoint:
    """One dot of Fig. 5."""

    url: str
    domain: str
    min_price_usd: float
    max_ratio: float


def ratio_vs_min_price(
    reports: Sequence[PriceCheckReport], *, only_variation: bool = False
) -> list[ProductPoint]:
    """Aggregate reports per product into Fig. 5's scatter points.

    The ratio is the *maximum over measurement rounds* of the per-round
    (synchronized) max/min ratio -- cross-day price drift never pollutes a
    ratio, matching the paper's synchronization rationale.  The price is
    the product's minimum across everything seen.
    """
    sliced = as_table_slice(reports)
    if sliced is not None:
        points = _ratio_vs_min_price_kernel(sliced, only_variation)
    else:
        per_product: dict[str, list[PriceCheckReport]] = {}
        for report in reports:
            if report.ratio is not None:
                per_product.setdefault(report.url, []).append(report)
        points = []
        for url, product_reports in per_product.items():
            ratios = [r.ratio for r in product_reports if r.ratio is not None]
            mins = [r.min_usd for r in product_reports if r.min_usd is not None]
            if not ratios or not mins:
                continue
            if only_variation and not any(r.has_variation for r in product_reports):
                continue
            points.append(
                ProductPoint(
                    url=url,
                    domain=product_reports[0].domain,
                    min_price_usd=min(mins),
                    max_ratio=max(ratios),
                )
            )
    points.sort(key=lambda p: p.min_price_usd)
    return points


def _ratio_vs_min_price_kernel(
    sliced: TableSlice, only_variation: bool
) -> list[ProductPoint]:
    table = sliced.table
    ratio, guard = table.ratio, table.guard
    # url_id -> [min price, max ratio, any variation, domain_id]
    acc: dict[int, list] = {}
    for i in sliced.rows:
        r = ratio[i]
        if r is None:
            continue
        lo = table.min_usd[i]
        varied = r > guard[i]
        entry = acc.get(table.url_id[i])
        if entry is None:
            acc[table.url_id[i]] = [lo, r, varied, table.domain_id[i]]
            continue
        if lo is not None and (entry[0] is None or lo < entry[0]):
            entry[0] = lo
        if r > entry[1]:
            entry[1] = r
        entry[2] = entry[2] or varied
    url_value, domain_value = table.urls.value, table.domains.value
    return [
        ProductPoint(
            url=url_value(uid),
            domain=domain_value(entry[3]),
            min_price_usd=entry[0],
            max_ratio=entry[1],
        )
        for uid, entry in acc.items()
        if not (only_variation and not entry[2])
    ]


@dataclass(frozen=True)
class VantageSeries:
    """One vantage point's line in Fig. 6: (price, ratio) pairs."""

    vantage: str
    points: tuple[tuple[float, float], ...]  # (min product price, ratio)

    def median_ratio(self) -> float:
        """The series' typical level: median ratio across its products."""
        if not self.points:
            raise ValueError("empty series")
        return percentile([ratio for _, ratio in self.points], 50)


def per_vantage_structure(
    reports: Sequence[PriceCheckReport],
    domain: str,
    *,
    vantages: Optional[Sequence[str]] = None,
) -> list[VantageSeries]:
    """Fig. 6's per-vantage ratio-vs-price structure for one retailer.

    For each product the per-day ratios of one vantage are reduced to their
    median (suppressing A/B flutter), yielding one (price, ratio) point per
    (product, vantage).
    """
    sliced = as_table_slice(reports)
    if sliced is not None:
        series_points = _per_vantage_kernel(sliced, domain, vantages)
    else:
        domain_reports = [r for r in reports if r.domain == domain]
        per_product: dict[str, list[PriceCheckReport]] = {}
        for report in domain_reports:
            per_product.setdefault(report.url, []).append(report)

        series_points = {}
        for url, product_reports in per_product.items():
            mins = [r.min_usd for r in product_reports if r.min_usd is not None]
            if not mins:
                continue
            price = min(mins)
            per_vantage: dict[str, list[float]] = {}
            for report in product_reports:
                for vantage, ratio in report.ratios_by_vantage().items():
                    per_vantage.setdefault(vantage, []).append(ratio)
            for vantage, ratios in per_vantage.items():
                if vantages is not None and vantage not in vantages:
                    continue
                series_points.setdefault(vantage, []).append(
                    (price, percentile(ratios, 50))
                )

    out = []
    for vantage in sorted(series_points):
        points = tuple(sorted(series_points[vantage]))
        out.append(VantageSeries(vantage=vantage, points=points))
    return out


def _per_vantage_kernel(
    sliced: TableSlice, domain: str, vantages: Optional[Sequence[str]]
) -> dict[str, list[tuple[float, float]]]:
    table = sliced.table
    did = table.domains.id_of(domain)
    series_points: dict[str, list[tuple[float, float]]] = {}
    if did is None:
        return series_points
    per_product: dict[int, list[int]] = {}
    for i in sliced.rows:
        if table.domain_id[i] == did:
            per_product.setdefault(table.url_id[i], []).append(i)
    vantage_value = table.vantages.value
    for rows in per_product.values():
        mins = [table.min_usd[i] for i in rows if table.min_usd[i] is not None]
        if not mins:
            continue
        price = min(mins)
        per_vantage: dict[int, list[float]] = {}
        for i in rows:
            for vid, ratio in table.ratios_by_vantage(i):
                per_vantage.setdefault(vid, []).append(ratio)
        for vid, ratios in per_vantage.items():
            name = vantage_value(vid)
            if vantages is not None and name not in vantages:
                continue
            series_points.setdefault(name, []).append(
                (price, percentile(ratios, 50))
            )
    return series_points
