"""The $heriff service core: transport-free application logic.

:class:`SheriffService` is the hexagon's inside -- everything the HTTP
adapter (:mod:`repro.serve.app`) exposes, expressed as plain methods on
plain dicts, so tests can drive it without a socket and a future
transport (CLI, gRPC, queue worker) can reuse it unchanged.

Design notes:

* **Single checks** run against one long-lived serving context (world +
  :class:`~repro.core.backend.SheriffBackend`) built from the service's
  ``(scale, seed)``.  The backend's :class:`~repro.core.burstcache.
  BurstCache` is therefore shared across requests -- it *is* the serving
  cache; repeat checks of a hot product are memo hits at sub-millisecond
  cost.  A lock serializes checks: the simulation's determinism contract
  keys every draw by check identity, and the check counter, session
  state, and memo are shared mutable state.  The first check served by a
  fresh service is byte-identical to the batch path's first check on an
  identically-built context (``tests/test_serve.py`` pins this).
* **Campaign jobs** each regrow their *own* world from the job spec --
  campaign determinism requires a world whose entire history is the
  campaign itself, so jobs never touch the serving context or its cache.
  Each job runs on a daemon thread under ``run_campaign(...,
  checkpoint_dir=..., resume=True)``: every completed day is durably
  committed, so a SIGKILL of the whole service loses at most the day in
  flight, and a restarted service resumes the job from its checkpoint
  (:meth:`SheriffService.start` scans the registry).  Per-job supervision
  counters come from :class:`~repro.exec.FleetHealthScope` -- the
  process-wide accumulator would mix concurrent jobs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Optional

from repro.core.backend import CheckRequest, SheriffBackend
from repro.ecommerce.world import build_world
from repro.exec import FleetHealthScope, fleet_health
from repro.experiments.context import ExperimentContext
from repro.io import report_to_dict, save_crowd_dataset
from repro.serve.jobs import Job, JobRegistry, JobSpec

__all__ = [
    "BadRequest",
    "Conflict",
    "NotFound",
    "ServiceError",
    "SheriffService",
    "encode_report",
]


class ServiceError(Exception):
    """A client-visible failure; ``status`` is its HTTP mapping."""

    status = 500


class BadRequest(ServiceError):
    """Malformed payload or spec (400)."""

    status = 400


class NotFound(ServiceError):
    """Unknown domain, job, or route (404)."""

    status = 404


class Conflict(ServiceError):
    """Right route, wrong job state -- e.g. results of a running job (409)."""

    status = 409


def encode_report(report) -> bytes:
    """The served wire form of one check report.

    Exactly the batch path's :func:`repro.io.report_to_dict` under
    canonical JSON -- the byte-identity contract between the service and
    offline runs is this function.
    """
    return json.dumps(report_to_dict(report), sort_keys=True).encode("utf-8")


class SheriffService:
    """Job registry + serving context behind the HTTP routes."""

    def __init__(
        self,
        *,
        scale: str = "tiny",
        seed: int = 2013,
        data_dir: Path,
        exec_config=None,
    ) -> None:
        self.scale = scale
        self.seed = seed
        self.exec_config = exec_config
        self.registry = JobRegistry(Path(data_dir) / "jobs")
        self._ctx = ExperimentContext(scale, seed=seed)
        self._check_lock = threading.Lock()
        self._checks_served = 0
        self._started = time.perf_counter()
        self._threads: dict[str, threading.Thread] = {}

    @property
    def world(self):
        """The serving context's world (traffic generators, tests)."""
        return self._ctx.world

    # ------------------------------------------------------------------
    def start(self) -> list[str]:
        """Scan the data dir; resume incomplete jobs.  Returns their ids."""
        resumed = []
        for job in self.registry.scan():
            if job.status not in ("done", "failed"):
                self._launch(job)
                resumed.append(job.id)
        return resumed

    # ------------------------------------------------------------------
    # Single checks
    # ------------------------------------------------------------------
    def check(self, payload: dict) -> bytes:
        """Run one on-demand check; returns the canonical JSON bytes."""
        if not isinstance(payload, dict):
            raise BadRequest("check body must be a JSON object")
        domain = payload.get("domain")
        if not isinstance(domain, str) or not domain:
            raise BadRequest("check body needs a 'domain' string")
        product_index = payload.get("product", 0)
        if not isinstance(product_index, int) or isinstance(product_index, bool):
            raise BadRequest("'product' must be an integer catalog index")
        from repro.analysis.personal import derive_anchor_for_domain

        world = self._ctx.world
        if domain not in world.retailers:
            raise NotFound(f"unknown domain {domain!r}")
        catalog = world.retailer(domain).catalog
        if not 0 <= product_index < len(catalog):
            raise BadRequest(
                f"product index out of range (0..{len(catalog) - 1})"
            )
        product = catalog.products[product_index]
        with self._check_lock:
            anchor = derive_anchor_for_domain(world, domain)
            report = self._ctx.backend.check(CheckRequest(
                url=f"http://{domain}{product.path}", anchor=anchor,
            ))
            self._checks_served += 1
        return encode_report(report)

    # ------------------------------------------------------------------
    # Campaign jobs
    # ------------------------------------------------------------------
    def submit_campaign(self, payload: dict) -> dict:
        """Create + launch a campaign job; returns its status dict."""
        try:
            spec = JobSpec.from_dict(payload)
        except ValueError as exc:
            raise BadRequest(str(exc))
        job = self.registry.create(spec)
        self._launch(job)
        return self.job_status(job.id)

    def job_status(self, job_id: str) -> dict:
        """``GET /jobs/<id>``: progress plus live or persisted job stats."""
        job = self._get(job_id)
        status = {
            "id": job.id,
            "status": job.status,
            "spec": job.spec.to_dict(),
            "checks": {
                "done": job.checks_done(),
                "total": job.checks_total(),
            },
        }
        if job.outcome is not None:
            # Terminal: the persisted outcome carries the final stats
            # (they survive service restarts; runtime state does not).
            for key in ("rows", "memo", "fleet_health", "summary"):
                if key in job.outcome:
                    status[key] = job.outcome[key]
            if job.error:
                status["error"] = job.error
        else:
            memo = job.memo_stats()
            if memo is not None:
                status["memo"] = memo
            health = job.fleet_health()
            if health is not None:
                status["fleet_health"] = health
        return status

    def job_results_path(self, job_id: str) -> Path:
        """The columnar results file of a *finished* job."""
        job = self._get(job_id)
        if job.status == "failed":
            raise Conflict(f"{job.id} failed: {job.error}")
        if job.status != "done" or not job.results_path.exists():
            raise Conflict(
                f"{job.id} is {job.status}; results are available once "
                f"it is done (poll /jobs/{job.id})"
            )
        return job.results_path

    def _get(self, job_id: str) -> Job:
        job = self.registry.get(job_id)
        if job is None:
            raise NotFound(f"no such job {job_id!r}")
        return job

    def _launch(self, job: Job) -> None:
        thread = threading.Thread(
            target=self._run_job, args=(job,),
            name=f"sheriff-{job.id}", daemon=True,
        )
        self._threads[job.id] = thread
        thread.start()

    def _run_job(self, job: Job) -> None:
        job.status = "running"
        scope = job.scope = FleetHealthScope()
        try:
            with scope:
                world = build_world(job.spec.world_config())
                backend = SheriffBackend(
                    world.network, world.vantage_points, world.rates
                )
                job.backend = backend
                from repro.crowd import run_campaign

                # resume=True always: with no manifest it starts fresh,
                # with one it continues -- exactly the restart semantics
                # a durable job wants.
                dataset = run_campaign(
                    world, backend, job.spec.campaign_config(),
                    exec_config=self.exec_config,
                    checkpoint_dir=job.checkpoint_dir, resume=True,
                )
            tmp = job.results_path.with_name(job.results_path.name + ".tmp")
            rows = save_crowd_dataset(
                dataset, tmp, seed=job.spec.seed, columnar=True
            )
            os.replace(tmp, job.results_path)
            job.persist_outcome({
                "status": "done",
                "rows": rows,
                "summary": dataset.summary(),
                "memo": job.memo_stats(),
                "fleet_health": scope.snapshot(),
            })
            job.status = "done"
        except Exception as exc:  # noqa: BLE001 - job isolation boundary
            job.error = f"{exc.__class__.__name__}: {exc}"
            job.persist_outcome({"status": "failed", "error": job.error})
            job.status = "failed"
        finally:
            job.backend = None

    # ------------------------------------------------------------------
    # Health
    # ------------------------------------------------------------------
    def healthz(self) -> dict:
        """``GET /healthz``: serving-cache, fleet-health and job counts."""
        stats = self._ctx.backend.cache_stats()
        hits = int(stats["burst_hits"])
        misses = int(stats["burst_misses"])
        total = hits + misses
        jobs = self.registry.jobs()
        by_status: dict[str, int] = {}
        for job in jobs:
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "status": "ok",
            "scale": self.scale,
            "seed": self.seed,
            "uptime_s": round(time.perf_counter() - self._started, 3),
            "checks_served": self._checks_served,
            "serving_cache": {
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / total, 4) if total else 0.0,
            },
            "fleet_health": fleet_health(),
            "jobs": {"total": len(jobs), **by_status},
        }

    # ------------------------------------------------------------------
    def close(self, timeout: float = 5.0) -> None:
        """Give running job threads a grace period to reach a day commit.

        Jobs are kill-safe regardless (their checkpoints resume), so
        this only narrows how much in-flight work a graceful shutdown
        re-executes on the next start.
        """
        deadline = time.perf_counter() + timeout
        for thread in self._threads.values():
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            thread.join(timeout=remaining)
