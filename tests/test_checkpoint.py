"""The checkpoint subsystem: manifest protocol, state round-trips, and
in-process interrupt/resume byte identity.

Process-level SIGKILL coverage lives in ``tests/test_crash_resume.py``
(via ``tests/crashkit.py``); this module exercises the same machinery
in-process, where every error path can be driven precisely.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro import cli
from repro import io as dataset_io
from repro.checkpoint import (
    BARRIER_NAMES,
    SEGMENT_COMMITTED,
    CheckpointError,
    CheckpointMismatchError,
    Manifest,
    ManifestError,
    RunCheckpoint,
    SegmentDigestError,
    SegmentMissingError,
    barrier,
    capture_run_state,
    decode_state,
    encode_state,
    install_barrier_hook,
    restore_run_state,
    run_fingerprint,
)
from repro.checkpoint.manifest import atomic_write_bytes, file_sha256
from repro.core.backend import SheriffBackend
from repro.crawler.crawl import CrawlConfig, plan_digest, run_crawl
from repro.crawler.plan import build_plan
from repro.crowd.campaign import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, build_world

WORLD_CONFIG = WorldConfig(catalog_scale=0.15, long_tail_domains=8)
CAMPAIGN_CONFIG = CampaignConfig(
    n_checks=60, population_size=30, seed=7, start_day=0, end_day=6
)
CRAWL_CONFIG = CrawlConfig(days=3, start_day=3)


def fresh_pair():
    world = build_world(WORLD_CONFIG)
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    return world, backend


def tiny_plan(world):
    return build_plan(
        world, domains=world.crawled_domains[:3], products_per_retailer=3
    )


def crowd_bytes(dataset, path: Path) -> bytes:
    dataset_io.save_crowd_dataset(dataset, path, columnar=True)
    return path.read_bytes()


def crawl_bytes(dataset, path: Path) -> bytes:
    dataset_io.save_crawl_dataset(dataset, path, columnar=True)
    return path.read_bytes()


class InterruptRun(Exception):
    """Stands in for SIGKILL in in-process tests."""


def interrupt_after_segments(n: int):
    """A barrier hook raising after the nth committed segment."""
    seen = [0]

    def hook(name: str) -> None:
        if name == SEGMENT_COMMITTED:
            seen[0] += 1
            if seen[0] == n:
                raise InterruptRun()

    return hook


@pytest.fixture()
def clean_hook():
    yield
    install_barrier_hook(None)


# ----------------------------------------------------------------------
# Tagged JSON state encoding
# ----------------------------------------------------------------------
class TestStateEncoding:
    def test_round_trips_rng_state(self):
        rng = random.Random(99)
        rng.random()
        state = rng.getstate()
        assert decode_state(json.loads(json.dumps(encode_state(state)))) == state

    def test_round_trips_tuple_keyed_dicts(self):
        value = {("10.0.0.1", 3): 7, ("10.0.0.2", 4): 1}
        assert decode_state(json.loads(json.dumps(encode_state(value)))) == value

    def test_round_trips_fuzzed_nests(self):
        rng = random.Random(0x5EED)

        def grow(depth: int):
            if depth == 0:
                return rng.choice(
                    [None, True, False, rng.randrange(-9, 9),
                     rng.random(), "s", "__t__", "__m__"]
                )
            shape = rng.randrange(4)
            if shape == 0:
                return [grow(depth - 1) for _ in range(rng.randrange(3))]
            if shape == 1:
                return tuple(grow(depth - 1) for _ in range(rng.randrange(3)))
            if shape == 2:
                return {f"k{i}": grow(depth - 1) for i in range(rng.randrange(3))}
            return {
                (i, f"k{i}"): grow(depth - 1) for i in range(rng.randrange(3))
            }

        for _ in range(50):
            value = grow(4)
            again = decode_state(json.loads(json.dumps(encode_state(value))))
            assert again == value
            assert type(again) is type(value)

    def test_tag_colliding_string_keys_survive(self):
        value = {"__t__": [1, 2]}  # a real dict that *looks* like the tag
        assert decode_state(json.loads(json.dumps(encode_state(value)))) == value

    def test_unencodable_values_fail_loudly(self):
        with pytest.raises(TypeError, match="cannot checkpoint"):
            encode_state({"bad": {1, 2}})


# ----------------------------------------------------------------------
# Manifest protocol
# ----------------------------------------------------------------------
class TestManifest:
    FP = {"kind": "campaign", "world": {"seed": 1}, "run": {"n": 2}}

    def make(self, tmp_path: Path) -> Manifest:
        return Manifest.create(
            tmp_path / "manifest.jsonl", kind="campaign", fingerprint=self.FP
        )

    def record(self, seq: int = 0, **overrides) -> dict:
        rec = {
            "seq": seq, "day": seq, "file": f"seg-{seq:05d}.jsonl",
            "sha256": "0" * 64, "rows": 5,
            "state_file": f"state-{seq:05d}.json", "state_sha256": "1" * 64,
        }
        rec.update(overrides)
        return rec

    def test_create_append_load_round_trip(self, tmp_path: Path):
        manifest = self.make(tmp_path)
        manifest.append_segment(self.record(0))
        manifest.append_segment(self.record(1))
        loaded = Manifest.load(manifest.path)
        assert loaded.kind == "campaign"
        assert loaded.records == manifest.records
        loaded.check_run(kind="campaign", fingerprint=self.FP)

    def test_check_run_rejects_other_kind_and_fingerprint(self, tmp_path: Path):
        manifest = self.make(tmp_path)
        with pytest.raises(CheckpointMismatchError):
            manifest.check_run(kind="crawl", fingerprint=self.FP)
        with pytest.raises(CheckpointMismatchError):
            manifest.check_run(
                kind="campaign", fingerprint={"kind": "campaign", "world": {}}
            )

    def test_torn_tail_without_newline_repairs(self, tmp_path: Path):
        manifest = self.make(tmp_path)
        manifest.append_segment(self.record(0))
        raw = manifest.path.read_bytes()
        manifest.path.write_bytes(raw + b'{"seq":1,"day"')  # torn append
        with pytest.raises(ManifestError):
            Manifest.load(manifest.path)  # repair=False: loud
        repaired = Manifest.load(manifest.path, repair=True)
        assert [r["seq"] for r in repaired.records] == [0]
        assert manifest.path.read_bytes() == raw  # truncated back exactly

    def test_invalid_json_final_line_repairs(self, tmp_path: Path):
        manifest = self.make(tmp_path)
        manifest.append_segment(self.record(0))
        raw = manifest.path.read_bytes()
        manifest.path.write_bytes(raw + b'{"seq":1,"day":!!\n')
        repaired = Manifest.load(manifest.path, repair=True)
        assert len(repaired.records) == 1
        assert manifest.path.read_bytes() == raw

    def test_mid_file_corruption_never_repairs(self, tmp_path: Path):
        manifest = self.make(tmp_path)
        manifest.append_segment(self.record(0))
        manifest.append_segment(self.record(1))
        lines = manifest.path.read_bytes().splitlines(True)
        lines[1] = b"garbage\n"
        manifest.path.write_bytes(b"".join(lines))
        with pytest.raises(ManifestError, match="mid-file"):
            Manifest.load(manifest.path, repair=True)

    def test_missing_and_empty_manifests_are_errors(self, tmp_path: Path):
        with pytest.raises(ManifestError, match="no manifest"):
            Manifest.load(tmp_path / "absent.jsonl")
        empty = tmp_path / "empty.jsonl"
        empty.write_bytes(b"")
        with pytest.raises(ManifestError, match="empty"):
            Manifest.load(empty)

    @pytest.mark.parametrize(
        "header",
        [
            {"format": "other", "version": 1, "kind": "campaign", "fingerprint": {}},
            {"format": "repro-checkpoint", "version": 99, "kind": "campaign",
             "fingerprint": {}},
            {"format": "repro-checkpoint", "version": 1, "fingerprint": {}},
            {"format": "repro-checkpoint", "version": 1, "kind": "campaign"},
        ],
    )
    def test_bad_headers_are_errors(self, tmp_path: Path, header: dict):
        path = tmp_path / "manifest.jsonl"
        path.write_text(json.dumps(header) + "\n")
        with pytest.raises(ManifestError):
            Manifest.load(path)

    @pytest.mark.parametrize(
        "overrides",
        [
            {"rows": "5"}, {"rows": True}, {"sha256": 7}, {"day": None},
            {"file": 3}, {"state_file": None}, {"state_sha256": 2},
        ],
    )
    def test_bad_record_fields_are_errors(self, tmp_path: Path, overrides):
        manifest = self.make(tmp_path)
        with manifest.path.open("a") as fh:
            fh.write(json.dumps(self.record(0, **overrides)) + "\n")
        with pytest.raises(ManifestError, match="field"):
            Manifest.load(manifest.path)

    def test_non_contiguous_seq_is_an_error(self, tmp_path: Path):
        manifest = self.make(tmp_path)
        with manifest.path.open("a") as fh:
            fh.write(json.dumps(self.record(0)) + "\n")
            fh.write(json.dumps(self.record(5)) + "\n")
        with pytest.raises(ManifestError, match="contiguous"):
            Manifest.load(manifest.path)

    def test_non_object_final_line_repairs_like_torn(self, tmp_path: Path):
        manifest = self.make(tmp_path)
        good = manifest.path.read_bytes()
        manifest.path.write_bytes(good + b"[1,2,3]\n")
        with pytest.raises(ManifestError, match="torn or invalid"):
            Manifest.load(manifest.path)
        repaired = Manifest.load(manifest.path, repair=True)
        assert repaired.kind == manifest.kind
        assert manifest.path.read_bytes() == good

    def test_garbage_only_manifest_is_unrepairable(self, tmp_path: Path):
        path = tmp_path / "manifest.jsonl"
        path.write_bytes(b"not json at all")
        with pytest.raises(ManifestError, match="no intact header"):
            Manifest.load(path, repair=True)

    def test_atomic_write_and_digest_helpers(self, tmp_path: Path):
        path = tmp_path / "blob.bin"
        atomic_write_bytes(path, b"hello")
        atomic_write_bytes(path, b"world")  # overwrite is atomic too
        assert path.read_bytes() == b"world"
        assert not path.with_name("blob.bin.tmp").exists()
        assert file_sha256(path) == (
            "486ea46224d1bb4fb680f34f7c9ad96a8f24ec88be73ea8e5a6c65260e9cb8a7"
        )


# ----------------------------------------------------------------------
# Barriers
# ----------------------------------------------------------------------
class TestBarriers:
    def test_no_hook_is_a_no_op(self):
        for name in BARRIER_NAMES:
            barrier(name)

    def test_install_returns_previous_and_fires(self, clean_hook):
        fired = []
        assert install_barrier_hook(fired.append) is None
        barrier(SEGMENT_COMMITTED)
        previous = install_barrier_hook(None)
        assert previous is not None
        barrier(SEGMENT_COMMITTED)
        assert fired == [SEGMENT_COMMITTED]


# ----------------------------------------------------------------------
# RunCheckpoint
# ----------------------------------------------------------------------
class TestRunCheckpoint:
    def open_fresh(self, tmp_path: Path, **kwargs) -> RunCheckpoint:
        fp = run_fingerprint("campaign", WORLD_CONFIG, CAMPAIGN_CONFIG)
        return RunCheckpoint.open(
            tmp_path / "ckpt", kind="campaign", fingerprint=fp, **kwargs
        )

    def test_unknown_kind_rejected(self, tmp_path: Path):
        with pytest.raises(CheckpointError, match="unknown checkpoint kind"):
            RunCheckpoint.open(tmp_path / "c", kind="nope", fingerprint={})
        # Defense in depth: direct construction around ``open`` hits the
        # same wall (e.g. a hand-loaded manifest of a foreign kind).
        foreign = Manifest.create(
            tmp_path / "manifest.jsonl", kind="audit", fingerprint={}
        )
        with pytest.raises(CheckpointError, match="unknown checkpoint kind"):
            RunCheckpoint(tmp_path, foreign)

    def test_fresh_directory_without_resume_only_once(self, tmp_path: Path):
        checkpoint = self.open_fresh(tmp_path)
        assert checkpoint.committed == []
        assert checkpoint.load_last_state() is None
        with pytest.raises(CheckpointError, match="already holds"):
            self.open_fresh(tmp_path)

    def test_resume_with_no_manifest_starts_fresh(self, tmp_path: Path):
        checkpoint = self.open_fresh(tmp_path, resume=True)
        assert checkpoint.committed == []

    def test_resume_rejects_other_fingerprint(self, tmp_path: Path):
        self.open_fresh(tmp_path)
        other = run_fingerprint(
            "campaign", WORLD_CONFIG, CampaignConfig(n_checks=5)
        )
        with pytest.raises(CheckpointMismatchError):
            RunCheckpoint.open(
                tmp_path / "ckpt", kind="campaign", fingerprint=other,
                resume=True,
            )

    def test_commit_verify_fold_and_state_pruning(self, tmp_path: Path):
        world, backend = fresh_pair()
        full = run_campaign(world, backend, CAMPAIGN_CONFIG)
        checkpoint = self.open_fresh(tmp_path)
        # Commit the whole campaign as one segment, then a second one.
        state = capture_run_state(world, backend)
        record = checkpoint.commit_segment(day=0, dataset=full, state=state)
        assert record["seq"] == 0 and record["rows"] == len(full)
        checkpoint.commit_segment(day=1, dataset=full, state=state)
        assert [r["seq"] for r in checkpoint.committed] == [0, 1]
        # Only the newest state file survives a commit.
        assert not (tmp_path / "ckpt" / "state-00000.json").exists()
        assert (tmp_path / "ckpt" / "state-00001.json").exists()
        # Folding replays both committed segments, segment by segment.
        from repro.crowd.dataset import CrowdDataset

        merged = CrowdDataset()
        assert checkpoint.fold_into(merged) == 2
        assert len(merged) == 2 * len(full)
        assert checkpoint.load_last_state() is not None

    def test_missing_and_corrupt_segments_fail_loudly(self, tmp_path: Path):
        world, backend = fresh_pair()
        full = run_campaign(world, backend, CAMPAIGN_CONFIG)
        checkpoint = self.open_fresh(tmp_path)
        checkpoint.commit_segment(
            day=0, dataset=full, state=capture_run_state(world, backend)
        )
        record = checkpoint.committed[0]
        seg = tmp_path / "ckpt" / record["file"]
        original = seg.read_bytes()
        seg.write_bytes(original + b" ")
        with pytest.raises(SegmentDigestError):
            checkpoint.load_segment(record)
        seg.unlink()
        with pytest.raises(SegmentMissingError):
            checkpoint.load_segment(record)
        seg.write_bytes(original)
        assert len(checkpoint.load_segment(record)) == len(full)

    def test_fingerprint_ignores_executor_but_not_configs(self):
        base = run_fingerprint("campaign", WORLD_CONFIG, CAMPAIGN_CONFIG)
        again = run_fingerprint("campaign", WORLD_CONFIG, CAMPAIGN_CONFIG)
        assert base == again  # no executor/memo knob can enter
        other = run_fingerprint(
            "campaign", WORLD_CONFIG, CampaignConfig(n_checks=99)
        )
        assert base != other


# ----------------------------------------------------------------------
# Run-state capture / restore
# ----------------------------------------------------------------------
class TestRunState:
    def test_restore_rejects_unknown_names(self):
        world, backend = fresh_pair()
        run_campaign(world, backend, CAMPAIGN_CONFIG)
        state = capture_run_state(world, backend)

        bad = dict(state, vantage_jars={"nowhere": {}})
        fresh_world, fresh_backend = fresh_pair()
        with pytest.raises(CheckpointMismatchError, match="vantage"):
            restore_run_state(bad, fresh_world, fresh_backend)

        bad = dict(state, servers={"www.not-a-shop.example": {}})
        fresh_world, fresh_backend = fresh_pair()
        with pytest.raises(CheckpointMismatchError, match="server"):
            restore_run_state(bad, fresh_world, fresh_backend)

        bad = dict(state, user_jars={"ghost": {}})
        fresh_world, fresh_backend = fresh_pair()
        with pytest.raises(CheckpointMismatchError, match="user"):
            restore_run_state(
                bad, fresh_world, fresh_backend, user_clients={}
            )

    def test_backend_cursor_setters_validate(self):
        _, backend = fresh_pair()
        with pytest.raises(ValueError):
            backend.next_check_number = 0
        backend.next_check_number = 41
        assert backend.next_check_number == 41
        with pytest.raises(ValueError):
            backend.store.restore_archive_chain("zz")
        chain = backend.store.archive_chain
        backend.store.restore_archive_chain(chain)
        assert backend.store.archive_chain == chain


# ----------------------------------------------------------------------
# Interrupt + resume, in-process (SIGKILL variants: test_crash_resume)
# ----------------------------------------------------------------------
class TestCampaignResume:
    def reference_bytes(self, tmp_path: Path) -> bytes:
        world, backend = fresh_pair()
        full = run_campaign(
            world, backend, CAMPAIGN_CONFIG,
            checkpoint_dir=tmp_path / "ref",
        )
        return crowd_bytes(full, tmp_path / "ref.jsonl")

    def test_interrupted_campaign_resumes_byte_identical(
        self, tmp_path: Path, clean_hook
    ):
        reference = self.reference_bytes(tmp_path)
        install_barrier_hook(interrupt_after_segments(2))
        world, backend = fresh_pair()
        with pytest.raises(InterruptRun):
            run_campaign(
                world, backend, CAMPAIGN_CONFIG,
                checkpoint_dir=tmp_path / "ckpt",
            )
        install_barrier_hook(None)
        world, backend = fresh_pair()
        resumed = run_campaign(
            world, backend, CAMPAIGN_CONFIG,
            checkpoint_dir=tmp_path / "ckpt", resume=True,
        )
        assert crowd_bytes(resumed, tmp_path / "resumed.jsonl") == reference

    def test_fully_committed_campaign_resumes_from_disk_alone(
        self, tmp_path: Path, clean_hook
    ):
        reference = self.reference_bytes(tmp_path)
        world, backend = fresh_pair()
        resumed = run_campaign(
            world, backend, CAMPAIGN_CONFIG,
            checkpoint_dir=tmp_path / "ref", resume=True,
        )
        assert crowd_bytes(resumed, tmp_path / "again.jsonl") == reference

    def test_resume_rejects_foreign_day_layout(self, tmp_path: Path):
        world, backend = fresh_pair()
        run_campaign(
            world, backend, CAMPAIGN_CONFIG, checkpoint_dir=tmp_path / "c"
        )
        # Doctor a committed day so it cannot match the schedule.
        manifest_path = tmp_path / "c" / "manifest.jsonl"
        lines = manifest_path.read_text().splitlines()
        record = json.loads(lines[1])
        record["day"] = 9999
        lines[1] = json.dumps(record, separators=(",", ":"), sort_keys=True)
        manifest_path.write_text("\n".join(lines) + "\n")
        world, backend = fresh_pair()
        with pytest.raises(CheckpointMismatchError, match="day"):
            run_campaign(
                world, backend, CAMPAIGN_CONFIG,
                checkpoint_dir=tmp_path / "c", resume=True,
            )


class TestCrawlResume:
    def test_checkpointed_crawl_matches_plain_and_resumes(
        self, tmp_path: Path, clean_hook
    ):
        world, backend = fresh_pair()
        plain = run_crawl(world, backend, tiny_plan(world), CRAWL_CONFIG)
        reference = crawl_bytes(plain, tmp_path / "plain.jsonl")

        world, backend = fresh_pair()
        checkpointed = run_crawl(
            world, backend, tiny_plan(world), CRAWL_CONFIG,
            checkpoint_dir=tmp_path / "full",
        )
        assert crawl_bytes(checkpointed, tmp_path / "full.jsonl") == reference

        install_barrier_hook(interrupt_after_segments(1))
        world, backend = fresh_pair()
        with pytest.raises(InterruptRun):
            run_crawl(
                world, backend, tiny_plan(world), CRAWL_CONFIG,
                checkpoint_dir=tmp_path / "ckpt",
            )
        install_barrier_hook(None)
        world, backend = fresh_pair()
        resumed = run_crawl(
            world, backend, tiny_plan(world), CRAWL_CONFIG,
            checkpoint_dir=tmp_path / "ckpt", resume=True,
        )
        assert crawl_bytes(resumed, tmp_path / "resumed.jsonl") == reference

    def test_crawl_fingerprint_binds_the_plan(self, tmp_path: Path):
        world, backend = fresh_pair()
        plan = tiny_plan(world)
        run_crawl(
            world, backend, plan, CRAWL_CONFIG, checkpoint_dir=tmp_path / "c"
        )
        world, backend = fresh_pair()
        other_plan = build_plan(
            world, domains=world.crawled_domains[:2], products_per_retailer=3
        )
        assert plan_digest(other_plan) != plan_digest(plan)
        with pytest.raises(CheckpointMismatchError):
            run_crawl(
                world, backend, other_plan, CRAWL_CONFIG,
                checkpoint_dir=tmp_path / "c", resume=True,
            )

    def test_too_many_committed_days_rejected(self, tmp_path: Path):
        world, backend = fresh_pair()
        plan = tiny_plan(world)
        run_crawl(
            world, backend, plan, CRAWL_CONFIG, checkpoint_dir=tmp_path / "c"
        )
        world, backend = fresh_pair()
        shorter = CrawlConfig(days=2, start_day=3)
        # Same plan, shorter window: checkpoint "belongs" to a longer run.
        with pytest.raises(CheckpointMismatchError):
            run_crawl(
                world, backend, tiny_plan(world), shorter,
                checkpoint_dir=tmp_path / "c", resume=True,
            )


# ----------------------------------------------------------------------
# CLI + context threading
# ----------------------------------------------------------------------
class TestCheckpointFlags:
    def test_resume_requires_checkpoint_dir(self, capsys):
        assert cli.main(["campaign", "--scale", "tiny", "--resume"]) == 2
        assert "--resume requires --checkpoint-dir" in capsys.readouterr().err

    def test_scenario_crawls_refuse_checkpointing(self, tmp_path: Path, capsys):
        assert cli.main([
            "crawl", "--scale", "tiny", "--scenario", "flash-sale",
            "--checkpoint-dir", str(tmp_path / "c"),
        ]) == 2
        assert "does not apply to scenario" in capsys.readouterr().err

    def test_campaign_checkpoint_and_resume_round_trip(
        self, tmp_path: Path, capsys
    ):
        base = ["campaign", "--scale", "tiny",
                "--checkpoint-dir", str(tmp_path / "ck")]
        assert cli.main(base + ["--out", str(tmp_path / "first.jsonl")]) == 0
        capsys.readouterr()
        assert (tmp_path / "ck" / "campaign" / "manifest.jsonl").exists()
        assert cli.main(
            base + ["--resume", "--out", str(tmp_path / "second.jsonl")]
        ) == 0
        capsys.readouterr()
        assert (
            (tmp_path / "first.jsonl").read_bytes()
            == (tmp_path / "second.jsonl").read_bytes()
        )
