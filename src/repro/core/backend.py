"""The $heriff backend: synchronized fan-out, extraction, archiving.

§3.1 steps (iii)-(vi): when a check arrives, the exact URI is requested
from the 14 vantage points "around the world" in a tight, synchronized
burst (reducing the chance that observed variation is temporal spread --
§2.2), each downloaded page is archived, the price is extracted at the
anchored location, parsed with the vantage point's locale as a hint,
converted to USD at the day's mid market rate, and the per-location prices
are returned to the user as a :class:`~repro.core.reports.PriceCheckReport`.

Transient network failures are retried a bounded number of times; a vantage
point that stays unreachable yields a failed observation rather than
aborting the check.

Performance notes (the parse-once fan-out): simulated retailers attach
their rendered DOM to the response (the *structured-fetch channel*,
``HttpResponse.document``), so :meth:`SheriffBackend._observe` extracts
straight from the tree and never re-parses the serialized body it just
archived.  String-only pages (crowd uploads, store replays) fall back to a
content-hash-keyed parse cache.  :meth:`SheriffBackend.check_batch` is the
primitive -- :meth:`SheriffBackend.check` is a batch of one -- and
amortizes URL parsing and the FX ``max_gap_ratio`` guard across a day's
burst of checks.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.extraction import extract_price, extract_price_from_document
from repro.core.highlight import PriceAnchor
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.core.store import PageStore
from repro.ecommerce.localization import locale_for_country
from repro.fx.convert import Converter, max_gap_ratio
from repro.fx.rates import RateService
from repro.htmlmodel.parser import parse_cache_stats
from repro.net.clock import SECONDS_PER_DAY
from repro.net.transport import Network, TransportError
from repro.net.urls import URL
from repro.net.vantage import VantagePoint

__all__ = ["CheckRequest", "SheriffBackend"]

_USD_ONLY = frozenset({"USD"})


@dataclass(frozen=True)
class CheckRequest:
    """What the extension sends to the backend."""

    url: str
    anchor: PriceAnchor
    origin: str = "anonymous"

    def __post_init__(self) -> None:
        URL.parse(self.url)  # validate eagerly; fail at submission time


class SheriffBackend:
    """Fan-out coordinator over a fixed vantage-point fleet."""

    MAX_RETRIES = 2

    def __init__(
        self,
        network: Network,
        vantage_points: Sequence[VantagePoint],
        rates: RateService,
        *,
        store: Optional[PageStore] = None,
    ) -> None:
        if not vantage_points:
            raise ValueError("backend needs at least one vantage point")
        self.network = network
        self.vantage_points = list(vantage_points)
        self.rates = rates
        self.converter = Converter(rates)
        self.store = store if store is not None else PageStore()
        self._check_counter = itertools.count(1)
        # The guard depends only on (currencies seen, day); a day's burst of
        # checks over the same retailers recomputes it constantly otherwise.
        self._guard_cache: dict[tuple[int, frozenset[str]], float] = {}

    # ------------------------------------------------------------------
    def check(
        self,
        request: CheckRequest,
        *,
        vantage_points: Optional[Sequence[VantagePoint]] = None,
    ) -> PriceCheckReport:
        """Run one synchronized price check and return the report."""
        return self.check_batch([request], vantage_points=vantage_points)[0]

    def check_batch(
        self,
        requests: Sequence[CheckRequest],
        *,
        vantage_points: Optional[Sequence[VantagePoint]] = None,
        pacing_seconds: float = 0.0,
    ) -> list[PriceCheckReport]:
        """Run a burst of checks, amortizing per-day work across them.

        Checks run in order, each a synchronized fan-out exactly as
        :meth:`check` performs it (reports are byte-identical to a
        sequential loop); ``pacing_seconds`` advances the virtual clock
        after each check (crawler politeness).  Amortized across the batch:
        URL parsing (memoized), day-index math, and the FX
        ``max_gap_ratio`` guard (cached per currency-set and day).
        """
        if pacing_seconds < 0:
            raise ValueError("pacing_seconds must be >= 0")
        fleet = list(vantage_points) if vantage_points else self.vantage_points
        reports: list[PriceCheckReport] = []
        for request in requests:
            check_id = f"chk{next(self._check_counter):07d}"
            url = URL.parse(request.url)
            started = self.network.clock.now
            day_index = int(started // SECONDS_PER_DAY)

            observations: list[VantageObservation] = []
            currencies_seen: set[str] = set()
            for vantage in fleet:
                observations.append(
                    self._observe(vantage, url, request.anchor, check_id,
                                  day_index, currencies_seen)
                )

            guard = self._guard_threshold(currencies_seen, day_index)
            reports.append(PriceCheckReport(
                check_id=check_id,
                url=str(url),
                domain=url.host,
                day_index=day_index,
                timestamp=started,
                observations=observations,
                guard_threshold=guard,
                origin=request.origin,
            ))
            if pacing_seconds:
                self.network.clock.advance(pacing_seconds)
        return reports

    def _guard_threshold(self, currencies: set[str], day_index: int) -> float:
        """Cached ``max_gap_ratio`` -- rates are immutable for a given day."""
        key = (day_index, frozenset(currencies) if currencies else _USD_ONLY)
        guard = self._guard_cache.get(key)
        if guard is None:
            guard = max_gap_ratio(self.rates, key[1], [day_index])
            self._guard_cache[key] = guard
        return guard

    def cache_stats(self) -> dict[str, float]:
        """Hit/miss statistics of the caches behind the fan-out hot path.

        The ``parse_cache_*`` counters are *process-global* (the parse
        cache is shared by every backend in the process); the guard and
        store counters are this instance's own.
        """
        stats = {f"parse_cache_{k}": v for k, v in parse_cache_stats().items()}
        stats["guard_cache_entries"] = len(self._guard_cache)
        stats.update(self.store.dedup_stats())
        return stats

    # ------------------------------------------------------------------
    def _observe(
        self,
        vantage: VantagePoint,
        url: URL,
        anchor: PriceAnchor,
        check_id: str,
        day_index: int,
        currencies_seen: set[str],
    ) -> VantageObservation:
        response = None
        errors: list[str] = []
        attempts = 0
        for _ in range(self.MAX_RETRIES + 1):
            attempts += 1
            try:
                response = vantage.fetch(self.network, url)
                break
            except TransportError as exc:
                message = str(exc)
                # Keep the first distinct cause; a retry that fails the
                # same way adds nothing to the diagnosis.
                if message not in errors:
                    errors.append(message)
        location = vantage.location
        if response is None:
            cause = errors[0] if errors else "unknown transport failure"
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=f"network: {cause} (after {attempts} attempts)",
            )
        if not response.ok:
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=f"http {int(response.status)}",
            )

        self.store.archive(
            check_id=check_id,
            url=str(url),
            domain=url.host,
            vantage=vantage.name,
            timestamp=self.network.clock.now,
            html=response.body,
        )

        locale = locale_for_country(location.country_code)
        if response.document is not None:
            # Structured-fetch fast path: the retailer rendered this tree;
            # the serialized body was archived above, but there is nothing
            # to learn from re-parsing it.
            extracted = extract_price_from_document(
                response.document, anchor, locale_hint=locale
            )
        else:
            extracted = extract_price(response.body, anchor, locale_hint=locale)
        if not extracted.ok or extracted.amount is None:
            return VantageObservation(
                vantage=vantage.name,
                country_code=location.country_code,
                city=location.city,
                ok=False,
                error=extracted.error or "extraction failed",
            )
        # A symbol-less price string falls back to the locale the retailer
        # would have displayed for this vantage point.
        currency = extracted.currency or locale.currency.code
        currencies_seen.add(currency)
        usd = self.converter.to_usd(extracted.amount, currency, day_index)
        return VantageObservation(
            vantage=vantage.name,
            country_code=location.country_code,
            city=location.city,
            ok=True,
            raw_text=extracted.raw_text,
            amount=extracted.amount,
            currency=currency,
            usd=usd,
            method=extracted.method,
        )
