"""The crawled dataset: reports from the systematic daily crawl."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.reports import PriceCheckReport

__all__ = ["CrawlDataset"]


@dataclass
class CrawlDataset:
    """All product-day reports produced by :func:`repro.crawler.run_crawl`."""

    reports: list[PriceCheckReport] = field(default_factory=list)

    def add(self, report: PriceCheckReport) -> None:
        """Append one product-day report."""
        self.reports.append(report)

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self) -> Iterator[PriceCheckReport]:
        return iter(self.reports)

    # ------------------------------------------------------------------
    @property
    def domains(self) -> list[str]:
        return sorted({report.domain for report in self.reports})

    @property
    def day_indices(self) -> list[int]:
        return sorted({report.day_index for report in self.reports})

    @property
    def n_extracted_prices(self) -> int:
        """Total successful price extractions -- the paper's '188K'."""
        return sum(len(report.valid_observations()) for report in self.reports)

    def by_domain(self) -> dict[str, list[PriceCheckReport]]:
        """Reports grouped by retailer domain."""
        out: dict[str, list[PriceCheckReport]] = {}
        for report in self.reports:
            out.setdefault(report.domain, []).append(report)
        return out

    def by_product(self) -> dict[str, list[PriceCheckReport]]:
        """URL -> that product's reports across days."""
        out: dict[str, list[PriceCheckReport]] = {}
        for report in self.reports:
            out.setdefault(report.url, []).append(report)
        return out

    def summary(self) -> dict[str, int]:
        """Headline dataset statistics (the §3.2 crawl numbers)."""
        return {
            "retailers": len(self.domains),
            "reports": len(self.reports),
            "days": len(self.day_indices),
            "extracted_prices": self.n_extracted_prices,
            "products": len(self.by_product()),
        }
