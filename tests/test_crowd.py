"""Crowd population and campaign tests."""

from __future__ import annotations

import pytest

from repro.core.backend import SheriffBackend
from repro.crowd.campaign import CampaignConfig, run_campaign
from repro.crowd.dataset import CrowdDataset
from repro.crowd.population import COUNTRY_SHARES, build_population
from repro.ecommerce.world import WorldConfig, build_world
from repro.net.geoip import IPAddressPlan


class TestPopulation:
    def test_size_and_determinism(self):
        plan = IPAddressPlan()
        users = build_population(plan, size=100, seed=1)
        assert len(users) == 100
        again = build_population(IPAddressPlan(), size=100, seed=1)
        assert [u.user_id for u in users] == [u.user_id for u in again]
        assert [u.country_code for u in users] == [u.country_code for u in again]

    def test_country_spread(self):
        plan = IPAddressPlan()
        users = build_population(plan, size=340, seed=2)
        countries = {u.country_code for u in users}
        assert len(countries) >= 14  # most of the 18 show up at this size
        valid = {code for code, _ in COUNTRY_SHARES}
        assert countries <= valid

    def test_interests_valid(self):
        plan = IPAddressPlan()
        for user in build_population(plan, size=50, seed=3):
            assert 2 <= len(user.interests) <= 3
            assert user.activity > 0

    def test_unique_ips(self):
        plan = IPAddressPlan()
        users = build_population(plan, size=120, seed=4)
        assert len({u.client.ip for u in users}) == 120

    def test_size_validation(self):
        with pytest.raises(ValueError):
            build_population(IPAddressPlan(), size=0)


@pytest.fixture(scope="module")
def campaign_result():
    world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=15))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    config = CampaignConfig(n_checks=120, population_size=60, seed=7)
    dataset = run_campaign(world, backend, config)
    return world, backend, dataset


class TestCampaign:
    def test_check_count(self, campaign_result):
        _, _, dataset = campaign_result
        assert dataset.n_requests == 120

    def test_summary_statistics(self, campaign_result):
        _, _, dataset = campaign_result
        summary = dataset.summary()
        assert summary["requests"] == 120
        assert 0 < summary["users"] <= 60
        assert summary["countries"] >= 5
        assert summary["domains"] >= 10

    def test_most_checks_succeed(self, campaign_result):
        _, _, dataset = campaign_result
        ok = [record for record in dataset if record.ok]
        assert len(ok) >= 0.95 * len(dataset)

    def test_timestamps_monotonic(self, campaign_result):
        _, _, dataset = campaign_result
        days = [record.day_index for record in dataset]
        assert days == sorted(days)
        assert days[0] >= 0
        assert days[-1] <= 150

    def test_variation_counts_only_flag_discriminators(self, campaign_result):
        world, _, dataset = campaign_result
        counts = dataset.variation_counts()
        assert counts  # something was flagged
        for domain in counts:
            assert domain not in world.long_tail

    def test_discovery_finds_big_discriminators(self, campaign_result):
        """The crowd's whole point: heavily-checked variation retailers
        surface at the head of the flagged list."""
        _, _, dataset = campaign_result
        top = [domain for domain, _ in dataset.variation_counts().most_common(6)]
        assert "www.amazon.com" in top

    def test_user_prices_recorded(self, campaign_result):
        _, _, dataset = campaign_result
        with_price = [
            record for record in dataset
            if record.ok and record.outcome.user_amount is not None
        ]
        assert len(with_price) >= 0.9 * dataset.n_requests

    def test_ratios_by_domain_structure(self, campaign_result):
        _, _, dataset = campaign_result
        ratios = dataset.ratios_by_domain()
        for domain, values in ratios.items():
            assert all(v >= 1.0 for v in values)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_checks=0)
        with pytest.raises(ValueError):
            CampaignConfig(start_day=10, end_day=10)
        with pytest.raises(ValueError):
            CampaignConfig(p_wrong_highlight=1.5)

    def test_campaign_deterministic(self):
        def run_once():
            world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=5))
            backend = SheriffBackend(world.network, world.vantage_points, world.rates)
            dataset = run_campaign(
                world, backend, CampaignConfig(n_checks=25, population_size=20, seed=9)
            )
            return [(r.user_id, r.domain, r.day_index) for r in dataset]

        assert run_once() == run_once()
