"""Tests for the figure-producing analysis functions, on synthetic reports
with known ground truth."""

from __future__ import annotations

import pytest

from repro.analysis.extent import variation_extent
from repro.analysis.locations import (
    PairwisePanel,
    finland_profile,
    location_ratio_stats,
    pairwise_grid,
)
from repro.analysis.products import per_vantage_structure, ratio_vs_min_price
from repro.analysis.ratios import domain_ratio_stats, domain_ratios, domain_variation_counts
from repro.core.reports import PriceCheckReport, VantageObservation


def obs(vantage: str, usd: float, country: str = "US") -> VantageObservation:
    return VantageObservation(
        vantage=vantage, country_code=country, city="", ok=True,
        raw_text=f"${usd}", amount=usd, currency="USD", usd=usd,
    )


def report(domain: str, url: str, prices: dict[str, float], *, day: int = 0,
           guard: float = 1.01) -> PriceCheckReport:
    return PriceCheckReport(
        check_id=f"{url}@{day}", url=url, domain=domain, day_index=day,
        timestamp=day * 86400.0,
        observations=[obs(v, p) for v, p in prices.items()],
        guard_threshold=guard,
    )


@pytest.fixture()
def synthetic():
    """Two domains: d1 multiplicative x1.3 on FI, d2 uniform."""
    reports = []
    for day in range(3):
        for idx, base in enumerate((10.0, 100.0, 1000.0)):
            reports.append(report(
                "d1", f"http://d1/p{idx}",
                {"US": base, "FI": base * 1.3, "UK": base * 1.1},
                day=day,
            ))
            reports.append(report(
                "d2", f"http://d2/p{idx}",
                {"US": base, "FI": base, "UK": base},
                day=day,
            ))
    return reports


class TestRatios:
    def test_variation_counts(self, synthetic):
        counts = domain_variation_counts(synthetic)
        assert counts["d1"] == 9
        assert "d2" not in counts

    def test_domain_ratios_all_vs_varied(self, synthetic):
        all_ratios = domain_ratios(synthetic)
        assert len(all_ratios["d1"]) == 9
        assert len(all_ratios["d2"]) == 9
        varied = domain_ratios(synthetic, only_variation=True)
        assert "d2" not in varied

    def test_ratio_stats_values(self, synthetic):
        stats = domain_ratio_stats(synthetic, only_variation=True)
        assert stats["d1"].median == pytest.approx(1.3)

    def test_min_samples(self, synthetic):
        stats = domain_ratio_stats(synthetic, min_samples=100)
        assert not stats
        with pytest.raises(ValueError):
            domain_ratio_stats(synthetic, min_samples=0)


class TestExtent:
    def test_extent_values(self, synthetic):
        extent = variation_extent(synthetic)
        assert extent["d1"] == 1.0
        assert extent["d2"] == 0.0

    def test_partial_extent(self):
        reports = [
            report("d", "http://d/varies", {"a": 10, "b": 13}),
            report("d", "http://d/flat", {"a": 10, "b": 10}),
        ]
        assert variation_extent(reports)["d"] == 0.5

    def test_min_reports_filter(self, synthetic):
        assert variation_extent(synthetic, min_reports=10) == {}
        with pytest.raises(ValueError):
            variation_extent(synthetic, min_reports=0)


class TestProducts:
    def test_ratio_vs_min_price_points(self, synthetic):
        points = ratio_vs_min_price(synthetic)
        assert len(points) == 6  # 3 products x 2 domains
        assert points == sorted(points, key=lambda p: p.min_price_usd)
        d1_points = [p for p in points if p.domain == "d1"]
        assert all(p.max_ratio == pytest.approx(1.3) for p in d1_points)

    def test_per_round_ratio_not_polluted_by_drift(self):
        """Price doubles between days but is flat within each day: the
        synchronized methodology must report ratio 1.0."""
        reports = [
            report("d", "http://d/p", {"a": 10.0, "b": 10.0}, day=0),
            report("d", "http://d/p", {"a": 20.0, "b": 20.0}, day=1),
        ]
        points = ratio_vs_min_price(reports)
        assert points[0].max_ratio == pytest.approx(1.0)
        assert points[0].min_price_usd == pytest.approx(10.0)

    def test_only_variation_filter(self, synthetic):
        points = ratio_vs_min_price(synthetic, only_variation=True)
        assert {p.domain for p in points} == {"d1"}

    def test_per_vantage_structure(self, synthetic):
        series = per_vantage_structure(synthetic, "d1")
        by_name = {s.vantage: s for s in series}
        assert by_name["FI"].median_ratio() == pytest.approx(1.3)
        assert by_name["US"].median_ratio() == pytest.approx(1.0)
        assert by_name["UK"].median_ratio() == pytest.approx(1.1)
        # One point per product.
        assert len(by_name["FI"].points) == 3

    def test_per_vantage_structure_filter(self, synthetic):
        series = per_vantage_structure(synthetic, "d1", vantages=["FI"])
        assert [s.vantage for s in series] == ["FI"]


class TestLocations:
    def test_location_stats(self, synthetic):
        stats = location_ratio_stats(synthetic)
        assert stats["FI"].median == pytest.approx(1.15)  # 1.3 on d1, 1.0 on d2
        assert stats["US"].median == pytest.approx(1.0)

    def test_pairwise_grid_relationships(self, synthetic):
        grid = pairwise_grid(synthetic, "d1", ["US", "FI", "UK"])
        assert grid[("FI", "US")].relationship() == "row-dearer"
        assert grid[("US", "FI")].relationship() == "col-dearer"
        assert len(grid) == 6  # ordered pairs

    def test_pairwise_equal(self, synthetic):
        grid = pairwise_grid(synthetic, "d2", ["US", "FI"])
        assert grid[("FI", "US")].relationship() == "equal"

    def test_pairwise_mixed(self):
        reports = [
            report("d", "http://d/p1", {"a": 10.0, "b": 12.0}),
            report("d", "http://d/p2", {"a": 12.0, "b": 10.0}),
        ]
        grid = pairwise_grid(reports, "d", ["a", "b"])
        assert grid[("a", "b")].relationship() == "mixed"

    def test_pairwise_fractions(self):
        panel = PairwisePanel("r", "c", points=((1.0, 1.2), (1.0, 1.0), (1.3, 1.0)))
        assert panel.fraction_row_dearer() == pytest.approx(1 / 3)
        assert panel.fraction_equal() == pytest.approx(1 / 3)

    def test_pairwise_needs_two_locations(self, synthetic):
        with pytest.raises(ValueError):
            pairwise_grid(synthetic, "d1", ["US"])

    def test_finland_profile(self, synthetic):
        profile = finland_profile(synthetic, finland_vantage="FI")
        assert profile["d1"].median == pytest.approx(1.3)
        assert profile["d2"].median == pytest.approx(1.0)

    def test_empty_panel_relationship(self):
        assert PairwisePanel("r", "c", points=()).relationship() == "equal"
