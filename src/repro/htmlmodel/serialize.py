"""Serialize a DOM tree back to HTML text.

Used by the retailer servers (templates build DOM trees, the HTTP layer
ships text) and by the $heriff page store (archived pages are text).  The
output round-trips through :func:`repro.htmlmodel.parser.parse_html` to an
equivalent tree, which the test suite asserts property-style.
"""

from __future__ import annotations

from typing import Union

from repro.htmlmodel.dom import Document, Element, Node, Text
from repro.htmlmodel.parser import RAW_TEXT_ELEMENTS, VOID_ELEMENTS

__all__ = ["to_html", "escape_text", "escape_attr"]

_TEXT_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {"&": "&amp;", '"': "&quot;", "<": "&lt;", ">": "&gt;"}


def escape_text(data: str) -> str:
    """Escape character data for element content."""
    if "&" in data:
        data = data.replace("&", "&amp;")
    if "<" in data:
        data = data.replace("<", "&lt;")
    if ">" in data:
        data = data.replace(">", "&gt;")
    return data


def escape_attr(data: str) -> str:
    """Escape character data for a double-quoted attribute value."""
    if "&" in data:
        data = data.replace("&", "&amp;")
    if '"' in data:
        data = data.replace('"', "&quot;")
    if "<" in data:
        data = data.replace("<", "&lt;")
    if ">" in data:
        data = data.replace(">", "&gt;")
    return data


def to_html(node: Union[Document, Element, Text, Node]) -> str:
    """Serialize ``node`` (and its subtree) to HTML text."""
    parts: list[str] = []
    _serialize(node, parts, raw=False)
    return "".join(parts)


def _serialize(node: Node, parts: list[str], raw: bool) -> None:
    if isinstance(node, Element):
        tag = node.tag
        append = parts.append
        append(f"<{tag}")
        for name, value in node.attrs.items():
            if value == "":
                append(f" {name}")
            else:
                append(f' {name}="{escape_attr(value)}"')
        append(">")
        if tag in VOID_ELEMENTS:
            return
        child_raw = tag in RAW_TEXT_ELEMENTS
        for child in node.children:
            _serialize(child, parts, raw=child_raw)
        append(f"</{tag}>")
        return
    if isinstance(node, Text):
        parts.append(node.data if raw else escape_text(node.data))
        return
    if isinstance(node, Document):
        for child in node.children:
            _serialize(child, parts, raw=False)
        return
    raise TypeError(f"cannot serialize {type(node).__name__}")
