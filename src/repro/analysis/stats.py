"""Percentiles and box-plot statistics.

Hand-rolled (linear-interpolation percentiles, Tukey-style whiskers) so the
library core stays dependency-free; the test suite cross-checks against
numpy where available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

__all__ = ["percentile", "BoxStats", "grouped_box_stats"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation.

    Matches ``numpy.percentile(values, q)`` for the default method.
    """
    if not values:
        raise ValueError("percentile of empty sequence")
    return _percentile_sorted(sorted(values), q)


def _percentile_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` over an already-sorted sample (sort once,
    interpolate many -- what :meth:`BoxStats.from_values` does)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    return float(ordered[lower] * (1.0 - fraction) + ordered[upper] * fraction)


@dataclass(frozen=True)
class BoxStats:
    """Summary statistics behind one box in a box plot."""

    n: int
    median: float
    q25: float
    q75: float
    whisker_low: float
    whisker_high: float
    minimum: float
    maximum: float

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxStats":
        """Compute box statistics with 1.5-IQR whiskers clamped to data."""
        if not values:
            raise ValueError("cannot summarize an empty sample")
        ordered = sorted(values)
        q25 = _percentile_sorted(ordered, 25)
        q75 = _percentile_sorted(ordered, 75)
        iqr = q75 - q25
        low_fence = q25 - 1.5 * iqr
        high_fence = q75 + 1.5 * iqr
        inside = [v for v in ordered if low_fence <= v <= high_fence]
        # Whiskers reach the most extreme data inside the fences, but never
        # retreat inside the box (matplotlib's convention for degenerate
        # samples like [1, 1, 1, 100]).
        whisker_low = min(min(inside), q25) if inside else ordered[0]
        whisker_high = max(max(inside), q75) if inside else ordered[-1]
        return cls(
            n=len(ordered),
            median=_percentile_sorted(ordered, 50),
            q25=q25,
            q75=q75,
            whisker_low=min(whisker_low, q25),
            whisker_high=max(whisker_high, q75),
            minimum=ordered[0],
            maximum=ordered[-1],
        )

    def as_row(self) -> dict[str, float]:
        """The stats as a flat dict (for tables and JSON output)."""
        return {
            "n": self.n,
            "median": self.median,
            "q25": self.q25,
            "q75": self.q75,
            "whisker_low": self.whisker_low,
            "whisker_high": self.whisker_high,
            "min": self.minimum,
            "max": self.maximum,
        }


def grouped_box_stats(
    samples: dict[str, list[float]], *, min_samples: int = 1
) -> dict[str, "BoxStats"]:
    """key -> :class:`BoxStats`, dropping groups below ``min_samples``.

    The reduction every grouped-distribution figure (2, 4, 7, 9) ends
    with; both the columnar kernels and the list-based fallbacks feed
    their accumulated samples through here, in group insertion order.
    """
    return {
        key: BoxStats.from_values(values)
        for key, values in samples.items()
        if len(values) >= min_samples
    }
