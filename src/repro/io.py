"""Dataset persistence: JSON-lines serialization for check reports.

The paper's backend "store[s] the pages for analysis in a database"; the
measurement datasets likewise need to outlive a process so the expensive
crawl can be analyzed repeatedly.  Two layouts share one header line:

* **rows** (the original) -- line 1 a header object ``{"format":
  "repro-reports", "version": 1, "kind": "crawl"|"crowd", ...metadata}``,
  every further line one serialized :class:`PriceCheckReport` (crawl) or
  one crowd check record wrapping a report;
* **columnar** (``layout: "columnar"`` in the header) -- the
  :class:`~repro.store.ReportTable`'s own shape: one line of string
  pools, one line of report columns, one line of observation columns
  (crowd files add a fourth line of record columns).  Loading rebuilds
  the table directly -- no per-report dict round-trip -- and both layouts
  load to equal datasets (test-asserted).

Readers validate the header and fail loudly on version mismatch -- silent
misreads of measurement data are worse than crashes.
:func:`load_dataset` sniffs the header's ``kind`` so callers (the CLI's
``analyze``) need not know which of their own ``--out`` files they were
handed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.extension import CheckOutcome
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.crawler.records import CrawlDataset
from repro.crowd.dataset import CheckRecord, CrowdDataset
from repro.store import ReportTable
from repro.store.table import NO_CURRENCY

__all__ = [
    "DatasetFormatError",
    "save_crawl_dataset",
    "load_crawl_dataset",
    "save_crowd_dataset",
    "load_crowd_dataset",
    "dataset_kind",
    "load_dataset",
    "report_to_dict",
    "report_from_dict",
]

FORMAT_NAME = "repro-reports"
FORMAT_VERSION = 1
LAYOUT_ROWS = "rows"
LAYOUT_COLUMNAR = "columnar"


class DatasetFormatError(ValueError):
    """Raised for files that are not valid dataset dumps."""


# ----------------------------------------------------------------------
# Report <-> dict
# ----------------------------------------------------------------------
def _observation_to_dict(obs: VantageObservation) -> dict:
    return {
        "vantage": obs.vantage,
        "country": obs.country_code,
        "city": obs.city,
        "ok": obs.ok,
        "raw": obs.raw_text,
        "amount": obs.amount,
        "currency": obs.currency,
        "usd": obs.usd,
        "method": obs.method,
        "error": obs.error,
    }


def _observation_from_dict(data: dict) -> VantageObservation:
    try:
        return VantageObservation(
            vantage=data["vantage"],
            country_code=data["country"],
            city=data.get("city", ""),
            ok=bool(data["ok"]),
            raw_text=data.get("raw", ""),
            amount=data.get("amount"),
            currency=data.get("currency"),
            usd=data.get("usd"),
            method=data.get("method", ""),
            error=data.get("error", ""),
        )
    except KeyError as exc:
        raise DatasetFormatError(f"observation missing field {exc}") from exc


def report_to_dict(report: PriceCheckReport) -> dict:
    """Serialize one report to a JSON-compatible dict."""
    return {
        "check_id": report.check_id,
        "url": report.url,
        "domain": report.domain,
        "day": report.day_index,
        "ts": report.timestamp,
        "guard": report.guard_threshold,
        "origin": report.origin,
        "observations": [
            _observation_to_dict(obs) for obs in report.observations
        ],
    }


def report_from_dict(data: dict) -> PriceCheckReport:
    """Deserialize one report; raises :class:`DatasetFormatError`."""
    try:
        return PriceCheckReport(
            check_id=data["check_id"],
            url=data["url"],
            domain=data["domain"],
            day_index=int(data["day"]),
            timestamp=float(data["ts"]),
            observations=[
                _observation_from_dict(obs) for obs in data["observations"]
            ],
            guard_threshold=float(data.get("guard", 1.0)),
            origin=data.get("origin", "crawler"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetFormatError(f"bad report record: {exc}") from exc


# ----------------------------------------------------------------------
# File plumbing
# ----------------------------------------------------------------------
def _write_lines(path: Union[str, Path], header: dict, rows: Iterable[dict]) -> int:
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, separators=(",", ":")) + "\n")
        for row in rows:
            fh.write(json.dumps(row, separators=(",", ":")) + "\n")
            count += 1
    return count


def _read_header(path: Path, first: str) -> dict:
    if not first.strip():
        raise DatasetFormatError(f"{path} is empty")
    try:
        header = json.loads(first)
    except json.JSONDecodeError as exc:
        raise DatasetFormatError(f"{path}: bad header: {exc}") from exc
    if not isinstance(header, dict) or header.get("format") != FORMAT_NAME:
        raise DatasetFormatError(f"{path}: not a {FORMAT_NAME} file")
    if header.get("version") != FORMAT_VERSION:
        raise DatasetFormatError(
            f"{path}: unsupported version {header.get('version')!r}"
        )
    return header


def _read_lines(
    path: Union[str, Path], expected_kind: Optional[str]
) -> tuple[dict, list[dict]]:
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = _read_header(path, fh.readline())
        if expected_kind is not None and header.get("kind") != expected_kind:
            raise DatasetFormatError(
                f"{path}: kind {header.get('kind')!r}, expected {expected_kind!r}"
            )
        rows = []
        for line_no, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DatasetFormatError(f"{path}:{line_no}: {exc}") from exc
    return header, rows


def _check_declared_count(
    path: Union[str, Path], header: dict, key: str, actual: int
) -> None:
    """Fail loudly when a file holds fewer rows than its header declares.

    A crash mid-write can truncate a rows-layout file at a line boundary
    -- every surviving line is valid JSON, so only the header's declared
    count betrays the loss.  (A torn *last* line is caught earlier by the
    per-line JSON parse.)
    """
    declared = header.get(key)
    if isinstance(declared, int) and declared != actual:
        raise DatasetFormatError(
            f"{path}: header declares {declared} {key}, file holds {actual} "
            f"(truncated write?)"
        )


def dataset_kind(path: Union[str, Path]) -> str:
    """The ``kind`` declared in a dataset file's header (header-only read)."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        header = _read_header(path, fh.readline())
    kind = header.get("kind")
    if kind not in ("crawl", "crowd"):
        raise DatasetFormatError(f"{path}: unknown dataset kind {kind!r}")
    return kind


def load_dataset(
    path: Union[str, Path]
) -> tuple[str, Union[CrawlDataset, CrowdDataset]]:
    """Load either dataset kind, sniffing the header: (kind, dataset)."""
    kind = dataset_kind(path)
    if kind == "crawl":
        return kind, load_crawl_dataset(path)
    return kind, load_crowd_dataset(path)


# ----------------------------------------------------------------------
# Columnar layout plumbing
# ----------------------------------------------------------------------
def _columnar_sections(
    path: Union[str, Path], rows: list[dict], names: tuple[str, ...]
) -> list[dict]:
    if len(rows) != len(names):
        raise DatasetFormatError(
            f"{path}: columnar layout expects {len(names)} column lines "
            f"({', '.join(names)}), found {len(rows)}"
        )
    sections = []
    for row, name in zip(rows, names):
        section = row.get(name) if isinstance(row, dict) else None
        if not isinstance(section, dict):
            raise DatasetFormatError(f"{path}: missing columnar section {name!r}")
        sections.append(section)
    return sections


def _table_from_sections(path: Union[str, Path], sections: list[dict]) -> ReportTable:
    try:
        return ReportTable.from_columns(*sections)
    except ValueError as exc:
        raise DatasetFormatError(f"{path}: {exc}") from exc


# ----------------------------------------------------------------------
# Crawl dataset
# ----------------------------------------------------------------------
def save_crawl_dataset(
    dataset: CrawlDataset,
    path: Union[str, Path],
    *,
    seed: Optional[int] = None,
    columnar: bool = False,
) -> int:
    """Write a crawl dataset; returns the number of data lines written.

    ``columnar=True`` dumps the backing table's columns (3 lines however
    large the dataset) instead of one line per report; both layouts load
    back to equal datasets.
    """
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": "crawl",
        "layout": LAYOUT_COLUMNAR if columnar else LAYOUT_ROWS,
        "reports": len(dataset),
        "seed": seed,
    }
    if columnar:
        pools, reports, observations = dataset.table.to_columns()
        return _write_lines(
            path, header,
            ({"pools": pools}, {"reports": reports},
             {"observations": observations}),
        )
    return _write_lines(
        path, header, (report_to_dict(r) for r in dataset.reports)
    )


def load_crawl_dataset(path: Union[str, Path]) -> CrawlDataset:
    """Read a crawl dataset written by :func:`save_crawl_dataset`."""
    header, rows = _read_lines(path, "crawl")
    if header.get("layout") == LAYOUT_COLUMNAR:
        sections = _columnar_sections(
            path, rows, ("pools", "reports", "observations")
        )
        dataset = CrawlDataset(table=_table_from_sections(path, sections))
        _check_declared_count(path, header, "reports", len(dataset))
        return dataset
    dataset = CrawlDataset()
    for row in rows:
        dataset.add(report_from_dict(row))
    _check_declared_count(path, header, "reports", len(dataset))
    return dataset


# ----------------------------------------------------------------------
# Crowd dataset
# ----------------------------------------------------------------------
def _crowd_record_row(record: CheckRecord) -> dict:
    return {
        "user": record.user_id,
        "country": record.user_country,
        "day": record.day_index,
        "domain": record.domain,
        "url": record.url,
        "user_amount": record.outcome.user_amount,
        "user_currency": record.outcome.user_currency,
        "failure": record.outcome.failure,
        "report": (
            report_to_dict(record.report) if record.report else None
        ),
    }


def save_crowd_dataset(
    dataset: CrowdDataset,
    path: Union[str, Path],
    *,
    seed: Optional[int] = None,
    columnar: bool = False,
) -> int:
    """Write a crowd dataset; returns the number of data lines written."""
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": "crowd",
        "layout": LAYOUT_COLUMNAR if columnar else LAYOUT_ROWS,
        "records": len(dataset),
        "seed": seed,
    }
    if columnar:
        pools, reports, observations = dataset.table.to_columns()
        records = dataset.record_columns()
        pools = dict(pools, **records.pop("pools"))
        return _write_lines(
            path, header,
            ({"pools": pools}, {"reports": reports},
             {"observations": observations}, {"records": records}),
        )
    return _write_lines(
        path, header, (_crowd_record_row(record) for record in dataset.records)
    )


def load_crowd_dataset(path: Union[str, Path]) -> CrowdDataset:
    """Read a crowd dataset written by :func:`save_crowd_dataset`."""
    header, rows = _read_lines(path, "crowd")
    if header.get("layout") == LAYOUT_COLUMNAR:
        sections = _columnar_sections(
            path, rows, ("pools", "reports", "observations", "records")
        )
        table = _table_from_sections(path, sections[:3])
        try:
            dataset = CrowdDataset.from_columns(table, sections[0], sections[3])
        except ValueError as exc:
            raise DatasetFormatError(f"{path}: {exc}") from exc
        _check_declared_count(path, header, "records", len(dataset))
        return dataset
    dataset = CrowdDataset()
    for row in rows:
        try:
            outcome = CheckOutcome(
                url=row["url"],
                user=row["user"],
                report=(
                    report_from_dict(row["report"]) if row.get("report") else None
                ),
                user_amount=row.get("user_amount"),
                user_currency=row.get("user_currency"),
                failure=row.get("failure", ""),
            )
            dataset.add(
                CheckRecord(
                    user_id=row["user"],
                    user_country=row["country"],
                    day_index=int(row["day"]),
                    domain=row["domain"],
                    url=row["url"],
                    outcome=outcome,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetFormatError(f"bad crowd record: {exc}") from exc
    _check_declared_count(path, header, "records", len(dataset))
    return dataset
