"""§4.4 third-party presence census over the page archive."""

from __future__ import annotations

from repro.analysis.thirdparty import tracker_presence
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

#: The paper's reported presence, as fractions.
PAPER_PRESENCE = {
    "Google Analytics": 0.95,
    "DoubleClick": 0.65,
    "Facebook": 0.80,
    "Pinterest": 0.45,
    "Twitter": 0.40,
}


def run(ctx: ExperimentContext) -> FigureResult:
    """Produce the §4.4 third-party presence census."""
    result = FigureResult(
        figure_id="TAB-3P",
        title="Third parties present on the studied retailers (§4.4)",
        paper_claim=(
            "Google analytics 95% / DoubleClick 65% / Facebook 80% / "
            "Pinterest 45% / Twitter 40%"
        ),
        columns=("third_party", "paper", "measured"),
    )
    _ = ctx.crawl  # ensure pages are archived
    # Survey the named retailers (the shops the paper studies), using the
    # pages $heriff actually archived.
    named = [d for d in ctx.backend.store.domains() if d in ctx.world.retailers
             and d not in ctx.world.long_tail]
    census = tracker_presence(ctx.backend.store, domains=named)
    for name, paper_value in PAPER_PRESENCE.items():
        result.add_row(name, paper_value, census.fraction(name))

    result.check("surveyed a meaningful retailer sample", census.n_domains >= 10)
    for name, paper_value in PAPER_PRESENCE.items():
        measured = census.fraction(name)
        result.check(
            f"{name} within 0.25 of the paper's rate",
            abs(measured - paper_value) <= 0.25,
        )
    result.check(
        "presence ordering: GA heaviest, Twitter lightest",
        census.fraction("Google Analytics")
        >= max(census.fraction("Twitter"), census.fraction("Pinterest")),
    )
    result.notes.append(f"{census.n_domains} retailer domains surveyed")
    return result
