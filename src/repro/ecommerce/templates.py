"""Per-retailer HTML page templates.

The paper's challenge §2.2(i): "Different retailers have different web
templates ... a simple search for dollar or euro sign would fail since
typically product pages include additional recommended or advertised
products along with their prices."

So templates here are adversarial on purpose:

* four structurally different families (id-anchored, class-anchored,
  table-based, boutique) -- a selector that works on one fails on others;
* every page carries 4+ *decoy prices* (recommended products, sometimes
  using the same class as the real price), so naive regex extraction is
  wrong more often than right;
* promo banners whose count varies between renders, shifting structural
  node paths while leaving semantic anchors intact.

Templates build :mod:`repro.htmlmodel` DOM trees; the retailer server
serializes them to text for the wire.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Protocol, Sequence

from repro.ecommerce.catalog import Product
from repro.ecommerce.localization import Locale
from repro.ecommerce.thirdparty import ThirdParty
from repro.htmlmodel.build import E, T, document
from repro.htmlmodel.dom import Document, Element
from repro.util import stable_hash, stable_rng

__all__ = [
    "ProductView",
    "PageTemplate",
    "ClassicTemplate",
    "GridTemplate",
    "TableTemplate",
    "BoutiqueTemplate",
    "TEMPLATE_FAMILIES",
    "template_for",
    "selector_on_day",
    "render_index_page",
]


@dataclass(frozen=True)
class ProductView:
    """Everything a template needs to render one product page.

    ``day_index`` is the server-side request day.  Static template
    families ignore it (their structure only varies through
    ``structural_seed``, which already folds the day in); day-aware
    templates -- the scenario layer's churning template that swaps
    families between days -- dispatch on it.
    """

    retailer_name: str
    domain: str
    product: Product
    price_text: str
    locale: Locale
    recommended: Sequence[tuple[Product, str]] = ()
    trackers: Sequence[ThirdParty] = ()
    structural_seed: int = 0
    logged_in_user: Optional[str] = None
    day_index: int = 0


class PageTemplate(Protocol):
    """A renderer from :class:`ProductView` to a DOM document."""

    name: str
    #: The selector that *would* robustly locate the price on this
    #: template.  Never consumed by $heriff (which derives selectors from
    #: the highlighted node); used by tests as ground truth.
    price_selector: str

    def render(self, view: ProductView) -> Document:  # pragma: no cover
        """Render one product page for ``view``."""
        ...


# ----------------------------------------------------------------------
# Shared chrome
# ----------------------------------------------------------------------
_NAV_SECTIONS = ("New In", "Bestsellers", "Sale", "Gift Cards", "Stores", "Help")


def _head(view: ProductView) -> Element:
    head = E("head", None,
             E("meta", {"charset": "utf-8"}),
             E("title", None, f"{view.product.name} | {view.retailer_name}"))
    for tracker in view.trackers:
        head.append(E("script", {"src": tracker.script_url(), "async": ""}))
    return head


def _nav(view: ProductView) -> Element:
    nav = E("nav", {"class": "site-nav"})
    ul = E("ul", {"class": "nav-list"})
    for section in _NAV_SECTIONS:
        slug = section.lower().replace(" ", "-")
        ul.append(E("li", {"class": "nav-item"},
                    E("a", {"href": f"/c/{slug}"}, section)))
    nav.append(ul)
    return nav


def _header(view: ProductView) -> Element:
    header = E("header", {"class": "site-header"},
               E("a", {"href": "/", "class": "logo"}, view.retailer_name))
    if view.logged_in_user:
        header.append(E("span", {"class": "account"},
                        f"Hello, {view.logged_in_user}"))
    else:
        header.append(E("a", {"href": "/login", "class": "account"}, "Sign in"))
    header.append(_nav(view))
    return header


def _breadcrumbs(view: ProductView) -> Element:
    return E("div", {"class": "breadcrumbs"},
             E("a", {"href": "/"}, "Home"), T(" / "),
             E("a", {"href": f"/c/{view.product.category}"},
               view.product.category.replace("-", " ").title()),
             T(" / "),
             E("span", {"class": "crumb-current"}, view.product.name))


def _promo_banners(view: ProductView) -> list[Element]:
    """0-3 promo banners; the count varies with the structural seed.

    This is the structural-instability noise: node paths recorded on one
    render shift on another, while id/class anchors survive.
    """
    rng = stable_rng(view.structural_seed, view.domain, "banners")
    count = rng.randint(0, 3)
    banners = []
    slogans = ("Free returns within 30 days", "Sign up for 10% off",
               "New season arrivals", "Members save more")
    for index in range(count):
        banners.append(E("div", {"class": "promo-banner"},
                         slogans[(index + rng.randint(0, 3)) % len(slogans)]))
    return banners


def _recommendations(view: ProductView, *, price_class: str) -> Element:
    """The decoy block: sibling products with visible prices."""
    section = E("section", {"class": "recommendations"},
                E("h3", None, "Customers also viewed"))
    grid = E("div", {"class": "reco-grid"})
    for product, price_text in view.recommended:
        grid.append(
            E("div", {"class": "reco-card"},
              E("a", {"href": product.path, "class": "reco-link"}, product.name),
              E("span", {"class": price_class}, price_text))
        )
    section.append(grid)
    return section


def _footer(view: ProductView) -> Element:
    footer = E("footer", {"class": "site-footer"},
               E("p", None, f"© 2013 {view.retailer_name}. All prices as displayed."))
    for tracker in view.trackers:
        if tracker.kind == "social":
            footer.append(E("div", {"class": f"widget widget-{tracker.name.lower()}",
                                    "data-src": tracker.domain}))
    return footer


def _page(view: ProductView, *body_children: Element) -> Document:
    body = E("body", {"class": "product-page"})
    body.append(_header(view))
    for banner in _promo_banners(view):
        body.append(banner)
    for child in body_children:
        body.append(child)
    body.append(_footer(view))
    return document(E("html", {"lang": view.locale.code}, _head(view), body))


# ----------------------------------------------------------------------
# Template families
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ClassicTemplate:
    """Id-anchored mainstream template.

    The real price carries ``id="product-price"`` -- but the decoy prices
    share its ``price`` class, so class-only extraction grabs the wrong
    node ~4 times out of 5.
    """

    name: str = "classic"
    price_selector: str = "#product-price"

    def render(self, view: ProductView) -> Document:
        """Render one product page for ``view``."""
        product = view.product
        main = E("div", {"id": "product", "class": "product-detail"},
                 _breadcrumbs(view),
                 E("h1", {"class": "product-title"}, product.name),
                 E("div", {"class": "sku-line"}, f"Item {product.sku}"),
                 E("div", {"class": "price-box"},
                   E("span", {"class": "price-label"}, "Price:"),
                   E("span", {"id": "product-price", "class": "price"},
                     view.price_text)),
                 E("button", {"class": "add-to-cart"}, "Add to cart"),
                 E("div", {"class": "product-description"},
                   f"The {product.name} is part of our "
                   f"{product.category.replace('-', ' ')} range."))
        return _page(view, main, _recommendations(view, price_class="price"))


@dataclass(frozen=True)
class GridTemplate:
    """Class-anchored template with no ids anywhere."""

    name: str = "grid"
    price_selector: str = "div.product-main div.price-box span.value"

    def render(self, view: ProductView) -> Document:
        """Render one product page for ``view``."""
        product = view.product
        main = E("div", {"class": "product-main"},
                 _breadcrumbs(view),
                 E("div", {"class": "gallery"},
                   E("img", {"src": f"/img/{product.sku}.jpg",
                             "alt": product.name})),
                 E("div", {"class": "info-column"},
                   E("h2", {"class": "title"}, product.name),
                   E("div", {"class": "price-box"},
                     E("span", {"class": "currency-note"},
                       view.locale.currency.code),
                     E("span", {"class": "value"}, view.price_text)),
                   E("span", {"class": "availability in-stock"}, "In stock"),
                   E("button", {"class": "buy"}, "Buy now")))
        return _page(view, main, _recommendations(view, price_class="reco-price"))


@dataclass(frozen=True)
class TableTemplate:
    """Old-school table layout (several of the paper's niche .it shops)."""

    name: str = "table"
    price_selector: str = "table.product-table td.prc"

    def render(self, view: ProductView) -> Document:
        """Render one product page for ``view``."""
        product = view.product
        table = E("table", {"class": "product-table"},
                  E("tr", None,
                    E("td", {"class": "lbl"}, "Article"),
                    E("td", {"class": "val"}, product.name)),
                  E("tr", None,
                    E("td", {"class": "lbl"}, "Code"),
                    E("td", {"class": "val"}, product.sku)),
                  E("tr", None,
                    E("td", {"class": "lbl"}, "Price"),
                    E("td", {"class": "prc"}, view.price_text)),
                  E("tr", None,
                    E("td", {"class": "lbl"}, "Shipping"),
                    E("td", {"class": "val"}, "calculated at checkout")))
        main = E("div", {"class": "content"},
                 _breadcrumbs(view),
                 E("h1", None, product.name),
                 table,
                 E("form", {"action": "/cart", "method": "post"},
                   E("input", {"type": "submit", "value": "Order"})))
        return _page(view, main, _recommendations(view, price_class="prc"))


@dataclass(frozen=True)
class BoutiqueTemplate:
    """Minimalist boutique template; price in a bare paragraph."""

    name: str = "boutique"
    price_selector: str = "article.product p.item-price"

    def render(self, view: ProductView) -> Document:
        """Render one product page for ``view``."""
        product = view.product
        article = E("article", {"class": "product"},
                    E("h1", {"class": "item-name"}, product.name),
                    E("p", {"class": "item-ref"}, f"Ref. {product.sku}"),
                    E("p", {"class": "item-price"}, view.price_text),
                    E("p", {"class": "item-note"},
                      "Taxes included where applicable. Shipping not included."),
                    E("a", {"href": "/cart", "class": "order-link"}, "Order"))
        return _page(view, _breadcrumbs(view), article,
                     _recommendations(view, price_class="item-price"))


TEMPLATE_FAMILIES: tuple[PageTemplate, ...] = (
    ClassicTemplate(),
    GridTemplate(),
    TableTemplate(),
    BoutiqueTemplate(),
)


def template_for(domain: str, *, seed: int = 0) -> PageTemplate:
    """Deterministically assign a template family to a retailer domain."""
    index = stable_hash(seed, domain, "template") % len(TEMPLATE_FAMILIES)
    return TEMPLATE_FAMILIES[index]


def selector_on_day(template: PageTemplate, day_index: int) -> str:
    """The ground-truth price selector ``template`` serves on a day.

    Static families answer their ``price_selector``; day-aware templates
    (the scenario layer's churning template swaps families between days)
    expose ``selector_for_day`` and are dispatched through it.  Every
    stand-in for human eyes -- the crawl operator's anchor step, a crowd
    user's highlight -- goes through this one helper so it cannot pin a
    churning retailer to its day-0 structure.
    """
    chooser = getattr(template, "selector_for_day", None)
    if chooser is not None:
        return chooser(day_index)
    return template.price_selector


# ----------------------------------------------------------------------
# Checkout page (§2.2: shipping/tax revealed only at checkout)
# ----------------------------------------------------------------------
def render_checkout_page(
    retailer_name: str,
    product: Product,
    *,
    item_text: str,
    shipping_text: str,
    tax_text: str,
    total_text: str,
    locale: Locale,
) -> Document:
    """The itemized checkout quote the attribution analysis scrapes.

    The line classes (``td.line-label`` / ``td.line-value`` with a
    ``data-line`` tag) are stable across retailers -- checkout flows are
    far less template-diverse than product pages, which is also true of
    the real web the paper measured.
    """

    def line(name: str, label: str, value: str) -> Element:
        return E("tr", {"class": "quote-line", "data-line": name},
                 E("td", {"class": "line-label"}, label),
                 E("td", {"class": "line-value"}, value))

    table = E("table", {"class": "checkout-summary"},
              line("item", "Item", item_text),
              line("shipping", "Shipping", shipping_text),
              line("tax", "Tax / VAT", tax_text),
              line("total", "Order total", total_text))
    body = E("body", {"class": "checkout-page"},
             E("h1", None, f"{retailer_name} — checkout"),
             E("p", {"class": "checkout-item"}, product.name),
             table,
             E("p", {"class": "checkout-note"},
               "Duties, if any, are settled with your customs authority."))
    head = E("head", None,
             E("meta", {"charset": "utf-8"}),
             E("title", None, f"Checkout | {retailer_name}"))
    return document(E("html", {"lang": locale.code}, head, body))


# ----------------------------------------------------------------------
# Index page (crawler discovery)
# ----------------------------------------------------------------------
def render_index_page(
    retailer_name: str,
    domain: str,
    products: Sequence[Product],
    *,
    locale: Locale,
) -> Document:
    """The site's catalog listing: product links without prices.

    The crawler uses this page to discover product URLs, the way the
    authors seeded their crawl from site maps and category listings.
    """
    listing = E("ul", {"class": "catalog-list"})
    for product in products:
        listing.append(E("li", {"class": "catalog-item"},
                         E("a", {"href": product.path}, product.name)))
    body = E("body", {"class": "index-page"},
             E("header", {"class": "site-header"},
               E("a", {"href": "/", "class": "logo"}, retailer_name)),
             E("h1", None, f"{retailer_name} catalog"),
             listing,
             E("footer", {"class": "site-footer"}, f"© 2013 {retailer_name}"))
    head = E("head", None,
             E("meta", {"charset": "utf-8"}),
             E("title", None, f"{retailer_name} — catalog"))
    return document(E("html", {"lang": locale.code}, head, body))
