"""Template rendering and retailer server tests."""

from __future__ import annotations

import pytest

from repro.ecommerce.catalog import generate_catalog
from repro.ecommerce.localization import LOCALES, parse_price
from repro.ecommerce.pricing import GeoMultiplicative, UniformPricing
from repro.ecommerce.retailer import Retailer, RetailerServer
from repro.ecommerce.templates import (
    TEMPLATE_FAMILIES,
    ProductView,
    render_index_page,
    template_for,
)
from repro.ecommerce.thirdparty import TRACKER_CENSUS, trackers_for_retailer
from repro.fx.rates import RateService
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import Selector, select, select_one
from repro.htmlmodel.serialize import to_html
from repro.net.geoip import IPAddressPlan
from repro.net.http import Headers, HttpRequest, HttpStatus
from repro.net.urls import URL


def make_view(template_seed: int = 0, **overrides) -> ProductView:
    catalog = generate_catalog("shop.example", "clothing", 6, seed=1)
    product = catalog.products[0]
    recommended = [(p, f"${p.base_price_usd:.2f}") for p in catalog.products[1:5]]
    defaults = dict(
        retailer_name="Test Shop",
        domain="shop.example",
        product=product,
        price_text="$19.99",
        locale=LOCALES["US"],
        recommended=recommended,
        trackers=TRACKER_CENSUS[:2],
        structural_seed=template_seed,
    )
    defaults.update(overrides)
    return ProductView(**defaults)


class TestTemplates:
    @pytest.mark.parametrize("template", TEMPLATE_FAMILIES, ids=lambda t: t.name)
    def test_price_selector_finds_the_price(self, template):
        doc = template.render(make_view())
        element = select_one(doc, template.price_selector)
        assert element is not None
        assert element.text(strip=True) == "$19.99"

    @pytest.mark.parametrize("template", TEMPLATE_FAMILIES, ids=lambda t: t.name)
    def test_price_selector_unique(self, template):
        doc = template.render(make_view())
        assert len(select(doc, template.price_selector)) == 1

    @pytest.mark.parametrize("template", TEMPLATE_FAMILIES, ids=lambda t: t.name)
    def test_decoy_prices_present(self, template):
        """Every template buries the real price among recommendations."""
        doc = template.render(make_view())
        text = doc.text()
        assert text.count("$") >= 5  # product price + 4 decoys

    @pytest.mark.parametrize("template", TEMPLATE_FAMILIES, ids=lambda t: t.name)
    def test_tracker_scripts_embedded(self, template):
        doc = template.render(make_view())
        scripts = [e.get("src") for e in doc.iter_elements() if e.tag == "script"]
        assert any("google-analytics" in (s or "") for s in scripts)

    def test_structural_seed_changes_banners(self):
        template = TEMPLATE_FAMILIES[0]
        sizes = set()
        for seed in range(12):
            doc = template.render(make_view(template_seed=seed))
            banners = select(doc, "div.promo-banner")
            sizes.add(len(banners))
        assert len(sizes) > 1  # structure actually shifts between renders

    def test_login_state_rendered(self):
        template = TEMPLATE_FAMILIES[0]
        doc = template.render(make_view(logged_in_user="alice"))
        assert "alice" in doc.text()
        anon = template.render(make_view())
        assert "Sign in" in anon.text()

    def test_template_assignment_deterministic(self):
        assert template_for("www.amazon.com").name == template_for("www.amazon.com").name
        names = {template_for(f"shop{i}.example").name for i in range(40)}
        assert len(names) == len(TEMPLATE_FAMILIES)

    def test_index_page_lists_products(self):
        catalog = generate_catalog("shop.example", "books", 7, seed=1)
        doc = render_index_page(
            "Test", "shop.example", catalog.products, locale=LOCALES["US"]
        )
        links = select(doc, "ul.catalog-list a")
        assert len(links) == 7
        assert all(link.get("href", "").startswith("/") for link in links)


@pytest.fixture()
def server() -> RetailerServer:
    plan = IPAddressPlan()
    catalog = generate_catalog("shop.example", "clothing", 8, seed=3)
    retailer = Retailer(
        domain="shop.example",
        name="Test Shop",
        category="clothing",
        catalog=catalog,
        policy=GeoMultiplicative(table={"FI": 1.25, "US": 1.0}, default=1.1),
        template=TEMPLATE_FAMILIES[0],
        trackers=trackers_for_retailer("shop.example"),
        supports_login=True,
    )
    return RetailerServer(
        retailer, geoip=plan.database(), rates=RateService(), seed=1
    )


def request_from(server, path: str, country: str = "US", *, cookies: str = "",
                 timestamp: float = 0.0) -> HttpRequest:
    plan = IPAddressPlan()
    headers = Headers()
    if cookies:
        headers.set("Cookie", cookies)
    return HttpRequest(
        method="GET",
        url=URL.parse(f"http://shop.example{path}"),
        headers=headers,
        client_ip=plan.allocate(country),
        timestamp=timestamp,
    )


class TestRetailerServer:
    def test_product_page_ok(self, server):
        item = server.retailer.catalog.products[0]
        response = server.handle(request_from(server, item.path))
        assert response.status == HttpStatus.OK
        assert item.name in response.body

    def test_unknown_path_404(self, server):
        response = server.handle(request_from(server, "/nope"))
        assert response.status == HttpStatus.NOT_FOUND

    def test_us_client_sees_usd(self, server):
        item = server.retailer.catalog.products[0]
        response = server.handle(request_from(server, item.path, "US"))
        doc = parse_html(response.body)
        price = select_one(doc, "#product-price").text()
        assert parse_price(price).currency == "USD"

    def test_fi_client_sees_eur_and_premium(self, server):
        item = server.retailer.catalog.products[0]
        us = server.handle(request_from(server, item.path, "US"))
        fi = server.handle(request_from(server, item.path, "FI"))
        us_price = parse_price(select_one(parse_html(us.body), "#product-price").text())
        fi_price = parse_price(select_one(parse_html(fi.body), "#product-price").text())
        assert us_price.currency == "USD"
        assert fi_price.currency == "EUR"
        rate = RateService().rate("EUR", 0).mid
        assert fi_price.amount * rate == pytest.approx(us_price.amount * 1.25, rel=0.01)

    def test_session_cookie_set_once(self, server):
        item = server.retailer.catalog.products[0]
        first = server.handle(request_from(server, item.path))
        assert any(c.name == "session" for c in first.set_cookies)
        again = server.handle(
            request_from(server, item.path, cookies="session=s123")
        )
        assert not any(c.name == "session" for c in again.set_cookies)

    def test_index_lists_catalog(self, server):
        response = server.handle(request_from(server, "/"))
        doc = parse_html(response.body)
        links = select(doc, "ul.catalog-list a")
        assert len(links) == len(server.retailer.catalog)

    def test_login_flow(self, server):
        response = server.handle(request_from(server, "/login?user=alice"))
        assert response.status.is_redirect
        assert any(
            c.name == "auth" and c.value == "alice" for c in response.set_cookies
        )

    def test_login_form_without_user(self, server):
        response = server.handle(request_from(server, "/login"))
        assert response.ok
        assert "form" in response.body

    def test_login_rejected_when_unsupported(self):
        plan = IPAddressPlan()
        retailer = Retailer(
            domain="s.x", name="S", category="books",
            catalog=generate_catalog("s.x", "books", 2, seed=1),
            policy=UniformPricing(), template=TEMPLATE_FAMILIES[1],
        )
        server = RetailerServer(retailer, geoip=plan.database(), rates=RateService())
        response = server.handle(request_from(server, "/login?user=x"))
        assert response.status == HttpStatus.NOT_FOUND

    def test_non_localizing_retailer_always_home_currency(self):
        plan = IPAddressPlan()
        retailer = Retailer(
            domain="us-only.example", name="US Only", category="books",
            catalog=generate_catalog("us-only.example", "books", 2, seed=1),
            policy=UniformPricing(), template=TEMPLATE_FAMILIES[0],
            localizes_currency=False, home_country="US",
        )
        server = RetailerServer(retailer, geoip=plan.database(), rates=RateService())
        item = retailer.catalog.products[0]
        headers = Headers()
        request = HttpRequest(
            method="GET", url=URL.parse(f"http://us-only.example{item.path}"),
            headers=headers, client_ip=plan.allocate("FI"),
        )
        response = server.handle(request)
        price = select_one(parse_html(response.body), "#product-price").text()
        assert parse_price(price).currency == "USD"

    def test_unknown_client_ip_defaults_home(self, server):
        item = server.retailer.catalog.products[0]
        request = HttpRequest(
            method="GET", url=URL.parse(f"http://shop.example{item.path}"),
            headers=Headers(), client_ip="1.2.3.4",
        )
        response = server.handle(request)
        assert response.ok

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError):
            Retailer(
                domain="bad/domain", name="X", category="books",
                catalog=generate_catalog("x", "books", 1, seed=1),
                policy=UniformPricing(), template=TEMPLATE_FAMILIES[0],
            )
