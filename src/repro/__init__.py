"""repro: a reproduction of Mikians et al., "Crowd-assisted Search for
Price Discrimination in E-Commerce: First results" (CoNEXT 2013).

The package implements the paper's full measurement system -- the $heriff
browser extension + backend (:mod:`repro.core`), the crowdsourcing campaign
(:mod:`repro.crowd`), the systematic crawler (:mod:`repro.crawler`), the
sharded execution engine that fans batches across workers with
byte-identical output (:mod:`repro.exec`) and the analysis pipeline
(:mod:`repro.analysis`) -- plus every substrate it needs, built from
scratch: an HTML document model (:mod:`repro.htmlmodel`), a simulated
network with geo-IP and vantage points (:mod:`repro.net`), an FX rate
service (:mod:`repro.fx`) and a calibrated population of e-commerce sites
(:mod:`repro.ecommerce`).

The docs tree is the project's contract: ``docs/ARCHITECTURE.md`` (layers,
data flow, determinism rules), ``docs/API.md`` (the supported surface,
machine-checked), ``docs/EXAMPLES.md``, ``docs/PERFORMANCE.md``.

Quickstart::

    from repro.ecommerce import build_world, WorldConfig
    from repro.core import SheriffBackend, SheriffExtension

    world = build_world(WorldConfig(catalog_scale=0.25, long_tail_domains=40))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)

See ``examples/quickstart.py`` for the full user flow and
:mod:`repro.experiments` for the figure reproductions.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
