"""Columnar report store: the dataset spine.

* :mod:`repro.store.table` -- :class:`ReportTable` (parallel primitive
  columns + interned string pools + prefix-indexed observations),
  :class:`TableSlice` (lazy ``Sequence[PriceCheckReport]`` view), and
  :func:`as_table_slice` (the analysis layer's kernel-dispatch hook).

Both measurement datasets (:class:`repro.crawler.records.CrawlDataset`
and :class:`repro.crowd.dataset.CrowdDataset`) are thin views over a
:class:`ReportTable`; the table is built once at merge time and queried
everywhere after -- see ``docs/ARCHITECTURE.md`` ("Dataset spine").
"""

from repro.store.table import ReportTable, StringPool, TableSlice, as_table_slice

__all__ = ["ReportTable", "StringPool", "TableSlice", "as_table_slice"]
