"""Personal information and prices (paper §4.4, Fig. 10).

Two controlled studies at a fixed location and time:

1. Kindle ebook prices on amazon.com for three logged-in accounts vs the
   logged-out state -- prices differ per product with no systematic
   logged-in premium, reproducing Fig. 10.
2. Affluent vs budget-conscious personas (trained browsing histories) --
   no price differences at all, reproducing the paper's null result.

Run:  python examples/kindle_login_study.py
"""

from __future__ import annotations

import statistics

from repro.analysis.personal import login_experiment, persona_experiment
from repro.ecommerce import WorldConfig, build_world


def main() -> None:
    world = build_world(WorldConfig(catalog_scale=0.5, long_tail_domains=0))

    print("Fig. 10 -- Kindle ebook prices by login identity\n")
    study = login_experiment(world, n_products=20)
    identities = list(study.series)
    header = "product".ljust(10) + "".join(i.rjust(12) for i in identities)
    print(header)
    print("-" * len(header))
    for index, url in enumerate(study.product_urls):
        sku = url.rsplit("/", 1)[-1].replace(".html", "")
        row = sku[-8:].ljust(10)
        for identity in identities:
            value = study.series[identity][index]
            row += (f"${value:.2f}" if value is not None else "n/a").rjust(12)
        print(row)

    print()
    for identity in identities:
        values = [v for v in study.series[identity] if v is not None]
        print(f"mean price for {identity:10s}: ${statistics.fmean(values):.2f}")
    differing = study.products_with_identity_differences()
    print(
        f"\n{differing}/{len(study.product_urls)} ebooks priced differently "
        f"across identities; no identity is consistently cheapest -- matching "
        f"the paper's 'little correlation to being logged in or not'."
    )

    print("\nPersona study -- affluent vs budget-conscious (same location/time)\n")
    comparisons = persona_experiment(
        world, domains=world.crawled_domains[:8], products_per_domain=3
    )
    differences = [c for c in comparisons if c.differs]
    print(f"checked {len(comparisons)} products on 8 retailers")
    print(f"price differences attributable to the persona: {len(differences)}")
    if not differences:
        print("-> the paper's §4.4 null result reproduces: browsing-history "
              "personas do not move prices on these retailers.")


if __name__ == "__main__":
    main()
