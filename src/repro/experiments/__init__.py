"""Experiment harness: one module per paper figure/table.

Each ``figNN_*`` module exposes ``run(ctx) -> FigureResult`` where ``ctx``
is an :class:`~repro.experiments.context.ExperimentContext` holding the
shared world, crowdsourced dataset and crawl.  ``repro.experiments.runner``
executes everything and renders the paper-vs-measured report that feeds
EXPERIMENTS.md.

Scales (``REPRO_SCALE`` environment variable or explicit argument):

* ``tiny``  -- smoke-test scale, seconds,
* ``quick`` -- the default: every figure's shape is checkable, ~2 min,
* ``paper`` -- the paper's full workload (1500 crowd checks, 21 retailers
  x 100 products x 7 days x 14 vantage points, ~190K extracted prices).
"""

from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext, ExperimentScale, get_context

__all__ = ["ExperimentContext", "ExperimentScale", "FigureResult", "get_context"]
