"""Shared experiment context: build once, analyze many times.

Every figure consumes the same two datasets the paper built -- the
crowdsourced beta collection and the systematic crawl -- so the context
constructs them lazily and caches them.  All stochastic stages flow from
one seed; a context at a given (scale, seed) is bit-for-bit reproducible.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from repro.analysis.cleaning import CleanResult, clean_reports
from repro.core.backend import SheriffBackend
from repro.crawler import CrawlConfig, CrawlPlan, build_plan, run_crawl
from repro.crawler.records import CrawlDataset
from repro.crowd import CampaignConfig, CrowdDataset, run_campaign
from repro.ecommerce.world import World, WorldConfig, build_world

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.exec import ExecConfig

__all__ = ["ExperimentScale", "ExperimentContext", "get_context", "SCALES"]


@dataclass(frozen=True)
class ExperimentScale:
    """All scale knobs in one place."""

    name: str
    catalog_scale: float
    long_tail_domains: int
    crowd_checks: int
    crowd_population: int
    crawl_products: int
    crawl_days: int

    def world_config(self, seed: int) -> WorldConfig:
        """The world-construction knobs at this scale."""
        return WorldConfig(
            seed=seed,
            catalog_scale=self.catalog_scale,
            long_tail_domains=self.long_tail_domains,
        )

    def campaign_config(self, seed: int) -> CampaignConfig:
        """The crowd-campaign knobs at this scale."""
        return CampaignConfig(
            n_checks=self.crowd_checks,
            population_size=self.crowd_population,
            seed=seed,
        )

    def crawl_config(self) -> CrawlConfig:
        """The crawl-window knobs at this scale."""
        return CrawlConfig(days=self.crawl_days)


SCALES: dict[str, ExperimentScale] = {
    "tiny": ExperimentScale(
        name="tiny", catalog_scale=0.15, long_tail_domains=25,
        crowd_checks=120, crowd_population=60,
        crawl_products=8, crawl_days=2,
    ),
    "quick": ExperimentScale(
        name="quick", catalog_scale=0.35, long_tail_domains=120,
        crowd_checks=420, crowd_population=200,
        crawl_products=22, crawl_days=3,
    ),
    "paper": ExperimentScale(
        name="paper", catalog_scale=1.0, long_tail_domains=800,
        crowd_checks=1500, crowd_population=340,
        crawl_products=100, crawl_days=7,
    ),
}


class ExperimentContext:
    """Lazily-built shared state for all figure experiments.

    ``exec_config`` shards the campaign and crawl fan-outs across workers
    (``repro.exec``); datasets are byte-identical at any worker count,
    under either shard planner, so the figures cannot depend on it.  An
    auto config (``workers=0`` / ``mode="auto"``) is resolved against
    this context's world when each executor is created.

    ``checkpoint_dir`` makes the dataset builds kill-safe: the campaign
    checkpoints into ``<dir>/campaign`` and the crawl into ``<dir>/crawl``
    (:mod:`repro.checkpoint`); ``resume=True`` continues interrupted
    builds from their last committed day.
    """

    def __init__(
        self,
        scale: ExperimentScale | str = "quick",
        *,
        seed: int = 2013,
        exec_config: Optional["ExecConfig"] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
    ) -> None:
        if isinstance(scale, str):
            try:
                scale = SCALES[scale]
            except KeyError:
                raise KeyError(
                    f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
                ) from None
        self.scale = scale
        self.seed = seed
        self.exec_config = exec_config
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )
        self.resume = resume
        self._world: Optional[World] = None
        self._backend: Optional[SheriffBackend] = None
        self._crowd: Optional[CrowdDataset] = None
        self._plan: Optional[CrawlPlan] = None
        self._crawl: Optional[CrawlDataset] = None
        self._crawl_clean: Optional[CleanResult] = None
        self._crowd_clean: Optional[CleanResult] = None

    # ------------------------------------------------------------------
    @property
    def world(self) -> World:
        if self._world is None:
            self._world = build_world(self.scale.world_config(self.seed))
        return self._world

    @property
    def backend(self) -> SheriffBackend:
        if self._backend is None:
            world = self.world
            self._backend = SheriffBackend(
                world.network, world.vantage_points, world.rates
            )
        return self._backend

    @property
    def crowd(self) -> CrowdDataset:
        """The crowdsourced dataset (runs the campaign on first use)."""
        if self._crowd is None:
            self._crowd = run_campaign(
                self.world,
                self.backend,
                self.scale.campaign_config(self.seed),
                exec_config=self.exec_config,
                checkpoint_dir=(
                    self.checkpoint_dir / "campaign"
                    if self.checkpoint_dir is not None
                    else None
                ),
                resume=self.resume,
            )
        return self._crowd

    @property
    def plan(self) -> CrawlPlan:
        if self._plan is None:
            self._plan = build_plan(
                self.world,
                domains=self.world.crawled_domains,
                products_per_retailer=self.scale.crawl_products,
                seed=self.seed,
            )
        return self._plan

    @property
    def crawl(self) -> CrawlDataset:
        """The crawled dataset (runs the crawl on first use)."""
        if self._crawl is None:
            # The crawl follows the crowd phase chronologically.
            _ = self.crowd
            self._crawl = run_crawl(
                self.world,
                self.backend,
                self.plan,
                self.scale.crawl_config(),
                exec_config=self.exec_config,
                checkpoint_dir=(
                    self.checkpoint_dir / "crawl"
                    if self.checkpoint_dir is not None
                    else None
                ),
                resume=self.resume,
            )
        return self._crawl

    # ------------------------------------------------------------------
    # Cleaned views (dataset-wide currency guard applied)
    # ------------------------------------------------------------------
    @property
    def crawl_clean(self) -> CleanResult:
        if self._crawl_clean is None:
            self._crawl_clean = clean_reports(self.crawl.reports, self.world.rates)
        return self._crawl_clean

    @property
    def crowd_clean(self) -> CleanResult:
        if self._crowd_clean is None:
            self._crowd_clean = clean_reports(
                self.crowd.reports(), self.world.rates
            )
        return self._crowd_clean


_CACHE: dict[tuple[str, int], ExperimentContext] = {}


def get_context(scale: Optional[str] = None, *, seed: int = 2013) -> ExperimentContext:
    """The process-wide shared context (``REPRO_SCALE`` selects the scale)."""
    name = scale or os.environ.get("REPRO_SCALE", "quick")
    key = (name, seed)
    if key not in _CACHE:
        _CACHE[key] = ExperimentContext(name, seed=seed)
    return _CACHE[key]
