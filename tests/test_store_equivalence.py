"""Columnar/list equivalence: every analysis kernel must return exactly
the same result over :class:`~repro.store.ReportTable` rows as the seed
list-based implementation does over the materialized dataclasses.

Property-style: a deterministic pseudo-random generator produces datasets
mixing multiple domains/products/days/currencies, failed observations,
``usd == 0.0`` edge cases and missing vantages; plus the named edge cases
the refactor must not regress (empty dataset, all-failed observations,
single domain).  For order-sensitive outputs (dicts feeding figure row
order, ``most_common`` tie-breaking) key *order* is asserted too, not
just dict equality.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.cleaning import clean_reports, dataset_guard, repeatable_products
from repro.analysis.extent import variation_extent
from repro.analysis.locations import (
    finland_profile,
    location_ratio_stats,
    pairwise_grid,
)
from repro.analysis.longitudinal import (
    daily_extent,
    extent_stability,
    product_persistence,
)
from repro.analysis.products import per_vantage_structure, ratio_vs_min_price
from repro.analysis.ratios import (
    domain_ratio_stats,
    domain_ratios,
    domain_variation_counts,
)
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.fx.rates import RateService
from repro.io import report_to_dict
from repro.store import ReportTable, TableSlice

VANTAGES = [
    ("USA - Boston", "US", "Boston"),
    ("Finland - Tampere", "FI", "Tampere"),
    ("UK - London", "GB", "London"),
    ("Brazil - Sao Paulo", "BR", "Sao Paulo"),
    ("Germany - Berlin", "DE", "Berlin"),
]
CURRENCIES = ["USD", "EUR", "GBP", "BRL", None]


def synthetic_reports(seed: int, n: int) -> list[PriceCheckReport]:
    rng = random.Random(seed)
    domains = [f"www.shop{d}.example" for d in range(rng.randint(1, 5))]
    reports = []
    for i in range(n):
        domain = rng.choice(domains)
        url = f"http://{domain}/p/{rng.randint(0, 6)}"
        day = rng.randint(150, 155)
        observations = []
        for vantage, country, city in VANTAGES:
            if rng.random() < 0.2:  # missing vantage
                continue
            if rng.random() < 0.15:  # failed fetch/extraction
                observations.append(VantageObservation(
                    vantage=vantage, country_code=country, city=city,
                    ok=False, error=rng.choice(["http 500", "timeout", "no price"]),
                ))
                continue
            usd = rng.choice([0.0, round(rng.uniform(5, 400), 2)])
            observations.append(VantageObservation(
                vantage=vantage, country_code=country, city=city, ok=True,
                raw_text=f"{usd:.2f}", amount=usd if rng.random() < 0.9 else None,
                currency=rng.choice(CURRENCIES), usd=usd, method="selector",
            ))
        reports.append(PriceCheckReport(
            check_id=f"chk{i:07d}",
            url=url,
            domain=domain,
            day_index=day,
            timestamp=day * 86400.0 + i,
            observations=observations,
            guard_threshold=round(rng.uniform(1.0, 1.2), 3),
            origin="crawler",
        ))
    return reports


def copies_and_slice(reports):
    """Two independent inputs over identical data: a plain dataclass list
    (the seed path) and a table slice (the columnar path)."""
    from repro.io import report_from_dict

    # Deep-copy through serialization so in-place guard mutation on one
    # path can never leak into the other.
    list_input = [report_from_dict(report_to_dict(r)) for r in reports]
    table = ReportTable()
    table.extend(reports)
    return list_input, TableSlice(table)


def ordered(d: dict) -> list:
    return list(d.items())


EDGE_CASES = {
    "empty": [],
    "all_failed": [
        PriceCheckReport(
            check_id=f"chk{i:07d}", url=f"http://only.example/p/{i}",
            domain="only.example", day_index=1, timestamp=86400.0 + i,
            observations=[VantageObservation(
                vantage=v, country_code=c, city=city, ok=False, error="down",
            ) for v, c, city in VANTAGES],
        )
        for i in range(4)
    ],
    "single_domain": None,  # filled below from the generator
}


def dataset_cases():
    cases = dict(EDGE_CASES)
    single = synthetic_reports(99, 60)
    cases["single_domain"] = [
        PriceCheckReport(
            check_id=r.check_id, url=r.url.replace(r.domain, "one.example"),
            domain="one.example", day_index=r.day_index, timestamp=r.timestamp,
            observations=r.observations, guard_threshold=r.guard_threshold,
        )
        for r in single
    ]
    for seed in (1, 2, 3):
        cases[f"random_{seed}"] = synthetic_reports(seed, 80)
    return cases


CASES = dataset_cases()


@pytest.fixture(params=sorted(CASES), name="case")
def case_fixture(request):
    return CASES[request.param]


class TestKernelEquivalence:
    def test_variation_extent(self, case):
        lst, sliced = copies_and_slice(case)
        assert ordered(variation_extent(lst)) == ordered(variation_extent(sliced))
        assert ordered(variation_extent(lst, min_reports=3)) == ordered(
            variation_extent(sliced, min_reports=3)
        )

    def test_domain_variation_counts(self, case):
        lst, sliced = copies_and_slice(case)
        a, b = domain_variation_counts(lst), domain_variation_counts(sliced)
        assert ordered(a) == ordered(b)
        assert a.most_common() == b.most_common()

    def test_domain_ratios_and_stats(self, case):
        lst, sliced = copies_and_slice(case)
        for only_variation in (False, True):
            assert ordered(domain_ratios(lst, only_variation=only_variation)) == \
                ordered(domain_ratios(sliced, only_variation=only_variation))
            assert ordered(
                domain_ratio_stats(lst, only_variation=only_variation)
            ) == ordered(domain_ratio_stats(sliced, only_variation=only_variation))

    def test_location_ratio_stats(self, case):
        lst, sliced = copies_and_slice(case)
        assert ordered(location_ratio_stats(lst)) == ordered(
            location_ratio_stats(sliced)
        )
        assert ordered(location_ratio_stats(lst, min_samples=4)) == ordered(
            location_ratio_stats(sliced, min_samples=4)
        )

    def test_finland_profile(self, case):
        lst, sliced = copies_and_slice(case)
        assert ordered(finland_profile(lst)) == ordered(finland_profile(sliced))
        assert ordered(
            finland_profile(lst, finland_vantage="UK - London")
        ) == ordered(finland_profile(sliced, finland_vantage="UK - London"))
        assert ordered(
            finland_profile(lst, finland_vantage="Nowhere - Nope")
        ) == ordered(finland_profile(sliced, finland_vantage="Nowhere - Nope"))

    def test_pairwise_grid(self, case):
        lst, sliced = copies_and_slice(case)
        domains = {r.domain for r in case} or {"only.example"}
        locations = ["USA - Boston", "Finland - Tampere", "UK - London"]
        for domain in sorted(domains):
            assert pairwise_grid(lst, domain, locations) == pairwise_grid(
                sliced, domain, locations
            )

    def test_daily_extent_and_stability(self, case):
        lst, sliced = copies_and_slice(case)
        a, b = daily_extent(lst), daily_extent(sliced)
        assert ordered(a) == ordered(b)
        assert [ordered(v) for v in a.values()] == [ordered(v) for v in b.values()]
        assert ordered(extent_stability(lst)) == ordered(extent_stability(sliced))

    def test_product_persistence(self, case):
        lst, sliced = copies_and_slice(case)
        assert ordered(product_persistence(lst)) == ordered(
            product_persistence(sliced)
        )

    def test_ratio_vs_min_price(self, case):
        lst, sliced = copies_and_slice(case)
        for only_variation in (False, True):
            assert ratio_vs_min_price(lst, only_variation=only_variation) == \
                ratio_vs_min_price(sliced, only_variation=only_variation)

    def test_per_vantage_structure(self, case):
        lst, sliced = copies_and_slice(case)
        domains = {r.domain for r in case} or {"only.example"}
        for domain in sorted(domains):
            assert per_vantage_structure(lst, domain) == per_vantage_structure(
                sliced, domain
            )
            assert per_vantage_structure(
                lst, domain, vantages=["USA - Boston", "UK - London"]
            ) == per_vantage_structure(
                sliced, domain, vantages=["USA - Boston", "UK - London"]
            )


class TestCleaningEquivalence:
    def test_dataset_guard(self, case):
        if not case:
            return
        lst, sliced = copies_and_slice(case)
        rates = RateService(seed=5)
        assert dataset_guard(rates, lst) == dataset_guard(rates, sliced)
        assert dataset_guard(rates, lst, margin=0.01) == dataset_guard(
            rates, sliced, margin=0.01
        )

    def test_repeatable_products(self, case):
        lst, sliced = copies_and_slice(case)
        assert repeatable_products(lst, guard=1.05) == repeatable_products(
            sliced, guard=1.05
        )

    def test_clean_reports(self, case):
        rates = RateService(seed=5)
        for kwargs in (
            {},
            {"min_points": 3},
            {"require_repeatable": True},
            {"guard_margin": 0.02},
        ):
            lst, sliced = copies_and_slice(case)
            a = clean_reports(lst, rates, **kwargs)
            b = clean_reports(sliced, rates, **kwargs)
            assert a.guard == b.guard
            assert a.dropped == b.dropped
            assert [report_to_dict(r) for r in a.kept] == [
                report_to_dict(r) for r in b.kept
            ]
            # The guard write must survive on the columnar path too.
            assert all(r.guard_threshold == b.guard for r in b.kept)

    def test_cleaned_slice_feeds_kernels(self, case):
        """The chained pipeline (clean -> figures) stays equivalent."""
        rates = RateService(seed=5)
        lst, sliced = copies_and_slice(case)
        a = clean_reports(lst, rates)
        b = clean_reports(sliced, rates)
        assert isinstance(b.kept, TableSlice)
        assert ordered(variation_extent(a.kept)) == ordered(variation_extent(b.kept))
        assert ordered(
            domain_ratio_stats(a.kept, only_variation=True)
        ) == ordered(domain_ratio_stats(b.kept, only_variation=True))
        assert ordered(location_ratio_stats(a.kept)) == ordered(
            location_ratio_stats(b.kept)
        )
