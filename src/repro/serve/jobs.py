"""Campaign jobs: durable specs, sequential ids, restart-safe registry.

A job is one crowd campaign run on behalf of a service client.  Its
*spec* (scale + seed + optional campaign overrides) is everything needed
to re-run it deterministically, so the registry persists exactly that --
``<root>/<job-id>/job.json`` -- next to the job's checkpoint directory
and its final ``results.jsonl``.  A terminal marker (``done.json``)
records the outcome; a job directory *without* the marker is by
definition incomplete, and a restarted service resumes it from its
checkpoint (:class:`~repro.serve.service.SheriffService` does, via
``run_campaign(..., resume=True)``).

Job ids are sequential (``job-000001``): deterministic across restarts,
sortable, and guessable by the crash-injection harness without parsing
responses.
"""

from __future__ import annotations

import dataclasses
import json
import os
import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.checkpoint.manifest import Manifest
from repro.crowd import CampaignConfig
from repro.ecommerce.world import WorldConfig
from repro.experiments.context import SCALES

__all__ = ["Job", "JobRegistry", "JobSpec"]

_ID = re.compile(r"^job-(\d{6})$")

#: Spec keys clients may override; everything else in CampaignConfig
#: (noise probabilities etc.) stays at the scale's defaults so a job is
#: fully described by a handful of integers.
_OVERRIDES = ("n_checks", "population_size", "start_day", "end_day")


@dataclass(frozen=True)
class JobSpec:
    """The deterministic description of one campaign job."""

    scale: str = "tiny"
    seed: int = 2013
    n_checks: Optional[int] = None
    population_size: Optional[int] = None
    start_day: Optional[int] = None
    end_day: Optional[int] = None

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        """Validate a client payload into a spec (``ValueError`` on junk)."""
        if not isinstance(payload, dict):
            raise ValueError("campaign spec must be a JSON object")
        allowed = {"scale", "seed", *_OVERRIDES}
        unknown = sorted(set(payload) - allowed)
        if unknown:
            raise ValueError(
                f"unknown campaign spec field(s) {unknown}; "
                f"allowed: {sorted(allowed)}"
            )
        scale = payload.get("scale", "tiny")
        if scale not in SCALES:
            raise ValueError(
                f"unknown scale {scale!r}; choose from {sorted(SCALES)}"
            )
        values = {"scale": scale}
        for field in ("seed", *_OVERRIDES):
            if field in payload:
                value = payload[field]
                if not isinstance(value, int) or isinstance(value, bool):
                    raise ValueError(f"{field} must be an integer")
                values[field] = value
        return cls(**values)

    def to_dict(self) -> dict:
        """JSON form; omits unset overrides so job.json stays minimal."""
        data = {"scale": self.scale, "seed": self.seed}
        for field in _OVERRIDES:
            value = getattr(self, field)
            if value is not None:
                data[field] = value
        return data

    def world_config(self) -> WorldConfig:
        """The scale's world config at this spec's seed."""
        return SCALES[self.scale].world_config(self.seed)

    def campaign_config(self) -> CampaignConfig:
        """The scale's campaign defaults with this spec's overrides."""
        config = SCALES[self.scale].campaign_config(self.seed)
        overrides = {
            field: getattr(self, field)
            for field in _OVERRIDES
            if getattr(self, field) is not None
        }
        return dataclasses.replace(config, **overrides) if overrides else config


class Job:
    """One campaign job: durable paths plus in-process runtime state."""

    def __init__(self, job_id: str, spec: JobSpec, directory: Path) -> None:
        self.id = job_id
        self.spec = spec
        self.dir = directory
        #: pending -> running -> done | failed (terminal states persisted
        #: in done.json; anything else resumes on restart).
        self.status = "pending"
        self.error: Optional[str] = None
        #: Set by the job thread while running: its private backend (for
        #: live memo stats) and fleet-health scope (for live supervision
        #: counters).  Never persisted.
        self.backend = None
        self.scope = None
        #: The done.json payload once terminal (survives restarts).
        self.outcome: Optional[dict] = None

    # -- durable layout -------------------------------------------------
    @property
    def spec_path(self) -> Path:
        return self.dir / "job.json"

    @property
    def checkpoint_dir(self) -> Path:
        return self.dir / "checkpoint"

    @property
    def results_path(self) -> Path:
        return self.dir / "results.jsonl"

    @property
    def done_path(self) -> Path:
        return self.dir / "done.json"

    # -- progress -------------------------------------------------------
    def checks_total(self) -> int:
        """How many checks the campaign will run in total."""
        return self.spec.campaign_config().n_checks

    def checks_done(self) -> int:
        """Durably committed checks: the sum of manifest segment rows.

        Day-granular by design -- progress only advances when a day's
        segment is fsynced, so the number never runs ahead of what a
        kill would preserve.  Re-read per request; the manifest is a few
        hundred bytes per committed day.

        Strictly read-only: request threads poll this while the job
        thread appends, so it must never use ``Manifest.load(repair=)``
        -- repair *truncates* a torn tail in place, and a poll landing
        mid-append would cut a committed line out of the file the
        writer owns.  It just sums the intact record lines and ignores
        an in-flight tail.
        """
        path = self.checkpoint_dir / Manifest.FILENAME
        try:
            raw = path.read_bytes()
        except OSError:
            return 0
        done = 0
        for line in raw.split(b"\n")[:-1]:  # fragment after last \n drops
            try:
                record = json.loads(line)
            except ValueError:
                break  # torn mid-append; later lines can't be older
            rows = record.get("rows", 0) if isinstance(record, dict) else 0
            if isinstance(rows, int) and not isinstance(rows, bool):
                done += rows
        return done

    def memo_stats(self) -> Optional[dict]:
        """Live burst-memo counters of the running job (None before/after)."""
        backend = self.backend
        if backend is None:
            return None
        stats = backend.cache_stats()
        hits = int(stats["burst_hits"])
        misses = int(stats["burst_misses"])
        total = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }

    def fleet_health(self) -> Optional[dict]:
        """Live supervision counters of the running job (None before/after)."""
        scope = self.scope
        return scope.snapshot() if scope is not None else None

    # -- persistence ----------------------------------------------------
    def persist_spec(self) -> None:
        """Atomically write job.json (tmp + rename; no torn specs)."""
        _write_atomic(self.spec_path, self.spec.to_dict())

    def persist_outcome(self, outcome: dict) -> None:
        """Atomically write the done.json terminal marker."""
        self.outcome = outcome
        _write_atomic(self.done_path, outcome)

    def __repr__(self) -> str:
        return f"Job({self.id}, {self.status})"


def _write_atomic(path: Path, payload: dict) -> None:
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(blob)
    os.replace(tmp, path)


class JobRegistry:
    """Sequential-id job store rooted at one directory.

    Creation is lock-guarded (request handler threads race); reads are
    plain dict lookups.  :meth:`scan` rebuilds the in-memory table from
    disk at service startup -- terminal jobs reload their done.json,
    everything else comes back as ``pending`` for the service to resume.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}

    def create(self, spec: JobSpec) -> Job:
        """Allocate the next sequential id, persist the spec, register."""
        with self._lock:
            number = 1 + max(
                (int(match.group(1)) for match in
                 (_ID.match(name) for name in self._jobs)
                 if match),
                default=0,
            )
            job_id = f"job-{number:06d}"
            job = Job(job_id, spec, self.root / job_id)
            job.dir.mkdir(parents=True, exist_ok=True)
            job.persist_spec()
            self._jobs[job_id] = job
        return job

    def get(self, job_id: str) -> Optional[Job]:
        """The job with this id, or None."""
        return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        """Every known job, id-sorted (= submission order)."""
        return [self._jobs[job_id] for job_id in sorted(self._jobs)]

    def scan(self) -> list[Job]:
        """Load every job directory under the root; return the jobs."""
        with self._lock:
            for entry in sorted(self.root.iterdir()) if self.root.exists() else []:
                if not _ID.match(entry.name) or entry.name in self._jobs:
                    continue
                try:
                    payload = json.loads(
                        (entry / "job.json").read_text(encoding="utf-8")
                    )
                    spec = JobSpec.from_dict(payload)
                except (OSError, ValueError):
                    continue  # torn create; nothing committed, nothing lost
                job = Job(entry.name, spec, entry)
                if job.done_path.exists():
                    try:
                        job.outcome = json.loads(
                            job.done_path.read_text(encoding="utf-8")
                        )
                        job.status = job.outcome.get("status", "done")
                        job.error = job.outcome.get("error")
                    except (OSError, ValueError):
                        job.status = "pending"  # torn marker: re-resume
                self._jobs[entry.name] = job
        return self.jobs()
