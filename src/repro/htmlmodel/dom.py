"""DOM node classes and tree operations for the HTML substrate.

The tree is a conventional parent/children structure with three node kinds:

* :class:`Document` -- the root; holds top-level nodes,
* :class:`Element` -- a tag with attributes and children,
* :class:`Text` -- a run of character data.

Elements expose the small set of accessors the rest of the system needs:
attribute lookup, class handling, text extraction, iteration in document
order, and :class:`NodePath` -- the structural address ("the 3rd child of the
2nd child of body") that the $heriff extension records when a user highlights
a price and that must survive re-parsing the page fetched from a different
vantage point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence

__all__ = ["Node", "Text", "Element", "Document", "NodePath"]


class Node:
    """Base class for all DOM nodes."""

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[Element | Document] = None

    # ------------------------------------------------------------------
    # Tree navigation helpers shared by all node kinds.
    # ------------------------------------------------------------------
    @property
    def index_in_parent(self) -> int:
        """Position of this node among its parent's children.

        Raises :class:`ValueError` for a detached node.
        """
        if self.parent is None:
            raise ValueError("node has no parent")
        for i, child in enumerate(self.parent.children):
            if child is self:
                return i
        raise ValueError("node not found among parent's children")

    def ancestors(self) -> Iterator["Element | Document"]:
        """Yield parents from the immediate parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    @property
    def root(self) -> "Node":
        """The topmost node of the tree containing this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node


class Text(Node):
    """A run of character data."""

    __slots__ = ("data",)

    def __init__(self, data: str) -> None:
        self.parent = None  # inline Node.__init__ (hot allocation path)
        self.data = data

    def __repr__(self) -> str:
        preview = self.data if len(self.data) <= 30 else self.data[:27] + "..."
        return f"Text({preview!r})"


class _ParentNode(Node):
    """Shared child-management behaviour of Element and Document."""

    __slots__ = ("children",)

    def __init__(self) -> None:
        self.parent = None  # inline Node.__init__ (hot allocation path)
        self.children: list[Node] = []

    def append(self, node: Node) -> Node:
        """Attach ``node`` as the last child and return it."""
        if node.parent is not None:
            node.parent.remove(node)
        node.parent = self  # type: ignore[assignment]
        self.children.append(node)
        return node

    def insert(self, index: int, node: Node) -> Node:
        """Attach ``node`` at ``index`` and return it."""
        if node.parent is not None:
            node.parent.remove(node)
        node.parent = self  # type: ignore[assignment]
        self.children.insert(index, node)
        return node

    def remove(self, node: Node) -> None:
        """Detach a direct child."""
        self.children.remove(node)
        node.parent = None

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def iter(self) -> Iterator[Node]:
        """Yield this node and every descendant in document order."""
        yield self
        for child in self.children:
            if isinstance(child, _ParentNode):
                yield from child.iter()
            else:
                yield child

    def iter_elements(self) -> Iterator["Element"]:
        """Yield descendant elements (and self if an element) in order."""
        # Iterative preorder walk: this runs once per selector application
        # per fetched page, so it avoids the nested-generator overhead of
        # delegating to :meth:`iter`.
        stack: list[Element] = (
            [self]  # type: ignore[list-item]
            if isinstance(self, Element)
            else [c for c in reversed(self.children) if isinstance(c, Element)]
        )
        pop = stack.pop
        while stack:
            element = pop()
            yield element
            children = element.children
            if children:
                stack.extend(
                    [c for c in reversed(children) if isinstance(c, Element)]
                )

    def child_elements(self) -> list["Element"]:
        """Direct children that are elements."""
        return [c for c in self.children if isinstance(c, Element)]

    # ------------------------------------------------------------------
    # Text extraction
    # ------------------------------------------------------------------
    def text(self, *, separator: str = "", strip: bool = False) -> str:
        """Concatenated character data of all descendant text nodes.

        ``separator`` is inserted between adjacent text runs; ``strip``
        strips the final result.  Script and style contents are skipped --
        a price highlighted by a user is never inside them, and including
        tracker snippets would poison extraction heuristics.
        """
        parts: list[str] = []
        self._collect_text(parts)
        out = separator.join(parts)
        return out.strip() if strip else out

    def _collect_text(self, parts: list[str]) -> None:
        for child in self.children:
            if isinstance(child, Text):
                parts.append(child.data)
            elif isinstance(child, Element):
                if child.tag in ("script", "style"):
                    continue
                child._collect_text(parts)


class Element(_ParentNode):
    """An HTML element: tag name, attributes, children."""

    __slots__ = ("tag", "attrs")

    def __init__(self, tag: str, attrs: Optional[dict[str, str]] = None) -> None:
        # Inline the base initializers: elements are allocated by the
        # thousand per rendered page, and the super() chain dominates.
        self.parent = None
        self.children = []
        self.tag = tag.lower()
        self.attrs: dict[str, str] = dict(attrs) if attrs else {}

    # ------------------------------------------------------------------
    # Attribute conveniences
    # ------------------------------------------------------------------
    def get(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """The attribute's value, or ``default`` when absent."""
        return self.attrs.get(name, default)

    def __contains__(self, name: str) -> bool:
        return name in self.attrs

    @property
    def id(self) -> Optional[str]:
        return self.attrs.get("id")

    @property
    def classes(self) -> tuple[str, ...]:
        """The element's class list, split on whitespace."""
        return tuple(self.attrs.get("class", "").split())

    def has_class(self, name: str) -> bool:
        """True if ``name`` appears in the element's class list."""
        return name in self.classes

    def __repr__(self) -> str:
        ident = f"#{self.id}" if self.id else ""
        cls = "." + ".".join(self.classes) if self.classes else ""
        return f"<{self.tag}{ident}{cls} children={len(self.children)}>"

    # ------------------------------------------------------------------
    # Structural addressing
    # ------------------------------------------------------------------
    def node_path(self) -> "NodePath":
        """The structural path from the document root to this element.

        Each step is the index of the element among its parent's *element*
        children.  This is what the extension records for a highlighted
        price node; it is meaningful across re-renders of the same template.
        """
        steps: list[int] = []
        node: Element = self
        while isinstance(node.parent, Element) or isinstance(node.parent, Document):
            siblings = node.parent.child_elements()
            steps.append(siblings.index(node))
            if isinstance(node.parent, Document):
                break
            node = node.parent
        steps.reverse()
        return NodePath(tuple(steps))


class Document(_ParentNode):
    """Root of a parsed HTML document."""

    __slots__ = ()

    def __repr__(self) -> str:
        return f"Document(children={len(self.children)})"

    def find_by_path(self, path: "NodePath") -> Optional[Element]:
        """Resolve a :class:`NodePath` back to an element, or ``None``."""
        node: _ParentNode = self
        for step in path.steps:
            elements = node.child_elements()
            if step >= len(elements):
                return None
            node = elements[step]
        return node if isinstance(node, Element) else None


@dataclass(frozen=True)
class NodePath:
    """A structural address: element-child indices from the root down.

    Node paths are the *least* robust anchor $heriff can use (any structural
    change up-tree invalidates them) but the only one that always exists;
    the selector derivation in :mod:`repro.core.highlight` prefers ids and
    stable class chains and falls back to paths.
    """

    steps: tuple[int, ...] = field(default_factory=tuple)

    def __str__(self) -> str:
        return "/" + "/".join(str(s) for s in self.steps)

    @classmethod
    def parse(cls, text: str) -> "NodePath":
        """Parse the ``/0/1/3`` textual form produced by :meth:`__str__`."""
        text = text.strip()
        if not text.startswith("/"):
            raise ValueError(f"invalid node path: {text!r}")
        body = text[1:]
        if not body:
            return cls(())
        try:
            steps = tuple(int(part) for part in body.split("/"))
        except ValueError as exc:
            raise ValueError(f"invalid node path: {text!r}") from exc
        if any(step < 0 for step in steps):
            raise ValueError(f"negative step in node path: {text!r}")
        return cls(steps)

    def parent(self) -> "NodePath":
        """The path one level up (the root path's parent is itself)."""
        if not self.steps:
            return self
        return NodePath(self.steps[:-1])

    def child(self, index: int) -> "NodePath":
        """The path one level down at element-child ``index``."""
        if index < 0:
            raise ValueError("child index must be >= 0")
        return NodePath(self.steps + (index,))

    @property
    def depth(self) -> int:
        return len(self.steps)
