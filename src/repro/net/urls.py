"""URL parsing, joining and normalization.

$heriff's unit of identity is the *exact URI* the user was looking at: the
extension ships it to the backend, the backend fans it out verbatim, the
crawler deduplicates on it, and the analysis keys products by it.  The paper
notes that product customization *not* encoded on the URI is a noise source;
keeping URL handling explicit (rather than passing raw strings around) is
what lets the cleaning stage reason about that.

Implemented from scratch (no :mod:`urllib`): scheme, host, port, path,
query (ordered multi-map) and fragment, with RFC-3986-style relative
reference resolution for the subset our pages produce.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Iterable, Optional

__all__ = ["URL", "URLError", "urljoin", "parse_query", "encode_query"]


class URLError(ValueError):
    """Raised for strings that cannot be interpreted as a URL."""


_SCHEME_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*):")
_HOST_PORT_RE = re.compile(r"^(?P<host>\[[^\]]+\]|[^:]*)(?::(?P<port>\d+))?$")
_DEFAULT_PORTS = {"http": 80, "https": 443}

_UNRESERVED = frozenset(
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-._~"
)


def _percent_encode(text: str, *, keep: str = "") -> str:
    safe = _UNRESERVED | set(keep)
    out: list[str] = []
    for byte in text.encode("utf-8"):
        char = chr(byte)
        if char in safe:
            out.append(char)
        else:
            out.append(f"%{byte:02X}")
    return "".join(out)


def _percent_decode(text: str) -> str:
    out = bytearray()
    i = 0
    while i < len(text):
        char = text[i]
        if char == "%" and i + 2 < len(text) + 1:
            hex_part = text[i + 1 : i + 3]
            if len(hex_part) == 2 and all(c in "0123456789abcdefABCDEF" for c in hex_part):
                out.append(int(hex_part, 16))
                i += 3
                continue
        if char == "+":
            out.append(0x20)
            i += 1
            continue
        out.extend(char.encode("utf-8"))
        i += 1
    return out.decode("utf-8", errors="replace")


def parse_query(query: str) -> list[tuple[str, str]]:
    """Parse ``a=1&b=two`` into an ordered list of (key, value) pairs."""
    pairs: list[tuple[str, str]] = []
    if not query:
        return pairs
    for item in query.split("&"):
        if not item:
            continue
        key, _, value = item.partition("=")
        pairs.append((_percent_decode(key), _percent_decode(value)))
    return pairs


def encode_query(pairs: Iterable[tuple[str, str]]) -> str:
    """Encode (key, value) pairs as a query string."""
    return "&".join(
        f"{_percent_encode(k)}={_percent_encode(v)}" for k, v in pairs
    )


@dataclass(frozen=True)
class URL:
    """An immutable parsed URL.

    ``query`` is kept as an ordered tuple of pairs; product ids routinely
    live in the query (``?sku=B00ABC``) and order matters for the exact-URI
    identity $heriff relies on.
    """

    scheme: str = "http"
    host: str = ""
    port: Optional[int] = None
    path: str = "/"
    query: tuple[tuple[str, str], ...] = ()
    fragment: str = ""

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "URL":
        """Parse an absolute URL string.

        Results are memoized: the backend and crawler parse the same exact
        URIs over and over (once per vantage point per day), and ``URL`` is
        immutable, so sharing one instance per distinct string is safe.
        """
        if not isinstance(text, str) or not text.strip():
            raise URLError("empty URL")
        return _parse_cached(text.strip())

    @classmethod
    def _parse_uncached(cls, text: str) -> "URL":
        match = _SCHEME_RE.match(text)
        if match is None:
            raise URLError(f"URL has no scheme: {text!r}")
        scheme = match.group(1).lower()
        rest = text[match.end() :]
        if not rest.startswith("//"):
            raise URLError(f"URL has no authority: {text!r}")
        rest = rest[2:]
        # Split off fragment, then query, then path.
        rest, _, fragment = rest.partition("#")
        rest, _, query = rest.partition("?")
        slash = rest.find("/")
        if slash == -1:
            authority, path = rest, "/"
        else:
            authority, path = rest[:slash], rest[slash:]
        hp = _HOST_PORT_RE.match(authority)
        if hp is None or not hp.group("host"):
            raise URLError(f"bad authority in {text!r}")
        host = hp.group("host").lower()
        port = int(hp.group("port")) if hp.group("port") else None
        if port is not None and not (0 < port < 65536):
            raise URLError(f"port out of range in {text!r}")
        return cls(
            scheme=scheme,
            host=host,
            port=port,
            path=_normalize_path(_percent_decode_path(path)),
            query=tuple(parse_query(query)),
            fragment=_percent_decode(fragment),
        )

    # ------------------------------------------------------------------
    @property
    def effective_port(self) -> int:
        """The port in use, defaulting per scheme."""
        if self.port is not None:
            return self.port
        return _DEFAULT_PORTS.get(self.scheme, 80)

    @property
    def origin(self) -> str:
        """``scheme://host[:port]`` with default ports elided."""
        if self.port is not None and self.port != _DEFAULT_PORTS.get(self.scheme):
            return f"{self.scheme}://{self.host}:{self.port}"
        return f"{self.scheme}://{self.host}"

    def query_param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """First value of query parameter ``name``."""
        for key, value in self.query:
            if key == name:
                return value
        return default

    def with_query(self, **params: str) -> "URL":
        """A copy with the given parameters appended/replaced (by key)."""
        remaining = [(k, v) for k, v in self.query if k not in params]
        added = [(k, str(v)) for k, v in params.items()]
        return replace(self, query=tuple(remaining + added))

    def without_fragment(self) -> "URL":
        """A copy with the fragment removed."""
        return replace(self, fragment="")

    def canonical(self) -> "URL":
        """Identity-normalized form: no fragment, default port elided."""
        port = None if self.port == _DEFAULT_PORTS.get(self.scheme) else self.port
        return replace(self, fragment="", port=port)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        # Memoized per instance: parse-cached URLs are shared across the
        # whole process, and the fan-out hot path serializes the same URL
        # once per vantage per check (draw keys, memo keys, archives).
        cached = self.__dict__.get("_text")
        if cached is None:
            out = [self.origin, _percent_encode(self.path, keep="/")]
            if self.query:
                out.append("?" + encode_query(self.query))
            if self.fragment:
                out.append("#" + _percent_encode(self.fragment))
            cached = "".join(out)
            object.__setattr__(self, "_text", cached)
        return cached


@lru_cache(maxsize=4096)
def _parse_cached(text: str) -> URL:
    """Memoized absolute-URL parse (``URL`` instances are immutable)."""
    return URL._parse_uncached(text)


def _percent_decode_path(path: str) -> str:
    # '+' is literal in paths, only percent escapes decode.
    return _percent_decode(path.replace("+", "%2B"))


def _normalize_path(path: str) -> str:
    """Resolve ``.`` and ``..`` segments and collapse empty path to ``/``."""
    if not path:
        return "/"
    segments = path.split("/")
    out: list[str] = []
    for segment in segments:
        if segment == ".":
            continue
        if segment == "..":
            if len(out) > 1:
                out.pop()
            continue
        out.append(segment)
    normalized = "/".join(out)
    if not normalized.startswith("/"):
        normalized = "/" + normalized
    return normalized


def urljoin(base: URL | str, reference: str) -> URL:
    """Resolve ``reference`` against ``base`` (RFC 3986 subset).

    Handles absolute URLs, network-path (``//host/...``), absolute-path and
    relative-path references, query-only and fragment-only references --
    the forms retailer pages use in product links.
    """
    if isinstance(base, str):
        base = URL.parse(base)
    reference = reference.strip()
    if not reference:
        return base
    if _SCHEME_RE.match(reference):
        return URL.parse(reference)
    if reference.startswith("//"):
        return URL.parse(f"{base.scheme}:{reference}")
    if reference.startswith("#"):
        return replace(base, fragment=_percent_decode(reference[1:]))
    if reference.startswith("?"):
        ref, _, fragment = reference[1:].partition("#")
        return replace(
            base, query=tuple(parse_query(ref)), fragment=_percent_decode(fragment)
        )
    ref, _, fragment = reference.partition("#")
    ref, _, query = ref.partition("?")
    if ref.startswith("/"):
        path = ref
    else:
        directory = base.path.rsplit("/", 1)[0]
        path = f"{directory}/{ref}"
    return replace(
        base,
        path=_normalize_path(_percent_decode_path(path)),
        query=tuple(parse_query(query)),
        fragment=_percent_decode(fragment),
    )
