"""Backend fan-out, page store, and extension flow tests."""

from __future__ import annotations

import pytest

from repro.core.backend import CheckRequest, SheriffBackend
from repro.core.extension import SheriffExtension, UserClient
from repro.core.highlight import PriceAnchor
from repro.core.store import PageStore
from repro.ecommerce.world import WorldConfig, build_world
from repro.htmlmodel.selectors import Selector
from repro.net.geoip import GeoLocation
from repro.net.urls import URLError
from repro.net.useragent import profile_for


def anchor_for(world, domain: str) -> PriceAnchor:
    from repro.analysis.personal import derive_anchor_for_domain

    return derive_anchor_for_domain(world, domain)


def product_url(world, domain: str, index: int = 0) -> str:
    product = world.retailer(domain).catalog.products[index]
    return f"http://{domain}{product.path}"


class TestCheck:
    def test_fourteen_observations(self, tiny_world, tiny_backend):
        domain = "www.digitalrev.com"
        report = tiny_backend.check(
            CheckRequest(
                url=product_url(tiny_world, domain),
                anchor=anchor_for(tiny_world, domain),
            )
        )
        assert len(report.observations) == 14
        assert all(obs.ok for obs in report.observations)
        assert report.domain == domain

    def test_variation_detected_for_geo_priced_shop(self, tiny_world, tiny_backend):
        domain = "www.digitalrev.com"
        report = tiny_backend.check(
            CheckRequest(
                url=product_url(tiny_world, domain, 1),
                anchor=anchor_for(tiny_world, domain),
            )
        )
        assert report.ratio == pytest.approx(1.28, rel=0.01)
        assert report.has_variation
        assert report.guard_threshold > 1.0

    def test_uniform_shop_survives_guard(self, tiny_world, tiny_backend):
        """A long-tail shop localizes currency but prices uniformly: the
        conversion wobble must stay inside the guard."""
        domain = tiny_world.long_tail[0]
        report = tiny_backend.check(
            CheckRequest(
                url=product_url(tiny_world, domain),
                anchor=anchor_for(tiny_world, domain),
            )
        )
        assert report.ratio is not None
        assert not report.has_variation

    def test_synchronized_burst(self, tiny_world, tiny_backend):
        """All 14 fetches land within a tight virtual-time window."""
        domain = "www.digitalrev.com"
        start = tiny_world.clock.now
        tiny_backend.check(
            CheckRequest(
                url=product_url(tiny_world, domain),
                anchor=anchor_for(tiny_world, domain),
            )
        )
        assert tiny_world.clock.now - start < 30.0

    def test_check_ids_unique(self, tiny_world, tiny_backend):
        domain = "www.digitalrev.com"
        request = CheckRequest(
            url=product_url(tiny_world, domain),
            anchor=anchor_for(tiny_world, domain),
        )
        ids = {tiny_backend.check(request).check_id for _ in range(3)}
        assert len(ids) == 3

    def test_invalid_url_rejected_at_request(self):
        with pytest.raises(URLError):
            CheckRequest(url="not a url", anchor=PriceAnchor(None, "/", ""))

    def test_unreachable_host_yields_failed_observations(self, tiny_world):
        backend = SheriffBackend(
            tiny_world.network, tiny_world.vantage_points[:3], tiny_world.rates
        )
        report = backend.check(
            CheckRequest(
                url="http://unregistered.example/p/1",
                anchor=PriceAnchor(None, "/0", ""),
            )
        )
        assert all(not obs.ok for obs in report.observations)
        assert report.ratio is None
        assert not report.has_variation

    def test_404_yields_failed_observation(self, tiny_world, tiny_backend):
        report = tiny_backend.check(
            CheckRequest(
                url="http://www.digitalrev.com/missing",
                anchor=PriceAnchor(None, "/0", ""),
            )
        )
        assert all("http 404" in obs.error for obs in report.observations)

    def test_needs_vantage_points(self, tiny_world):
        with pytest.raises(ValueError):
            SheriffBackend(tiny_world.network, [], tiny_world.rates)

    def test_loss_tolerated_with_retries(self):
        world = build_world(
            WorldConfig(catalog_scale=0.15, long_tail_domains=0, loss_rate=0.15)
        )
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        domain = "www.digitalrev.com"
        report = backend.check(
            CheckRequest(
                url=product_url(world, domain),
                anchor=anchor_for(world, domain),
            )
        )
        # With 15% loss and 2 retries nearly every point succeeds.
        assert len(report.valid_observations()) >= 10


class TestPageStore:
    def test_archiving_happens(self, tiny_world):
        store = PageStore(html_per_domain=5)
        backend = SheriffBackend(
            tiny_world.network, tiny_world.vantage_points, tiny_world.rates,
            store=store,
        )
        domain = "www.digitalrev.com"
        backend.check(
            CheckRequest(
                url=product_url(tiny_world, domain),
                anchor=anchor_for(tiny_world, domain),
            )
        )
        assert len(store) == 14
        assert store.retained_html_count() == 5
        pages = store.pages_for_domain(domain, with_html_only=True)
        assert len(pages) == 5
        assert all(page.html for page in pages)

    def test_metadata_kept_beyond_cap(self):
        store = PageStore(html_per_domain=1)
        for i in range(4):
            store.archive(
                check_id=f"c{i}", url="http://d/x", domain="d",
                vantage="v", timestamp=0.0, html="<html></html>",
            )
        assert len(store) == 4
        assert store.retained_html_count() == 1

    def test_domains_listing_and_clear(self):
        store = PageStore()
        store.archive(check_id="c", url="u", domain="b.x", vantage="v",
                      timestamp=0, html="<p></p>")
        store.archive(check_id="c", url="u", domain="a.x", vantage="v",
                      timestamp=0, html="<p></p>")
        assert store.domains() == ["a.x", "b.x"]
        store.clear()
        assert len(store) == 0

    def test_invalid_cap(self):
        with pytest.raises(ValueError):
            PageStore(html_per_domain=-1)


class TestExtensionFlow:
    def _user(self, world, country="DE", city="Berlin") -> UserClient:
        from repro.net.geoip import COUNTRY_NAMES

        return UserClient(
            name="tester",
            location=GeoLocation(country, COUNTRY_NAMES[country], city),
            ip=world.plan.allocate(country, city),
            profile=profile_for("firefox", "linux"),
        )

    def test_full_user_flow(self, tiny_world, tiny_backend):
        extension = SheriffExtension(tiny_backend, tiny_world.network)
        user = self._user(tiny_world)
        domain = "www.digitalrev.com"
        retailer = tiny_world.retailer(domain)
        selector = Selector.parse(retailer.template.price_selector)
        outcome = extension.check_product(
            user, product_url(tiny_world, domain), selector.select_one
        )
        assert outcome.ok
        assert outcome.user_currency == "EUR"  # German user sees euros
        assert outcome.report.has_variation

    def test_user_cannot_find_price(self, tiny_world, tiny_backend):
        extension = SheriffExtension(tiny_backend, tiny_world.network)
        user = self._user(tiny_world)
        outcome = extension.check_product(
            user, product_url(tiny_world, "www.digitalrev.com"), lambda doc: None
        )
        assert not outcome.ok
        assert "locate" in outcome.failure

    def test_unreachable_page(self, tiny_world, tiny_backend):
        extension = SheriffExtension(tiny_backend, tiny_world.network)
        user = self._user(tiny_world)
        outcome = extension.check_product(
            user, "http://www.digitalrev.com/nope", lambda doc: None
        )
        assert not outcome.ok
        assert "http 404" in outcome.failure
