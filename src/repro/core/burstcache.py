"""Burst memoization: an equivalence-keyed cache for whole fan-outs.

A crowd serving heavy traffic asks the backend for the *same* products
over and over: thousands of users click the same popular product on the
same day, and every click pays a full synchronized 14-vantage fan-out --
render, serialize, archive, extract, convert, times fourteen.  Most of
those bursts are equivalent.  For a retailer whose pricing policy reads
only *capturable* signals (vantage country/city, request day, browser --
:data:`~repro.ecommerce.pricing.CAPTURABLE_SIGNALS`), the response bytes
every vantage point receives are a pure function of a small
:class:`~repro.ecommerce.retailer.PricingSignature`; so is everything the
backend derives from them.  :class:`BurstCache` therefore memoizes the
entire burst outcome -- the :class:`~repro.core.reports.VantageObservation`
vector plus the archived page bodies -- keyed by

``(url, check day, origin class, anchor locators, per-vantage signature
vector)``

and replays cache hits without touching a single server.

Soundness is layered, never assumed:

* **Declaration.**  Each pricing policy declares the signals it reads
  (:meth:`~repro.ecommerce.pricing.PricingPolicy` ``signals()``); a
  retailer whose declaration names a non-capturable signal (identity,
  nonce, referer, ...) -- or that supports login, because the server
  itself keys pages on the auth cookie -- is *live-only*: every check
  runs the real fan-out and the cache never stores a byte.
* **Detection.**  Every store-candidate burst runs live with a
  :class:`~repro.ecommerce.pricing.SignalProbe` recording what the policy
  *actually* read.  Reads escaping the declared set (or, for undeclared
  policies, the capturable ceiling) demote the retailer to live-only on
  the spot and drop its entries -- a wrong declaration can mislabel a
  retailer but never corrupt an entry, because nothing is cached from the
  burst that exposed it.
* **Timeline replay.**  Latency/loss draws are a pure function of
  (seed, url, client IP, send instant) -- the PR-2 determinism contract
  -- so the cache re-derives each hit's exact delivery timeline with
  :meth:`~repro.net.transport.Network.delivery_draws` and stamps archives
  with the same timestamps the live fan-out would have produced.  An
  entry is only stored when the prediction matched the live burst
  byte-for-byte (which also rejects redirects, lost vantages, and HTTP
  errors); a hit whose replay shows an unreachable vantage falls back to
  the live path.
* **Cross-validation.**  ``validate_fraction`` re-runs that fraction of
  hits through the live fan-out anyway and raises
  :class:`BurstCacheDivergence` on any byte difference -- the sampled
  self-audit for long campaigns.

What a hit deliberately does not do: no requests are built, no cookie
jars are read or written, no server counters advance.  That is safe
precisely because the retailer was proven signature-pure -- none of that
state can influence its responses -- but process-wide telemetry
(``Network.request_count``) and per-server request counters will sit
below their live-path values when the memo is on.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.ecommerce.retailer import RetailerServer
from repro.net.clock import SECONDS_PER_DAY
from repro.net.transport import Network
from repro.util import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ScheduledCheck, SheriffBackend
    from repro.core.reports import PriceCheckReport, VantageObservation
    from repro.net.urls import URL
    from repro.net.vantage import VantagePoint

__all__ = [
    "BurstCache",
    "BurstCacheDivergence",
    "BurstEntry",
    "BurstPlan",
    "predict_fanout",
]


class BurstCacheDivergence(RuntimeError):
    """A cross-validated memo hit disagreed with the live fan-out.

    This is a loud failure by design: a divergence means an entry was
    served (or would have been) whose bytes the live path no longer
    reproduces -- a broken signal declaration the probe did not catch, or
    mutable state leaking into a supposedly pure response.
    """


def predict_fanout(
    network: Network,
    fleet: Sequence["VantagePoint"],
    url: "URL",
    start_ts: float,
    max_retries: int,
) -> Optional[tuple[tuple[float, float], ...]]:
    """The exact delivery timeline of a clean burst, without any fetches.

    Mirrors the live path arithmetic operation for operation: the burst
    clock forks at ``start_ts``; for each vantage in fleet order the three
    request-keyed draws decide loss and the two hop latencies, a lost
    attempt burns the timeout and retries at the later instant, and a
    delivered request yields ``(request_ts, archive_ts)`` -- the instant
    the server sees the request (its day indexes the pricing context) and
    the instant the response lands back (the archive timestamp).

    Returns ``None`` when any vantage point stays unreachable through all
    retries: such a burst is not clean, and callers must use the live
    fan-out (which will produce the matching failed observation).
    """
    now = float(start_ts)
    timeline: list[tuple[float, float]] = []
    for vantage in fleet:
        delivered: Optional[tuple[float, float]] = None
        for _ in range(max_retries + 1):
            loss, lat_out, lat_back = network.delivery_draws(
                url, vantage.ip, now
            )
            if network.loss_rate and loss < network.loss_rate:
                now += network.latency.timeout
                continue
            now += network.latency.from_unit(lat_out)
            request_ts = now
            now += network.latency.from_unit(lat_back)
            delivered = (request_ts, now)
            break
        if delivered is None:
            return None
        timeline.append(delivered)
    return tuple(timeline)


@dataclass(frozen=True)
class BurstEntry:
    """One memoized burst outcome: observations, page bodies, currencies.

    Everything per-check (check id, report timestamp, archive timestamps)
    is re-derived at hit time; everything stored here is a pure function
    of the cache key.
    """

    observations: tuple["VantageObservation", ...]
    htmls: tuple[str, ...]
    currencies: frozenset[str]


@dataclass
class BurstPlan:
    """The memo layer's per-check decision, handed to the backend.

    ``entry`` is the cache hit (``None`` -> run live and try to store);
    ``validate`` marks a hit sampled for live cross-validation -- the
    backend then runs the real fan-out and hands the outcome back to
    :meth:`BurstCache.after_live` for comparison.
    """

    domain: str
    server: RetailerServer
    key: tuple
    timeline: tuple[tuple[float, float], ...]
    verify_signals: frozenset[str]
    entry: Optional[BurstEntry] = None
    validate: bool = False


@dataclass
class _DomainState:
    """Per-retailer memo state: the server, the key projection, entries."""

    server: Optional[RetailerServer]
    key_signals: frozenset[str] = frozenset()
    verify_signals: frozenset[str] = frozenset()
    live_reason: str = ""
    #: True when live-only by *evidence* (a probe caught the policy, or a
    #: checkpoint / another worker proved it) rather than by structural
    #: classification -- only evidence propagates across caches.
    demoted: bool = False
    entries: "OrderedDict[tuple, BurstEntry]" = field(
        default_factory=OrderedDict
    )
    #: (vantage name, ip, server day) -> composed signature key element.
    #: A vantage's signature is a pure function of (ip, browser, day), so
    #: a day's worth of bursts shares 14 cached tuples instead of paying
    #: geo lookups and tuple assembly per check.
    signature_cache: dict[tuple, tuple] = field(default_factory=dict)

    @property
    def live_only(self) -> bool:
        return self.server is None


class BurstCache:
    """Per-retailer memo of whole fan-out bursts (see module docstring).

    One instance belongs to one :class:`~repro.core.backend.SheriffBackend`
    (shard workers each grow their own -- cache warmth affects speed,
    never bytes).  ``enabled=False`` keeps the object inert so executors
    can toggle the memo per task without rebuilding backends;
    ``validate_fraction`` samples that fraction of hits for a live
    re-run; ``max_entries_per_domain`` caps each retailer's LRU.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        validate_fraction: float = 0.0,
        max_entries_per_domain: int = 1024,
        seed: int = 0,
    ) -> None:
        if not 0.0 <= validate_fraction <= 1.0:
            raise ValueError("validate_fraction must be in [0, 1]")
        if max_entries_per_domain < 1:
            raise ValueError("max_entries_per_domain must be >= 1")
        self.enabled = enabled
        self.validate_fraction = validate_fraction
        self.max_entries_per_domain = max_entries_per_domain
        self._seed = seed
        self._domains: dict[str, _DomainState] = {}
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._store_skips = 0
        self._validations = 0
        self._demotions = 0
        self._bypass_live_only = 0
        self._bypass_unreachable = 0
        self._bypass_non_product = 0
        # Sharing journals (see "Sharing caches across processes"): what
        # this cache learned since the last drain_updates() call.
        self._journal_entries: list[tuple[str, tuple]] = []
        self._journal_demotions: dict[str, str] = {}
        self._counter_base: dict[str, int] = self._counters()

    # ------------------------------------------------------------------
    # The per-check decision
    # ------------------------------------------------------------------
    def plan(
        self,
        backend: "SheriffBackend",
        sched: "ScheduledCheck",
        url: "URL",
        fleet: Sequence["VantagePoint"],
    ) -> Optional[BurstPlan]:
        """Decide how ``sched`` may use the memo (``None`` -> plain live).

        ``None`` is the zero-overhead answer for live-only retailers
        (stateful pricing, login support, non-retailer servers) and for
        bursts the memo cannot represent (non-product URLs, vantages lost
        through all retries).
        """
        state = self._domain_state(backend, url.host)
        if state.live_only:
            self._bypass_live_only += 1
            return None
        server = state.server
        assert server is not None
        # Only product pages are signature-pure by construction; checkout
        # quotes read shipping/VAT country outside the probed policy and
        # index/login pages have their own shapes.
        if server.retailer.catalog.by_path(url.path) is None:
            self._bypass_non_product += 1
            return None
        timeline = predict_fanout(
            backend.network, fleet, url, sched.start_ts, backend.MAX_RETRIES
        )
        if timeline is None:
            self._bypass_unreachable += 1
            return None
        signatures = []
        signature_cache = state.signature_cache
        if len(signature_cache) > 8192:  # long campaigns: drop stale days
            signature_cache.clear()
        for vantage, (request_ts, _) in zip(fleet, timeline):
            day = int(request_ts // SECONDS_PER_DAY)
            cache_key = (vantage.name, vantage.ip, day)
            element = signature_cache.get(cache_key)
            if element is None:
                element = (
                    vantage.name,
                    vantage.ip,
                    server.pricing_signature(
                        client_ip=vantage.ip,
                        user_agent=vantage.profile.user_agent,
                        day_index=day,
                    ),
                )
                signature_cache[cache_key] = element
            signatures.append(element)
        anchor = sched.request.anchor
        key = (
            str(url),
            int(sched.start_ts // SECONDS_PER_DAY),
            "crawler" if sched.request.origin == "crawler" else "user",
            anchor.selector,
            anchor.node_path,
            tuple(signatures),
        )
        entry = state.entries.get(key)
        plan = BurstPlan(
            domain=url.host,
            server=server,
            key=key,
            timeline=timeline,
            verify_signals=state.verify_signals,
            entry=entry,
        )
        if entry is None:
            self._misses += 1
        else:
            state.entries.move_to_end(key)
            self._hits += 1
            if self.validate_fraction > 0.0:
                draw = stable_hash(
                    self._seed, sched.check_id, "burst-validate"
                ) / 2**64
                plan.validate = draw < self.validate_fraction
        return plan

    def _domain_state(
        self, backend: "SheriffBackend", domain: str
    ) -> _DomainState:
        state = self._domains.get(domain)
        if state is not None:
            return state
        server: Optional[RetailerServer]
        reason = ""
        try:
            resolved = backend.network.resolve(domain)
        except Exception:
            resolved, reason = None, "unresolvable domain"
        if resolved is not None and not isinstance(resolved, RetailerServer):
            resolved, reason = None, "not a retailer server"
        server = resolved
        key_signals: frozenset[str] = frozenset()
        verify_signals: frozenset[str] = frozenset()
        if server is not None:
            profile = server.signature_profile()
            if profile is None:
                server, reason = None, "state-dependent responses"
            else:
                key_signals = profile.signals
                verify_signals = profile.verify_signals
        state = _DomainState(
            server=server,
            key_signals=key_signals,
            verify_signals=verify_signals,
            live_reason=reason,
        )
        self._domains[domain] = state
        return state

    # ------------------------------------------------------------------
    # After a live (miss or validation) burst
    # ------------------------------------------------------------------
    def after_live(
        self,
        plan: BurstPlan,
        fleet: Sequence["VantagePoint"],
        report: "PriceCheckReport",
        captured: list[dict],
        reads: set[str],
    ) -> None:
        """Fold a live burst's evidence back into the cache.

        For a validation run, compare the live outcome against the served
        entry and raise :class:`BurstCacheDivergence` on any difference.
        For a miss, verify the recorded signal reads and the predicted
        timeline against reality, then store the entry -- or demote the
        retailer if the policy read past its declaration.
        """
        if plan.entry is not None:
            self._validations += 1
            self._compare(plan, fleet, report, captured)
            return
        state = self._domains[plan.domain]
        if state.live_only:
            return
        escaped = reads - plan.verify_signals
        if escaped:
            self._demote(
                plan.domain,
                f"policy read undeclared signals {sorted(escaped)}",
            )
            return
        if not self._burst_is_clean(plan, fleet, captured):
            self._store_skips += 1
            return
        entry = BurstEntry(
            observations=tuple(report.observations),
            htmls=tuple(kwargs["html"] for kwargs in captured),
            currencies=frozenset(
                obs.currency
                for obs in report.observations
                if obs.ok and obs.currency is not None
            ),
        )
        state.entries[plan.key] = entry
        state.entries.move_to_end(plan.key)
        while len(state.entries) > self.max_entries_per_domain:
            state.entries.popitem(last=False)
        self._stores += 1
        self._journal_entries.append((plan.domain, plan.key))

    def _burst_is_clean(
        self,
        plan: BurstPlan,
        fleet: Sequence["VantagePoint"],
        captured: list[dict],
    ) -> bool:
        """Did the live burst match the predicted timeline exactly?

        One archive per vantage, in fleet order, each stamped with the
        predicted archive instant.  Anything else -- an HTTP error (no
        archive), a redirect (extra hops shift the clock), a float that
        somehow disagrees -- rejects the burst from the cache.
        """
        if len(captured) != len(fleet):
            return False
        for vantage, (_, archive_ts), kwargs in zip(
            fleet, plan.timeline, captured
        ):
            if kwargs["vantage"] != vantage.name:
                return False
            if kwargs["timestamp"] != archive_ts:
                return False
        return True

    def _compare(
        self,
        plan: BurstPlan,
        fleet: Sequence["VantagePoint"],
        report: "PriceCheckReport",
        captured: list[dict],
    ) -> None:
        entry = plan.entry
        assert entry is not None
        problems: list[str] = []
        if tuple(report.observations) != entry.observations:
            problems.append("observation vectors differ")
        live_htmls = tuple(kwargs["html"] for kwargs in captured)
        if live_htmls != entry.htmls:
            problems.append("archived page bodies differ")
        if not self._burst_is_clean(plan, fleet, captured):
            problems.append("delivery timeline diverged from prediction")
        if problems:
            raise BurstCacheDivergence(
                f"memo entry for {plan.domain} diverged from the live "
                f"fan-out ({'; '.join(problems)}); key={plan.key!r}"
            )

    def _demote(self, domain: str, reason: str) -> None:
        state = self._domains[domain]
        state.server = None
        state.live_reason = reason
        state.demoted = True
        state.entries.clear()
        self._demotions += 1
        self._journal_demotions[domain] = reason

    def restore_live_only(self, demoted: dict[str, str]) -> None:
        """Re-apply live-only verdicts captured by a checkpoint.

        A resumed run starts with a cold cache (entries are recomputable
        and deliberately not checkpointed), but demotions are *evidence*
        -- a policy was caught reading past its declaration -- and
        forgetting them would let the resumed run briefly serve entries an
        uninterrupted run never would have.  Restoring them keeps the
        memo's trust decisions monotone across a kill.
        """
        for domain, reason in demoted.items():
            self.fold_demotion(domain, reason)

    # ------------------------------------------------------------------
    # Sharing caches across processes
    # ------------------------------------------------------------------
    # A shard worker's cache and the coordinator's master cache stay in
    # sync through three primitives: the worker *drains* what it learned
    # (new entries, demotions, counter deltas), the coordinator *folds*
    # entries/demotions into the master (and later ships them to other
    # workers, demotions first), and *absorbs* the counter deltas so its
    # own ``stats()`` reports fleet-wide truth.  Folding never journals
    # or bumps counters -- every store, hit, and demotion is counted
    # exactly once, by the cache where it actually happened.
    _COUNTER_ATTRS = {
        "hits": "_hits",
        "misses": "_misses",
        "stores": "_stores",
        "store_skips": "_store_skips",
        "validations": "_validations",
        "demotions": "_demotions",
        "bypass_live_only": "_bypass_live_only",
        "bypass_unreachable": "_bypass_unreachable",
        "bypass_non_product": "_bypass_non_product",
    }

    def _counters(self) -> dict[str, int]:
        return {
            name: getattr(self, attr)
            for name, attr in self._COUNTER_ATTRS.items()
        }

    def predicts_hits(self, backend: "SheriffBackend", domain: str) -> bool:
        """Planner hook: would repeats of one burst against ``domain`` hit?

        True exactly when the cache would consider storing for the
        domain -- enabled, a reachable retailer server, a pure signature
        profile, not demoted.  Classification is the same (memoized)
        :meth:`plan` uses, so asking is cheap and side-effect-free
        beyond populating the domain-state table a real check would
        populate anyway.
        """
        if not self.enabled:
            return False
        return not self._domain_state(backend, domain).live_only

    def drain_updates(self) -> dict:
        """Everything this cache learned since the last drain.

        Returns ``{"entries": [(domain, key, entry), ...], "demotions":
        {domain: reason}, "counters": {name: delta}}`` and resets the
        journals.  Journaled entries evicted or demoted away in the
        meantime are silently dropped (they are recomputable; shipping
        them would resurrect state the LRU or a probe already killed).
        """
        entries: list[tuple[str, tuple, BurstEntry]] = []
        emitted: set[tuple[str, tuple]] = set()
        for domain, key in self._journal_entries:
            if (domain, key) in emitted:
                continue
            state = self._domains.get(domain)
            if state is None or state.live_only:
                continue
            entry = state.entries.get(key)
            if entry is None:
                continue
            emitted.add((domain, key))
            entries.append((domain, key, entry))
        counters = self._counters()
        deltas = {
            name: counters[name] - self._counter_base.get(name, 0)
            for name in counters
        }
        updates = {
            "entries": entries,
            "demotions": dict(self._journal_demotions),
            "counters": {k: v for k, v in deltas.items() if v},
        }
        self._journal_entries.clear()
        self._journal_demotions.clear()
        self._counter_base = counters
        return updates

    def fold_entry(
        self,
        backend: "SheriffBackend",
        domain: str,
        key: tuple,
        entry: BurstEntry,
    ) -> bool:
        """Import an entry another cache verified live (no counters).

        Respects this cache's own view: a disabled cache or a domain it
        classifies (or has demoted to) live-only rejects the import --
        demotions always win over entries, which is why callers must
        fold a batch's demotions first.  The per-domain LRU cap applies
        as if the entry had been stored locally.
        """
        if not self.enabled:
            return False
        state = self._domain_state(backend, domain)
        if state.live_only:
            return False
        state.entries[key] = entry
        state.entries.move_to_end(key)
        while len(state.entries) > self.max_entries_per_domain:
            state.entries.popitem(last=False)
        return True

    def fold_demotion(self, domain: str, reason: str) -> None:
        """Apply a demotion proven elsewhere (worker drain or checkpoint).

        Does not bump the demotion counter -- the cache that caught the
        policy already counted it; this is propagation, not discovery.
        """
        state = self._domains.get(domain)
        if state is None:
            self._domains[domain] = _DomainState(
                server=None, live_reason=reason, demoted=True
            )
        elif not state.live_only:
            state.server = None
            state.live_reason = reason
            state.entries.clear()
            state.demoted = True
        else:
            state.demoted = True

    def absorb_counters(self, deltas: dict) -> None:
        """Add a drained counter delta to this cache's own counters."""
        for name, delta in deltas.items():
            attr = self._COUNTER_ATTRS.get(name)
            if attr is not None:
                setattr(self, attr, getattr(self, attr) + int(delta))

    def demoted_domains(self) -> dict[str, str]:
        """domain -> reason, for evidence-based demotions only.

        The propagation-worthy subset of :meth:`live_only_domains`:
        structurally live-only retailers are reclassified identically by
        every cache on its own, but demotions are evidence that must
        travel.
        """
        return {
            domain: state.live_reason
            for domain, state in sorted(self._domains.items())
            if state.demoted
        }

    def entries_for(self, domain: str) -> list[tuple[tuple, BurstEntry]]:
        """Snapshot of one domain's entries in LRU order (oldest first)."""
        state = self._domains.get(domain)
        if state is None or state.live_only:
            return []
        return list(state.entries.items())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def live_only_domains(self) -> dict[str, str]:
        """domain -> why its checks run the live fan-out."""
        return {
            domain: state.live_reason
            for domain, state in sorted(self._domains.items())
            if state.live_only
        }

    def stats(self) -> dict[str, int]:
        """Counters for performance reports (all integers)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "stores": self._stores,
            "store_skips": self._store_skips,
            "validations": self._validations,
            "demotions": self._demotions,
            "bypass_live_only": self._bypass_live_only,
            "bypass_unreachable": self._bypass_unreachable,
            "bypass_non_product": self._bypass_non_product,
            "entries": sum(
                len(state.entries) for state in self._domains.values()
            ),
            "domains": len(self._domains),
            "domains_live_only": sum(
                1 for state in self._domains.values() if state.live_only
            ),
        }
