"""Personal-information experiments (§4.4, Fig. 10).

Two controlled studies, both holding location and time fixed:

* :func:`persona_experiment` -- train an affluent and a budget persona,
  check identical products with both, diff the prices.  The paper reports
  **no** differences; the simulated retailers likewise ignore persona
  cookies, and this experiment demonstrates that null result through the
  full HTTP/cookie path.

* :func:`login_experiment` -- Fig. 10: Kindle ebook prices for three
  logged-in accounts and the logged-out state.  Prices differ per product
  and per identity with no consistent logged-in premium.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.extension import UserClient
from repro.core.extraction import extract_price
from repro.core.highlight import PriceAnchor, derive_anchor
from repro.ecommerce.localization import locale_for_country
from repro.ecommerce.personas import AFFLUENT, BUDGET, Persona, login, train_persona
from repro.ecommerce.templates import selector_on_day
from repro.ecommerce.world import World
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import Selector
from repro.net.clock import SECONDS_PER_DAY
from repro.net.geoip import GeoLocation
from repro.net.transport import TransportError
from repro.net.useragent import profile_for
from repro.util import stable_rng

__all__ = [
    "PersonaComparison",
    "persona_experiment",
    "LoginStudy",
    "login_experiment",
    "derive_anchor_for_domain",
]


def derive_anchor_for_domain(world: World, domain: str) -> PriceAnchor:
    """The operator's one-time manual highlight for ``domain``.

    The operator reloads on transient network failures (same bounded
    persistence the backend's fan-out applies).
    """
    vantage = world.vantage_points[0]
    retailer = world.retailer(domain)
    product = retailer.catalog.products[0]
    try:
        response = vantage.fetch_with_retries(
            world.network, f"http://{domain}{product.path}"
        )
    except TransportError as exc:
        raise RuntimeError(
            f"cannot fetch anchor page for {domain}: {exc}"
        ) from exc
    if not response.ok:
        raise RuntimeError(f"cannot fetch anchor page for {domain}")
    document = parse_html(response.body)
    selector = selector_on_day(
        retailer.template, int(world.clock.now // SECONDS_PER_DAY)
    )
    element = Selector.parse(selector).select_one(document)
    if element is None:
        raise RuntimeError(f"cannot locate price on {domain}")
    return derive_anchor(document, element)


def _fixed_location_client(world: World, name: str) -> UserClient:
    """A fresh client pinned to the paper's measurement location (Spain)."""
    return UserClient(
        name=name,
        location=GeoLocation("ES", "Spain", "Barcelona"),
        ip=world.plan.allocate("ES", "Barcelona"),
        profile=profile_for("firefox", "linux"),
    )


def _price_seen_by(
    world: World,
    client: UserClient,
    url: str,
    anchor: PriceAnchor,
    *,
    rounds: int = 1,
) -> Optional[float]:
    """The local-currency price ``client`` sees at ``url`` right now.

    With ``rounds`` > 1 the fetch is repeated and the *minimum* returned --
    the paper's defense against per-request A/B-test noise ("we repeated
    the same set of measurements multiple times").  The minimum is the
    right estimator because A/B treatments only inflate prices, so the
    smallest repeated observation is the underlying base price.
    """
    locale = locale_for_country(client.location.country_code)
    seen: list[float] = []
    for _ in range(rounds):
        response = client.fetch(world.network, url)
        if not response.ok:
            continue
        extracted = extract_price(response.body, anchor, locale_hint=locale)
        if extracted.ok and extracted.amount is not None:
            seen.append(extracted.amount)
    if not seen:
        return None
    return min(seen)


# ----------------------------------------------------------------------
# Persona study
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PersonaComparison:
    """One product's price under both personas."""

    url: str
    domain: str
    affluent_price: Optional[float]
    budget_price: Optional[float]

    @property
    def differs(self) -> bool:
        if self.affluent_price is None or self.budget_price is None:
            return False
        return abs(self.affluent_price - self.budget_price) > 1e-9


def persona_experiment(
    world: World,
    *,
    domains: Optional[Sequence[str]] = None,
    products_per_domain: int = 5,
    personas: tuple[Persona, Persona] = (AFFLUENT, BUDGET),
    seed: int = 2013,
) -> list[PersonaComparison]:
    """Same location, same time, different browsing history: diff prices."""
    domains = list(domains) if domains is not None else list(world.crawled_domains)
    rng = stable_rng(seed, "persona-experiment")

    first, second = personas
    client_a = _fixed_location_client(world, f"persona-{first.name}")
    client_b = _fixed_location_client(world, f"persona-{second.name}")
    train_persona(client_a, first, world.network)
    train_persona(client_b, second, world.network)

    comparisons: list[PersonaComparison] = []
    for domain in domains:
        retailer = world.retailer(domain)
        anchor = derive_anchor_for_domain(world, domain)
        products = retailer.catalog.sample(products_per_domain, rng=rng)
        for product in products:
            url = f"http://{domain}{product.path}"
            price_a = _price_seen_by(world, client_a, url, anchor, rounds=5)
            price_b = _price_seen_by(world, client_b, url, anchor, rounds=5)
            comparisons.append(
                PersonaComparison(
                    url=url,
                    domain=domain,
                    affluent_price=price_a,
                    budget_price=price_b,
                )
            )
    return comparisons


# ----------------------------------------------------------------------
# Login study (Fig. 10)
# ----------------------------------------------------------------------
@dataclass
class LoginStudy:
    """Fig. 10's data: per-product prices per identity."""

    domain: str
    product_urls: list[str] = field(default_factory=list)
    #: identity label ("W/o login", "User A", ...) -> per-product prices.
    series: dict[str, list[Optional[float]]] = field(default_factory=dict)

    def products_with_identity_differences(self) -> int:
        """How many products priced differently for at least one identity."""
        count = 0
        for index in range(len(self.product_urls)):
            prices = {
                round(values[index], 2)
                for values in self.series.values()
                if values[index] is not None
            }
            if len(prices) > 1:
                count += 1
        return count

    def mean_price(self, identity: str) -> float:
        """The average price one identity saw across the product set."""
        values = [v for v in self.series[identity] if v is not None]
        if not values:
            raise ValueError(f"no prices for {identity}")
        return sum(values) / len(values)


def login_experiment(
    world: World,
    *,
    domain: str = "www.amazon.com",
    category: str = "ebooks",
    users: Sequence[str] = ("User A", "User B", "User C"),
    n_products: int = 40,
    seed: int = 2013,
) -> LoginStudy:
    """Fig. 10: price the same ebooks logged out and as each user.

    All measurements run from the same (fixed) location, back-to-back in
    virtual time, mirroring "our measurements are conducted at the same
    time and from the same location".
    """
    retailer = world.retailer(domain)
    if not retailer.supports_login:
        raise ValueError(f"{domain} does not support login")
    ebooks = [p for p in retailer.catalog if p.category == category]
    if not ebooks:
        raise ValueError(f"{domain} sells no {category!r}")
    rng = stable_rng(seed, "login-experiment")
    if len(ebooks) > n_products:
        ebooks = rng.sample(ebooks, n_products)

    anchor = derive_anchor_for_domain(world, domain)
    study = LoginStudy(domain=domain)
    study.product_urls = [f"http://{domain}{p.path}" for p in ebooks]

    identities: list[tuple[str, Optional[str]]] = [("W/o login", None)]
    identities += [(label, label.replace(" ", "").lower()) for label in users]

    for label, account in identities:
        client = _fixed_location_client(world, f"login-study-{label}")
        if account is not None:
            login(client, world.network, domain, account)
        prices: list[Optional[float]] = []
        for url in study.product_urls:
            prices.append(_price_seen_by(world, client, url, anchor))
        study.series[label] = prices
    return study
