"""The built-in scenario matrix: seven adversarial retailer worlds.

Each scenario pairs the adversarial behaviour under test with two
controls -- a plain geo discriminator the pipeline *must* keep finding
(recall) and an honest shop it *must* keep clearing (precision) -- and
records the ground truth the harness scores against.  Worlds are tiny on
purpose: a handful of retailers with small catalogs, no long tail, built
in milliseconds, so the full scenario × executor × memo grid stays
affordable.

Domains use the reserved ``.test`` TLD: these shops exist to attack the
methodology, not to model the paper's real-world roster.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis.detection import DomainTruth
from repro.ecommerce.pricing import PricingPolicy, UniformPricing
from repro.ecommerce.templates import ClassicTemplate
from repro.ecommerce.world import geo_table, mult_policy
from repro.scenarios.behaviors import (
    ChurningTemplate,
    CloakingServer,
    CurrencySwitchServer,
    FlashSale,
    PageCorruptionServer,
    SessionStickyPricing,
    StockoutServer,
)
from repro.scenarios.engine import Scenario, register_scenario, scenario_retailer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ecommerce.world import World

__all__ = ["DEFAULT_SCENARIOS"]


def _geo_policy(seed: int) -> PricingPolicy:
    """The standard planted discriminator: a ~1.35x US->FI geo spread."""
    return mult_policy(
        geo_table(us=1.0, br=1.05, uk=1.12, eu=1.2, fi=1.35), seed=seed
    )


#: Conservative lower bound on the fan-out-visible ratio of
#: :func:`_geo_policy` (true spread 1.35; FX rounding eats a little).
_GEO_MIN_RATIO = 1.2


def _honest(domain: str) -> DomainTruth:
    return DomainTruth(domain=domain, discriminates=False, kind="none")


def _geo_truth(domain: str, kind: str = "geo") -> DomainTruth:
    return DomainTruth(
        domain=domain, discriminates=True, min_ratio=_GEO_MIN_RATIO, kind=kind
    )


# ----------------------------------------------------------------------
# flash-sale: temporal repricing must not read as discrimination
# ----------------------------------------------------------------------
def _mutate_flash_sale(world: "World", seed: int) -> None:
    scenario_retailer(
        world, "www.blitzmart.test",
        FlashSale(UniformPricing(), factor=0.6, period_days=2, seed=seed),
        seed=seed,
    )
    scenario_retailer(
        world, "www.surgeprice.test",
        FlashSale(UniformPricing(), factor=1.45, period_days=2, seed=seed + 1),
        seed=seed,
    )
    scenario_retailer(
        world, "www.steadygeo.test", _geo_policy(seed), seed=seed,
    )
    scenario_retailer(
        world, "www.salegeo.test",
        FlashSale(_geo_policy(seed), factor=0.7, period_days=2, seed=seed + 2),
        seed=seed,
    )


register_scenario(Scenario(
    name="flash-sale",
    description=(
        "Flash sales and demand spikes reprice whole catalogs between "
        "days (up to 1.45x); synchronized fan-outs must stay blind to "
        "them while still catching geo spreads -- including one running "
        "*through* a sale."
    ),
    mutate=_mutate_flash_sale,
    truth=(
        _honest("www.blitzmart.test"),
        _honest("www.surgeprice.test"),
        _geo_truth("www.steadygeo.test"),
        _geo_truth("www.salegeo.test", kind="geo+flash"),
    ),
    crawl_domains=(
        "www.blitzmart.test", "www.surgeprice.test",
        "www.steadygeo.test", "www.salegeo.test",
    ),
))


# ----------------------------------------------------------------------
# template-churn: anchors must survive page redesigns
# ----------------------------------------------------------------------
def _mutate_template_churn(world: "World", seed: int) -> None:
    scenario_retailer(
        world, "www.churnshop.test", _geo_policy(seed), seed=seed,
        template=ChurningTemplate(period_days=1, seed=seed),
    )
    scenario_retailer(
        world, "www.churnhonest.test", UniformPricing(), seed=seed,
        template=ChurningTemplate(period_days=1, seed=seed + 1),
    )
    scenario_retailer(
        world, "www.stablehonest.test", UniformPricing(), seed=seed,
    )


register_scenario(Scenario(
    name="template-churn",
    description=(
        "Retailers swap template families between days, moving the "
        "price anchor; the operator re-derives anchors daily "
        "(reanchor_daily) and detection must survive the churn."
    ),
    mutate=_mutate_template_churn,
    truth=(
        _geo_truth("www.churnshop.test", kind="geo+churn"),
        _honest("www.churnhonest.test"),
        _honest("www.stablehonest.test"),
    ),
    crawl_domains=(
        "www.churnshop.test", "www.churnhonest.test", "www.stablehonest.test",
    ),
    reanchor_daily=True,
))


# ----------------------------------------------------------------------
# stockout-404: intermittent availability must only cost coverage
# ----------------------------------------------------------------------
def _mutate_stockout(world: "World", seed: int) -> None:
    scenario_retailer(
        world, "www.flickerstock.test", _geo_policy(seed), seed=seed,
        server_factory=StockoutServer, stockout_rate=0.35,
    )
    scenario_retailer(
        world, "www.fickleshelf.test", UniformPricing(), seed=seed,
        server_factory=StockoutServer, stockout_rate=0.35,
    )
    scenario_retailer(
        world, "www.steadyshelf.test", UniformPricing(), seed=seed,
    )


register_scenario(Scenario(
    name="stockout-404",
    description=(
        "A third of (product, day) pairs 404 out of stock; failed "
        "observations must degrade coverage, never verdicts."
    ),
    mutate=_mutate_stockout,
    truth=(
        _geo_truth("www.flickerstock.test", kind="geo+stockout"),
        _honest("www.fickleshelf.test"),
        _honest("www.steadyshelf.test"),
    ),
    crawl_domains=(
        "www.flickerstock.test", "www.fickleshelf.test",
        "www.steadyshelf.test",
    ),
    products_per_retailer=4,
))


# ----------------------------------------------------------------------
# cloaking: bot defenses feed heavy crawlers a sanitized catalog
# ----------------------------------------------------------------------
def _mutate_cloaking(world: "World", seed: int) -> None:
    scenario_retailer(
        world, "www.cloakedgeo.test", _geo_policy(seed), seed=seed,
        server_factory=CloakingServer, daily_request_budget=60,
    )
    scenario_retailer(
        world, "www.openhonest.test", UniformPricing(), seed=seed,
    )


register_scenario(Scenario(
    name="cloaking",
    description=(
        "Origins exceeding a per-IP daily request budget get a "
        "uniform-priced cloak page; the politely paced crawl stays "
        "under budget and keeps seeing the real prices, and the memo "
        "treats the stateful server as live-only."
    ),
    mutate=_mutate_cloaking,
    truth=(
        _geo_truth("www.cloakedgeo.test", kind="geo+cloak"),
        _honest("www.openhonest.test"),
    ),
    crawl_domains=("www.cloakedgeo.test", "www.openhonest.test"),
    live_only_domains=frozenset({"www.cloakedgeo.test"}),
))


# ----------------------------------------------------------------------
# session-sticky: personalization the fan-out *should* report
# ----------------------------------------------------------------------
def _mutate_session_sticky(world: "World", seed: int) -> None:
    scenario_retailer(
        world, "www.stickysession.test",
        SessionStickyPricing(UniformPricing(), amplitude=0.15, seed=seed),
        seed=seed,
    )
    scenario_retailer(
        world, "www.freshsession.test", UniformPricing(), seed=seed,
    )


register_scenario(Scenario(
    name="session-sticky",
    description=(
        "Prices stick to sessions (Fig. 10-style personalization): the "
        "fleet's distinct sessions observe real, repeatable variation, "
        "and the identity-reading policy keeps its retailer off the "
        "burst memo."
    ),
    mutate=_mutate_session_sticky,
    truth=(
        DomainTruth(
            domain="www.stickysession.test", discriminates=True,
            min_ratio=1.05, kind="session",
        ),
        _honest("www.freshsession.test"),
    ),
    crawl_domains=("www.stickysession.test", "www.freshsession.test"),
    live_only_domains=frozenset({"www.stickysession.test"}),
))


# ----------------------------------------------------------------------
# currency-redenomination: display currency flips mid-campaign
# ----------------------------------------------------------------------
def _mutate_redenomination(world: "World", seed: int) -> None:
    scenario_retailer(
        world, "www.redenom.test", UniformPricing(), seed=seed,
        home_country="IT",
        server_factory=CurrencySwitchServer, switch_day=156,
    )
    scenario_retailer(
        world, "www.eurogeo.test", _geo_policy(seed), seed=seed,
        home_country="IT",
    )


register_scenario(Scenario(
    name="currency-redenomination",
    description=(
        "A euro shop stops quoting everyone in EUR and geo-localizes "
        "display currencies mid-crawl: displayed numbers jump by full "
        "FX factors while USD pricing never moves; extraction, "
        "conversion, and the currency guard must absorb the jump."
    ),
    mutate=_mutate_redenomination,
    truth=(
        _honest("www.redenom.test"),
        _geo_truth("www.eurogeo.test"),
    ),
    crawl_domains=("www.redenom.test", "www.eurogeo.test"),
))


# ----------------------------------------------------------------------
# page-noise: corrupted pages must die in cleaning, not in verdicts
# ----------------------------------------------------------------------
def _mutate_page_noise(world: "World", seed: int) -> None:
    scenario_retailer(
        world, "www.noisypages.test", UniformPricing(), seed=seed,
        template=ClassicTemplate(),
        server_factory=PageCorruptionServer, corruption_rate=0.4,
    )
    scenario_retailer(
        world, "www.noisygeo.test", _geo_policy(seed), seed=seed,
        template=ClassicTemplate(),
        server_factory=PageCorruptionServer, corruption_rate=0.4,
    )
    scenario_retailer(
        world, "www.cleanpages.test", UniformPricing(), seed=seed,
    )


register_scenario(Scenario(
    name="page-noise",
    description=(
        "40% of (product, day) pairs serve corrupted pages -- absurd "
        "$0.00 prices or unparseable garbage, both under a valid price "
        "anchor; the cleaning guards (non-positive price, "
        "too-few-observations) must eat every one of them."
    ),
    mutate=_mutate_page_noise,
    truth=(
        _honest("www.noisypages.test"),
        _geo_truth("www.noisygeo.test", kind="geo+noise"),
        _honest("www.cleanpages.test"),
    ),
    crawl_domains=(
        "www.noisypages.test", "www.noisygeo.test", "www.cleanpages.test",
    ),
    products_per_retailer=4,
    expected_drop_reasons=("non-positive-price", "too-few-observations"),
))


#: The scenarios shipped with the repo, in the order they tell the story.
DEFAULT_SCENARIOS: tuple[str, ...] = (
    "flash-sale",
    "template-churn",
    "stockout-404",
    "cloaking",
    "session-sticky",
    "currency-redenomination",
    "page-noise",
)
