"""Multi-process shard execution.

:class:`ProcessExecutor` fans a batch's shards out to **dedicated**
persistent worker processes -- worker *i* always executes shard *i*, over
a private pipe, for the executor's whole lifetime.  A worker never
receives live simulation objects -- no DOM trees, servers, or networks
cross the process boundary.  Instead it receives:

* the world's :class:`~repro.ecommerce.world.WorldSpec` (a few config
  primitives, shipped on the worker's first batch only) from which it
  regrows an equivalent world once per process and caches it,
* the shard's :class:`~repro.core.backend.ScheduledCheck` slice (URLs,
  anchors, pre-assigned check ids and start times), and
* **deltas** of everything stateful: per-domain session state (each
  vantage point's cookies for the domain plus the retailer server's
  :meth:`~repro.ecommerce.retailer.RetailerServer.session_state` dict)
  only for domains whose state changed since the worker last saw them,
  and the master burst memo's new entries/demotions for the shard's
  domains.

Because every stochastic draw in the simulation is keyed by request
identity rather than arrival order (see ``docs/ARCHITECTURE.md``), the
rebuilt world plus the restored session state reproduce each check
bit-for-bit.  The worker sends back reports, archives in compact form
(page bodies travel once per worker, by content hash), the post-batch
session-state *deltas*, and what its burst cache learned --
new entries, demotions, counter deltas.  The coordinator folds the
session state into its own world, folds the memo updates into the master
:class:`~repro.core.burstcache.BurstCache` (so the next batch ships them
to every other worker and ``stats()`` counts the whole fleet), and
replays archives in plan order: the next day's batch starts from exactly
the history a sequential run would have written.

All boundary pickles use the highest protocol;
:meth:`ProcessExecutor.boundary_stats` reports how much time and traffic
the boundary actually cost.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import pickle
import sys
import time
import traceback
from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.ecommerce.world import WorldSpec
from repro.exec.local import merge_in_plan_order
from repro.exec.plan import ExecError, make_planner
from repro.net.urls import URL

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ScheduledCheck, SheriffBackend
    from repro.core.reports import PriceCheckReport
    from repro.ecommerce.world import World
    from repro.net.vantage import VantagePoint

__all__ = ["ProcessExecutor"]

_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: Per-process memo of rebuilt worlds: spec -> (world, backend).  A
#: dedicated worker serves many shard batches over a crawl's lifetime;
#: the expensive regrow from the spec happens once per (process, spec).
_WORKER_WORLDS: dict[WorldSpec, tuple] = {}

#: Cumulative world builds in this process -- the coordinator surfaces it
#: per worker (:meth:`ProcessExecutor.worker_worlds_built`) so tests can
#: pin "regrown exactly once".
_WORLDS_BUILT = 0

#: Worker side of the archive dedup: content hashes already shipped to
#: the coordinator.  A page body crosses the boundary at most once per
#: worker process; later archives reference it by hash.
_SHIPPED_HASHES: set[bytes] = set()

#: Worker side of the session-state dedup: domain -> last blob this
#: worker either received from the coordinator or reported back.  Only
#: domains whose post-batch blob differs are returned.
_SESSION_BLOBS: dict[str, bytes] = {}

#: The spec this dedicated worker serves.  A worker belongs to exactly
#: one executor (one world), so the coordinator ships the spec on the
#: first batch only and ``None`` thereafter.
_CURRENT_SPEC: Optional[WorldSpec] = None


def _worker_world(spec: WorldSpec):
    from repro.core.backend import SheriffBackend

    global _WORLDS_BUILT
    cached = _WORKER_WORLDS.get(spec)
    if cached is None:
        world = spec.build()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        cached = (world, backend)
        _WORKER_WORLDS[spec] = cached
        _WORLDS_BUILT += 1
    return cached


def _page_hash(html: str) -> bytes:
    return hashlib.blake2b(html.encode("utf-8"), digest_size=16).digest()


# ----------------------------------------------------------------------
# Session state: the one definition of "state", as a per-domain blob
# ----------------------------------------------------------------------
def _domain_blob(fleet, servers, domain: str) -> bytes:
    """One domain's session state, canonically pickled.

    Blob equality is the boundary's change detector, so both sides must
    build it identically: the fleet's cookie snapshots for the domain in
    fleet order, then the owning server's
    :meth:`~repro.ecommerce.retailer.RetailerServer.session_state` dict
    (``None`` for non-retailer domains).  A stateful server subclass
    extends the SPI once and both sides of the boundary pick it up --
    anything stateful that bypasses the SPI silently diverges between
    worker and coordinator.
    """
    jars = [vantage.jar.snapshot(hosts={domain}) for vantage in fleet]
    server = servers.get(domain)
    state = server.session_state() if server is not None else None
    return pickle.dumps((jars, state), protocol=_PROTOCOL)


def _install_domain_blob(fleet, servers, domain: str, blob: bytes) -> None:
    """Install one domain's session state from its blob (either side)."""
    jars, state = pickle.loads(blob)
    for vantage, snapshot in zip(fleet, jars):
        vantage.jar.clear(domain)
        vantage.jar.restore(snapshot)
    if state is not None:
        server = servers.get(domain)
        if server is not None:
            server.restore_session_state(state)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _run_shard(payload: dict) -> dict:
    """Execute one shard batch in a worker process.

    Returns reports with compact archives (``(vantage, timestamp,
    content hash)`` triples plus any page bodies not yet shipped), the
    post-batch session-state deltas, and the worker cache's drained
    updates.
    """
    global _CURRENT_SPEC
    spec: Optional[WorldSpec] = payload["spec"]
    if spec is None:
        spec = _CURRENT_SPEC
        if spec is None:  # pragma: no cover - coordinator bug
            raise RuntimeError("shard payload omitted the spec before "
                               "this worker ever received one")
    else:
        _CURRENT_SPEC = spec
    tasks: list = payload["tasks"]
    domains: list[str] = payload["domains"]
    world, backend = _worker_world(spec)
    fleet = world.vantage_points
    # Mirror the coordinator's burst-memo configuration; entries and
    # demotions arrive as explicit deltas below.
    memo = payload["burst_memo"]
    cache = backend.burst_cache
    cache.enabled = memo["enabled"]
    cache.validate_fraction = memo["validate_fraction"]
    cache.max_entries_per_domain = memo["max_entries_per_domain"]

    # Fold the master cache's news -- demotions strictly first, so an
    # entry can never survive (or arrive for) a domain another worker
    # proved impure.
    for domain, reason in payload["memo_demotions"].items():
        cache.fold_demotion(domain, reason)
    for domain, key, entry in payload["memo_entries"]:
        cache.fold_entry(backend, domain, key, entry)

    # Install the session-state deltas; untouched domains already hold
    # exactly the state this worker left (or reported) last batch.
    for domain, blob in payload["session"].items():
        _install_domain_blob(fleet, world.servers, domain, blob)
        _SESSION_BLOBS[domain] = blob
    for domain in domains:
        if domain not in _SESSION_BLOBS:
            _SESSION_BLOBS[domain] = _domain_blob(
                fleet, world.servers, domain
            )

    results = []
    new_pages: dict[bytes, str] = {}
    for sched in tasks:
        archives: list[tuple] = []

        def archive(*, check_id, url, domain, vantage, timestamp, html):
            digest = _page_hash(html)
            if digest not in _SHIPPED_HASHES:
                _SHIPPED_HASHES.add(digest)
                new_pages[digest] = html
            archives.append((vantage, timestamp, digest))

        report = backend.run_scheduled_check(sched, fleet, archive)
        results.append((sched.index, report, archives))

    session_out: dict[str, bytes] = {}
    for domain in domains:
        blob = _domain_blob(fleet, world.servers, domain)
        if blob != _SESSION_BLOBS.get(domain):
            session_out[domain] = blob
            _SESSION_BLOBS[domain] = blob
    return {
        "results": results,
        "pages": new_pages,
        "session": session_out,
        "memo": cache.drain_updates(),
        "worlds_built": _WORLDS_BUILT,
    }


def _reset_worker_state() -> None:
    """Start a worker process from a clean slate.

    Under the fork start method the child inherits this module's
    globals from the coordinator process -- including state left behind
    by any in-process `_run_shard` call (tests do this).  An inherited
    `_SHIPPED_HASHES` entry would make the worker skip shipping a page
    body the coordinator never received; an inherited world would carry
    foreign session state.  Everything per-process starts empty.
    """
    global _WORLDS_BUILT, _CURRENT_SPEC
    _WORKER_WORLDS.clear()
    _SHIPPED_HASHES.clear()
    _SESSION_BLOBS.clear()
    _WORLDS_BUILT = 0
    _CURRENT_SPEC = None


def _worker_main(conn) -> None:
    """Dedicated worker loop: receive a payload, run the shard, reply.

    Exceptions travel back pickled (falling back to a stringified
    traceback when the exception itself will not pickle) so the
    coordinator re-raises the real type --
    :class:`~repro.core.burstcache.BurstCacheDivergence` stays loud
    across the boundary.
    """
    _reset_worker_state()
    try:
        while True:
            try:
                blob = conn.recv_bytes()
            except EOFError:
                break
            payload = pickle.loads(blob)
            if payload is None:
                break
            try:
                result = _run_shard(payload)
            except BaseException as exc:  # noqa: BLE001 - relayed, not hidden
                try:
                    reply = pickle.dumps({"error": exc}, protocol=_PROTOCOL)
                except Exception:
                    reply = pickle.dumps(
                        {"error": RuntimeError(traceback.format_exc())},
                        protocol=_PROTOCOL,
                    )
                conn.send_bytes(reply)
                continue
            conn.send_bytes(pickle.dumps(result, protocol=_PROTOCOL))
    finally:
        conn.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------
class _WorkerHandle:
    """The coordinator's ledger of exactly what one worker holds."""

    __slots__ = ("proc", "conn", "session", "held_keys", "demotions",
                 "worlds_built", "spec_sent")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        #: whether the worker has received the world spec (first batch).
        self.spec_sent = False
        #: domain -> session blob the worker currently holds.
        self.session: dict[str, bytes] = {}
        #: domain -> memo keys the worker is believed to hold.  An LRU
        #: eviction on the worker can make this optimistic; the cost of
        #: being wrong is one redundant live fan-out, never wrong bytes.
        self.held_keys: dict[str, set] = {}
        #: demotions the worker already knows about.
        self.demotions: set[str] = set()
        self.worlds_built = 0


class ProcessExecutor:
    """Execute shards in parallel worker processes, merge deterministically.

    The executor holds one dedicated worker process per shard; create it
    once per crawl/campaign (``ExecConfig.create`` does) and
    :meth:`close` it when done -- it is also a context manager.  Requires
    a world built by :func:`~repro.ecommerce.world.build_world` (workers
    regrow it from the spec) and the world's own vantage fleet.
    """

    def __init__(
        self,
        world: "World",
        workers: int = 4,
        *,
        plan=None,
        start_method: Optional[str] = None,
    ) -> None:
        self._world = world
        self._spec = world.spec()
        self.plan = plan or make_planner("cost", workers)
        # fork is the fast path (no re-import) but is only safe where it
        # is the platform default; macOS deliberately switched to spawn
        # (fork-without-exec crashes), so prefer it only on Linux.
        method = start_method or (
            "fork" if sys.platform == "linux" else "spawn"
        )
        ctx = multiprocessing.get_context(method)
        self._handles: list[_WorkerHandle] = []
        for i in range(self.plan.workers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"repro-exec-worker-{i}",
            )
            proc.start()
            child_conn.close()
            self._handles.append(_WorkerHandle(proc, parent_conn))
        self._closed = False
        # Coordinator side of the archive dedup: content hash -> body,
        # across every worker and every batch of this executor.
        self._pages: dict[bytes, str] = {}
        self._batches = 0
        self._payload_ms = 0.0
        self._fold_ms = 0.0
        self._ship_bytes = 0
        self._recv_bytes = 0

    # ------------------------------------------------------------------
    def run(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence["ScheduledCheck"],
        fleet: Sequence["VantagePoint"],
        sink: Optional[Callable[["PriceCheckReport"], None]] = None,
    ) -> list["PriceCheckReport"]:
        """Dispatch shards to the workers and merge results in plan order."""
        expected = [vp.name for vp in self._world.vantage_points]
        if [vp.name for vp in fleet] != expected:
            raise ExecError(
                "ProcessExecutor can only fan out over the world's own "
                "vantage fleet (workers rebuild that fleet from the spec)"
            )
        cache = backend.burst_cache
        shards = self.plan.partition_batch(backend, scheduled)
        t0 = time.perf_counter()
        demoted = cache.demoted_domains()
        sent: list[tuple[int, list["ScheduledCheck"]]] = []
        for shard_index, shard in enumerate(shards):
            if not shard:
                continue
            handle = self._handles[shard_index]
            domains = sorted(
                {URL.parse(sched.request.url).host for sched in shard}
            )
            session: dict[str, bytes] = {}
            for domain in domains:
                blob = _domain_blob(fleet, self._world.servers, domain)
                if handle.session.get(domain) != blob:
                    session[domain] = blob
                    handle.session[domain] = blob
            memo_demotions: dict[str, str] = {}
            memo_entries: list[tuple] = []
            if cache.enabled:
                for domain in domains:
                    if domain in demoted:
                        if domain not in handle.demotions:
                            memo_demotions[domain] = demoted[domain]
                            handle.demotions.add(domain)
                            handle.held_keys.pop(domain, None)
                        continue
                    held = handle.held_keys.setdefault(domain, set())
                    for key, entry in cache.entries_for(domain):
                        if key not in held:
                            memo_entries.append((domain, key, entry))
                            held.add(key)
            payload = {
                # The spec crosses the boundary once per worker.
                "spec": None if handle.spec_sent else self._spec,
                "tasks": shard,
                "domains": domains,
                "burst_memo": {
                    "enabled": cache.enabled,
                    "validate_fraction": cache.validate_fraction,
                    "max_entries_per_domain": cache.max_entries_per_domain,
                },
                "session": session,
                "memo_demotions": memo_demotions,
                "memo_entries": memo_entries,
            }
            blob = pickle.dumps(payload, protocol=_PROTOCOL)
            self._ship_bytes += len(blob)
            handle.conn.send_bytes(blob)
            handle.spec_sent = True
            sent.append((shard_index, shard))
        self._payload_ms += (time.perf_counter() - t0) * 1000.0

        merged: dict[int, tuple["PriceCheckReport", list[dict]]] = {}
        for shard_index, shard in sent:
            handle = self._handles[shard_index]
            try:
                blob = handle.conn.recv_bytes()
            except EOFError:
                raise ExecError(
                    f"worker {shard_index} died mid-batch "
                    f"(exit code {handle.proc.exitcode})"
                ) from None
            self._recv_bytes += len(blob)
            t1 = time.perf_counter()
            result = pickle.loads(blob)
            error = result.get("error")
            if error is not None:
                raise error
            self._pages.update(result["pages"])
            for sched, (index, report, archives) in zip(
                shard, result["results"]
            ):
                url = URL.parse(sched.request.url)
                url_text = str(url)
                merged[index] = (report, [
                    {
                        "check_id": sched.check_id,
                        "url": url_text,
                        "domain": url.host,
                        "vantage": vantage,
                        "timestamp": timestamp,
                        "html": self._pages[digest],
                    }
                    for vantage, timestamp, digest in archives
                ])
            # Fold the shard's post-batch session state back in, so the
            # coordinator's world is as-if it had run the shard itself.
            for domain, state_blob in result["session"].items():
                _install_domain_blob(
                    fleet, self._world.servers, domain, state_blob
                )
                handle.session[domain] = state_blob
            # Fold the worker's memo news into the master cache:
            # demotions first (they kill entries), then entries, then
            # counters -- after which the coordinator's stats() speak
            # for the whole fleet.
            memo = result["memo"]
            for domain, reason in memo["demotions"].items():
                cache.fold_demotion(domain, reason)
                handle.demotions.add(domain)
                handle.held_keys.pop(domain, None)
            for domain, key, entry in memo["entries"]:
                if cache.fold_entry(backend, domain, key, entry):
                    handle.held_keys.setdefault(domain, set()).add(key)
            cache.absorb_counters(memo["counters"])
            handle.worlds_built = result["worlds_built"]
            self._fold_ms += (time.perf_counter() - t1) * 1000.0
        self._batches += 1
        return merge_in_plan_order(backend, scheduled, merged, sink)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def boundary_stats(self) -> dict[str, float]:
        """What the process boundary cost so far (coordinator side).

        ``payload_ms`` is time spent building + serializing + sending
        payloads; ``fold_ms`` is time spent deserializing and folding
        results (session state, memo updates, archive reconstruction);
        ``ship_bytes``/``recv_bytes`` are the raw pickle traffic.
        Divide by ``batches`` for per-day overhead.
        """
        return {
            "batches": self._batches,
            "payload_ms": round(self._payload_ms, 3),
            "fold_ms": round(self._fold_ms, 3),
            "ship_bytes": self._ship_bytes,
            "recv_bytes": self._recv_bytes,
        }

    def worker_worlds_built(self) -> list[int]:
        """Per-worker cumulative world regrows (as of each last batch)."""
        return [handle.worlds_built for handle in self._handles]

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Shut the dedicated workers down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        sentinel = pickle.dumps(None, protocol=_PROTOCOL)
        for handle in self._handles:
            try:
                handle.conn.send_bytes(sentinel)
            except (BrokenPipeError, OSError):
                pass
        for handle in self._handles:
            handle.proc.join(timeout=10)
            if handle.proc.is_alive():  # pragma: no cover - defensive
                handle.proc.terminate()
                handle.proc.join(timeout=10)
            handle.conn.close()

    def __enter__(self) -> "ProcessExecutor":
        """Context-manager entry: the executor itself."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: release the workers."""
        self.close()

    def __repr__(self) -> str:
        return f"ProcessExecutor(workers={self.plan.workers})"
