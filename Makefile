# Developer entry points.  Everything runs from the repo root with the
# in-tree package (PYTHONPATH=src); no installation step.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test docs-check bench bench-analysis bench-campaign check examples

# Tier-1: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# The full gate in one command: tier-1 tests + docs freshness.
check: test docs-check

# Docs cannot rot: every symbol and CLI flag named in docs/API.md must
# resolve against the live code.
docs-check:
	$(PYTHON) -m pytest tests/test_docs_api.py -q

# Refresh benchmarks/BENCH_pipeline.json (per-check, crawl/campaign
# throughput, workers scaling curve, analysis aggregation).
bench:
	$(PYTHON) benchmarks/run_bench.py

# Just the columnar-vs-list analysis aggregation bench (100K synthetic
# reports); other entries in BENCH_pipeline.json are preserved.
bench-analysis:
	$(PYTHON) benchmarks/run_bench.py --only analysis_aggregation

# Just the heavy-traffic campaign bench (100K checks, burst memo on/off,
# subprocess-isolated peak RSS); other entries are preserved.  Tune with
# e.g. `make bench-campaign CAMPAIGN_CHECKS=200000`.
CAMPAIGN_CHECKS ?= 100000
bench-campaign:
	$(PYTHON) benchmarks/run_bench.py --only campaign_scaling \
		--campaign-checks $(CAMPAIGN_CHECKS)

# Run every example (docs/EXAMPLES.md shows expected output).
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crowd_campaign.py
	$(PYTHON) examples/systematic_crawl.py
	$(PYTHON) examples/currency_guard_demo.py
	$(PYTHON) examples/kindle_login_study.py
