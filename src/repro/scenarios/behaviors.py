"""Adversarial retailer behaviours: the moves a hostile world makes.

Each class here is one way a real retailer (or its infrastructure) can
fight the measurement methodology -- pricing that moves in time, pages
whose structure churns, stock that vanishes, bot defenses that cloak,
prices that stick to sessions, currencies that switch mid-campaign, and
plain page corruption.  They compose with the ordinary
:mod:`repro.ecommerce` machinery: pricing behaviours are
:class:`~repro.ecommerce.pricing.PricingPolicy` wrappers (with honest
``signals()`` declarations, so the burst memo stays sound by the usual
contract), template behaviours implement
:class:`~repro.ecommerce.templates.PageTemplate`, and server behaviours
subclass :class:`~repro.ecommerce.retailer.RetailerServer`.

Soundness notes, per behaviour, live on the classes -- the scenario
matrix (:mod:`repro.scenarios.harness`) asserts them: every behaviour
must leave executor byte-identity intact, and must either stay
signature-pure (memoizable) or make the burst memo demote its retailer
to the live path.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.ecommerce.catalog import Product
from repro.ecommerce.pricing import (
    PricingContext,
    PricingPolicy,
    UniformPricing,
    signals_read,
)
from repro.ecommerce.retailer import Retailer, RetailerServer, SignalProfile
from repro.ecommerce.templates import (
    TEMPLATE_FAMILIES,
    PageTemplate,
    ProductView,
)
from repro.htmlmodel.dom import Document
from repro.net.clock import SECONDS_PER_DAY
from repro.net.http import HttpRequest, HttpResponse
from repro.util import stable_hash, stable_uniform

__all__ = [
    "FlashSale",
    "SessionStickyPricing",
    "ChurningTemplate",
    "StockoutServer",
    "CloakingServer",
    "CurrencySwitchServer",
    "PageCorruptionServer",
]


# ----------------------------------------------------------------------
# Pricing behaviours
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FlashSale:
    """Flash sales / temporal price spikes around an inner policy.

    Every ``period_days``-th day (offset keyed by the seed) the price of
    every product is multiplied by ``factor`` -- a deep sale (< 1) or a
    demand spike (> 1).  The move is *uniform across locations*, so a
    synchronized fan-out sees no variation from it; naive cross-day
    comparisons see swings of ``factor``.  Declares ``day_index``, so
    memoized bursts stay keyed per day and replay the sale correctly.
    """

    inner: PricingPolicy
    factor: float = 0.7
    period_days: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.factor <= 0:
            raise ValueError("factor must be positive")
        if self.period_days < 2:
            raise ValueError("period_days must be >= 2 (some days off-sale)")

    def sale_on(self, day_index: int) -> bool:
        """Is the flash sale live on this day?"""
        offset = stable_hash(self.seed, "flash-sale-offset") % self.period_days
        return day_index % self.period_days == offset

    def signals(self) -> Optional[frozenset[str]]:
        """Inner signals plus the request day the sale schedule keys on."""
        inner = signals_read(self.inner)
        if inner is None:
            return None
        return inner | {"day_index"}

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        base = self.inner.price(product, ctx)
        if self.sale_on(ctx.day_index):
            return base * self.factor
        return base


@dataclass(frozen=True)
class SessionStickyPricing:
    """Per-session price levels that stick for the session's lifetime.

    Each identity (login id or anonymous session cookie) hashes to a
    stable point of ``1 ± amplitude`` applied on top of the inner policy
    -- personalization in the Fig. 10 sense: prices differ *between
    users* and stay put for each user.  Distinct vantage sessions land
    on distinct levels, so the fan-out observes real variation (this is
    discrimination, and the paper reports exactly this kind).

    Declares ``identity`` -- a non-capturable signal -- so the burst
    memo marks the retailer live-only: response bytes depend on session
    cookies a fan-out signature cannot see.
    """

    inner: PricingPolicy
    amplitude: float = 0.12
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.amplitude < 1.0:
            raise ValueError("amplitude must be in (0, 1)")

    def signals(self) -> Optional[frozenset[str]]:
        """Inner signals plus the requester identity levels stick to."""
        inner = signals_read(self.inner)
        if inner is None:
            return None
        return inner | {"identity"}

    def price(self, product: Product, ctx: PricingContext) -> float:
        """The USD price this policy charges ``ctx`` for ``product``."""
        base = self.inner.price(product, ctx)
        identity = ctx.identity or "anonymous"
        unit = stable_hash(self.seed, identity, "session-level") / 2**64
        return base * (1.0 - self.amplitude + 2.0 * self.amplitude * unit)


# ----------------------------------------------------------------------
# Template behaviour
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ChurningTemplate:
    """A retailer that redesigns its pages every ``period_days`` days.

    The rendered family rotates through ``families`` deterministically,
    so a price anchor derived on one day stops matching after the next
    churn -- the §2.2 "different retailers have different web templates"
    problem, made temporal.  Detection survives only if the operator
    re-derives anchors when the template changes
    (``Scenario.reanchor_daily``); the matrix asserts exactly that.

    Rendering is a pure function of the view (whose ``day_index`` the
    server fills from the request day), so churned pages remain
    signature-pure and memoizable per day.
    """

    families: tuple[PageTemplate, ...] = TEMPLATE_FAMILIES
    period_days: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.families) < 2:
            raise ValueError("churn needs at least two template families")
        if self.period_days < 1:
            raise ValueError("period_days must be >= 1")

    @property
    def name(self) -> str:
        return "churning"

    @property
    def price_selector(self) -> str:
        """The day-0 family's selector (ground truth *for day 0 only*)."""
        return self.family_for_day(0).price_selector

    def family_for_day(self, day_index: int) -> PageTemplate:
        """The family served on ``day_index`` (guaranteed to rotate)."""
        offset = stable_hash(self.seed, "churn-offset") % len(self.families)
        index = (day_index // self.period_days + offset) % len(self.families)
        return self.families[index]

    def selector_for_day(self, day_index: int) -> str:
        """The ground-truth price selector on ``day_index``."""
        return self.family_for_day(day_index).price_selector

    def render(self, view: ProductView) -> Document:
        """Render one product page with the family of the view's day."""
        return self.family_for_day(view.day_index).render(view)


# ----------------------------------------------------------------------
# Server behaviours
# ----------------------------------------------------------------------
class StockoutServer(RetailerServer):
    """Intermittent stockouts: product pages 404 on a (sku, day) subset.

    A deterministic ``stockout_rate`` fraction of (product, day) pairs is
    out of stock; requests for them get 404 for the whole day, from every
    vantage point.  Response bytes stay a pure function of (url, day), so
    the burst memo remains sound: a fully-404 burst archives nothing and
    is never stored, and day-keyed entries can never replay across the
    stock boundary.
    """

    def __init__(
        self,
        retailer: Retailer,
        *,
        geoip,
        rates,
        seed: int = 0,
        stockout_rate: float = 0.3,
    ) -> None:
        if not 0.0 <= stockout_rate < 1.0:
            raise ValueError("stockout_rate must be in [0, 1)")
        super().__init__(retailer, geoip=geoip, rates=rates, seed=seed)
        self.stockout_rate = stockout_rate

    def stocked_out(self, sku: str, day_index: int) -> bool:
        """Is ``sku`` out of stock on ``day_index``?"""
        draw = stable_uniform(
            0.0, 1.0, self._seed, self.retailer.domain, sku, day_index,
            "stockout",
        )
        return draw < self.stockout_rate

    def handle(self, request: HttpRequest) -> HttpResponse:
        """404 out-of-stock product pages; everything else as usual."""
        product = self.retailer.catalog.by_path(request.url.path)
        if product is not None:
            day_index = int(request.timestamp // SECONDS_PER_DAY)
            if self.stocked_out(product.sku, day_index):
                self._request_count += 1
                return HttpResponse.not_found(
                    f"{product.sku} is out of stock on {self.retailer.domain}"
                )
        return super().handle(request)


class CloakingServer(RetailerServer):
    """Bot cloaking: high-request-rate origins get a sanitized catalog.

    Real retailers detect scrapers by per-origin request rate and serve
    them different content.  Here, once an IP exceeds
    ``daily_request_budget`` requests within one virtual day, the rest of
    its day is served from a *cloaked* retailer -- same catalog and
    template, but priced by ``cloaked_policy`` (uniform by default), so a
    flagged crawler sees an honest shop.  A politely paced crawl stays
    under the budget and keeps seeing the truth; an aggressive one gets
    fed the lie (the matrix asserts both sides).

    Responses depend on mutable per-IP history, which no fan-out
    signature can capture, so :meth:`signature_profile` reports the
    server unmemoizable -- the burst memo must keep it live.  The per-IP
    counters are session state: they cross the executor process boundary
    through :meth:`session_state`, keeping shard execution
    byte-identical.
    """

    def __init__(
        self,
        retailer: Retailer,
        *,
        geoip,
        rates,
        seed: int = 0,
        daily_request_budget: int = 50,
        cloaked_policy: Optional[PricingPolicy] = None,
    ) -> None:
        if daily_request_budget < 1:
            raise ValueError("daily_request_budget must be >= 1")
        super().__init__(retailer, geoip=geoip, rates=rates, seed=seed)
        self.daily_request_budget = daily_request_budget
        self._cloaked_retailer = replace(
            retailer, policy=cloaked_policy or UniformPricing()
        )
        self._ip_day_counts: dict[tuple[str, int], int] = {}
        self._cloaked_served = 0

    @property
    def cloaked_served(self) -> int:
        """Requests answered with the cloaked catalog so far."""
        return self._cloaked_served

    def signature_profile(self) -> Optional[SignalProfile]:
        """``None``: responses read per-IP history no signature captures."""
        return None

    def session_state(self) -> dict:
        """Base state plus the per-IP rate counters cloaking keys on."""
        state = super().session_state()
        state["ip_day_counts"] = dict(self._ip_day_counts)
        state["cloaked_served"] = self._cloaked_served
        return state

    def restore_session_state(self, state: dict) -> None:
        """Install state captured by :meth:`session_state`."""
        super().restore_session_state(state)
        self._ip_day_counts = dict(state["ip_day_counts"])
        self._cloaked_served = state["cloaked_served"]

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Count the origin; cloak it once it exceeds the daily budget."""
        day_index = int(request.timestamp // SECONDS_PER_DAY)
        key = (request.client_ip, day_index)
        count = self._ip_day_counts.get(key, 0) + 1
        self._ip_day_counts[key] = count
        if len(self._ip_day_counts) > 4096:  # drop spent days, keep today
            self._ip_day_counts = {
                k: v for k, v in self._ip_day_counts.items()
                if k[1] >= day_index
            }
        if count > self.daily_request_budget:
            self._cloaked_served += 1
            honest = self.retailer
            self.retailer = self._cloaked_retailer
            try:
                return super().handle(request)
            finally:
                self.retailer = honest
        return super().handle(request)


class CurrencySwitchServer(RetailerServer):
    """A retailer that redenominates its displayed prices mid-campaign.

    Before ``switch_day`` every visitor sees the shop's home currency;
    from ``switch_day`` on, prices are geo-localized into the visitor's
    currency -- so the *displayed* numbers jump by a full FX factor
    between two crawl days while the underlying USD pricing never moves.
    Extraction, conversion, and the dataset-wide currency guard must
    absorb the jump without manufacturing variation.

    The flip is keyed purely on the request day (always part of a burst
    signature), so the server stays memoizable and sound.
    """

    def __init__(
        self,
        retailer: Retailer,
        *,
        geoip,
        rates,
        seed: int = 0,
        switch_day: int = 0,
    ) -> None:
        super().__init__(
            retailer if retailer.localizes_currency
            else replace(retailer, localizes_currency=True),
            geoip=geoip, rates=rates, seed=seed,
        )
        self.switch_day = switch_day
        self._localized = self.retailer
        self._home_only = replace(self.retailer, localizes_currency=False)

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve home-currency pages before the switch, localized after."""
        day_index = int(request.timestamp // SECONDS_PER_DAY)
        self.retailer = (
            self._localized if day_index >= self.switch_day
            else self._home_only
        )
        return super().handle(request)


#: Corrupted-page flavours served by :class:`PageCorruptionServer`.  Both
#: carry the classic-family price anchor so the backend's extraction
#: engages (and must then be caught by cleaning): the zero flavour
#: parses to a non-positive price, the garbage flavour fails to parse.
_ZERO_PRICE_PAGE = (
    "<html><body><div class='price-box'>"
    "<span id='product-price' class='price'>$0.00</span>"
    "</div></body></html>"
)
_GARBAGE_PAGE = (
    "<html><body><div class='price-box'>"
    "<span id='product-price' class='price'>price unavailable - call us"
    "</span></div></body></html>"
)


class PageCorruptionServer(RetailerServer):
    """Serves corrupted product pages for a deterministic (sku, day) subset.

    Models broken deploys and anti-scraping noise: on a ``corruption_rate``
    fraction of (product, day) pairs the shop answers HTTP 200 with a
    mangled page -- half the time a parseable-but-absurd ``$0.00`` price,
    half the time unparseable garbage.  Both flavours keep the classic
    template's ``#product-price`` anchor (pair this server with
    :class:`~repro.ecommerce.templates.ClassicTemplate`), so extraction
    runs and the *cleaning stage* has to do the catching: zero prices die
    on the non-positive guard, garbage dies on too-few-observations.

    Corruption is a pure function of (url, day): memoization stays sound
    (a fully-corrupted burst is archived and replayable like any other).
    """

    def __init__(
        self,
        retailer: Retailer,
        *,
        geoip,
        rates,
        seed: int = 0,
        corruption_rate: float = 0.3,
    ) -> None:
        if not 0.0 <= corruption_rate < 1.0:
            raise ValueError("corruption_rate must be in [0, 1)")
        super().__init__(retailer, geoip=geoip, rates=rates, seed=seed)
        self.corruption_rate = corruption_rate

    def corruption_for(self, sku: str, day_index: int) -> Optional[str]:
        """The corrupted body served for (sku, day), or ``None`` if clean."""
        draw = stable_uniform(
            0.0, 1.0, self._seed, self.retailer.domain, sku, day_index,
            "corruption",
        )
        if draw >= self.corruption_rate:
            return None
        return _ZERO_PRICE_PAGE if draw < self.corruption_rate / 2 else _GARBAGE_PAGE

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Serve the day's corruption for affected products, else normal."""
        product = self.retailer.catalog.by_path(request.url.path)
        if product is not None:
            day_index = int(request.timestamp // SECONDS_PER_DAY)
            body = self.corruption_for(product.sku, day_index)
            if body is not None:
                self._request_count += 1
                return HttpResponse.html(body)
        return super().handle(request)
