"""Measurement vantage points.

A :class:`VantagePoint` is a complete simulated client: a geo-located IP
address, a browser profile, and a cookie jar.  The standard fleet built by
:func:`standard_vantage_points` matches the 14 locations of the paper's
Fig. 7:

    Belgium - Liege, Brazil - Sao Paulo, Finland - Tampere,
    Germany - Berlin, Spain (Linux,FF), Spain (Mac,Safari),
    Spain (Win,Chrome), UK - London, USA - Boston, USA - Chicago,
    USA - Lincoln, USA - Los Angeles, USA - New York, USA - Albany.

The three Spain points share a city (Barcelona) and differ only in browser
configuration, mirroring the paper's controlled browser experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.cookiejar import CookieJar
from repro.net.geoip import GeoLocation, IPAddressPlan
from repro.net.http import Headers, HttpRequest, HttpResponse
from repro.net.transport import Network, TransportError
from repro.net.urls import URL
from repro.net.useragent import BrowserProfile, profile_for

__all__ = ["VantagePoint", "standard_vantage_points", "VANTAGE_SPECS"]


@dataclass
class VantagePoint:
    """A measurement client at a fixed location with a fixed browser."""

    name: str
    location: GeoLocation
    ip: str
    profile: BrowserProfile
    jar: CookieJar = field(default_factory=CookieJar)

    def build_request(
        self,
        url: URL | str,
        *,
        referer: Optional[str] = None,
        now: float = 0.0,
    ) -> HttpRequest:
        """An HTTP GET for ``url`` carrying this point's identity."""
        if isinstance(url, str):
            url = URL.parse(url)  # memoized; bursts re-fetch the same URI
        # Fresh header map: plain adds (no duplicates to replace yet).
        headers = Headers()
        headers.add("Host", url.host)
        headers.add("User-Agent", self.profile.user_agent)
        headers.add("Accept", "text/html,application/xhtml+xml")
        headers.add("Accept-Language", self.profile.accept_language)
        cookie = self.jar.header_for(url, now=now)
        if cookie:
            headers.add("Cookie", cookie)
        if referer:
            headers.add("Referer", referer)
        return HttpRequest(
            method="GET",
            url=url,
            headers=headers,
            client_ip=self.ip,
            timestamp=now,
        )

    def fetch(
        self,
        network: Network,
        url: URL | str,
        *,
        referer: Optional[str] = None,
    ) -> HttpResponse:
        """Fetch ``url`` through ``network``, updating the cookie jar."""
        request = self.build_request(url, referer=referer, now=network.clock.now)
        response = network.fetch(request)
        target = response.url or (URL.parse(url) if isinstance(url, str) else url)
        self.jar.update_from_response(target, response, now=network.clock.now)
        return response

    def fetch_with_retries(
        self,
        network: Network,
        url: URL | str,
        *,
        referer: Optional[str] = None,
        attempts: int = 3,
        backoff_base_s: float = 0.0,
        backoff_cap_s: float = 30.0,
    ) -> HttpResponse:
        """Fetch with bounded persistence against transient failures.

        The one retry policy shared by every "operator reloads the page"
        flow (crawl-plan preparation, anchor derivation); re-raises the
        last :class:`TransportError` when every attempt is lost.  Each
        attempt sends at a later virtual instant (a timeout burns time),
        so its loss/latency draws are fresh.

        ``backoff_base_s > 0`` additionally sleeps the *virtual* clock
        ``min(backoff_cap_s, base * 2**(attempt-1))`` seconds before each
        retry -- exponential backoff that stays deterministic: it
        advances the same (possibly burst-forked) clock the requests are
        stamped from, so every retry's send instant -- and with it the
        request-keyed loss/latency draws -- is a pure function of the
        schedule and the backoff knobs, never of wall clock.  The
        default (``0.0``) is byte-identical to the historical behavior.
        """
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if backoff_base_s < 0 or backoff_cap_s < 0:
            raise ValueError("backoff must be >= 0 seconds")
        failure: Optional[TransportError] = None
        for attempt in range(attempts):
            if failure is not None and backoff_base_s > 0:
                network.clock.advance(
                    min(backoff_cap_s, backoff_base_s * 2 ** (attempt - 1))
                )
            try:
                return self.fetch(network, url, referer=referer)
            except TransportError as exc:
                failure = exc
        assert failure is not None
        raise failure

    def __str__(self) -> str:
        return self.name


#: (name, country_code, city, browser, os) for the 14 standard points.
VANTAGE_SPECS: tuple[tuple[str, str, str, str, str], ...] = (
    ("Belgium - Liege", "BE", "Liege", "firefox", "linux"),
    ("Brazil - Sao Paulo", "BR", "Sao Paulo", "firefox", "linux"),
    ("Finland - Tampere", "FI", "Tampere", "firefox", "linux"),
    ("Germany - Berlin", "DE", "Berlin", "firefox", "linux"),
    ("Spain (Linux,FF)", "ES", "Barcelona", "firefox", "linux"),
    ("Spain (Mac,Safari)", "ES", "Barcelona", "safari", "macos"),
    ("Spain (Win,Chrome)", "ES", "Barcelona", "chrome", "windows"),
    ("UK - London", "GB", "London", "firefox", "linux"),
    ("USA - Boston", "US", "Boston", "firefox", "linux"),
    ("USA - Chicago", "US", "Chicago", "firefox", "linux"),
    ("USA - Lincoln", "US", "Lincoln", "firefox", "linux"),
    ("USA - Los Angeles", "US", "Los Angeles", "firefox", "linux"),
    ("USA - New York", "US", "New York", "firefox", "linux"),
    ("USA - Albany", "US", "Albany", "firefox", "linux"),
)


def standard_vantage_points(plan: IPAddressPlan) -> list[VantagePoint]:
    """Build the paper's 14-point measurement fleet against ``plan``."""
    points = []
    for name, code, city, browser, os_name in VANTAGE_SPECS:
        location = GeoLocation(code, _country_name(code), city)
        points.append(
            VantagePoint(
                name=name,
                location=location,
                ip=plan.allocate(code, city),
                profile=profile_for(browser, os_name),
            )
        )
    return points


def _country_name(code: str) -> str:
    from repro.net.geoip import COUNTRY_NAMES

    return COUNTRY_NAMES[code]
