"""Selector-guided price extraction from fetched pages.

Step (iv) of §3.1: "given the user has highlighted the price on the page,
we use that information to extract the price from the downloaded page at
different locations."

The downloaded copy is *not* the page the user saw: the amount differs, the
currency usually differs, number formatting differs, and the structure may
have shifted.  Extraction therefore:

1. resolves the anchor -- selector first, structural node path second;
2. parses the node's text with the locale-aware number parser
   (:func:`repro.ecommerce.localization.parse_price`);
3. reports *how* it succeeded (``method``) so analysis can quantify anchor
   robustness (one of the DESIGN.md ablations).

Failures return an :class:`ExtractedPrice` with ``ok=False`` and a reason
rather than raising: a fan-out must tolerate one bad vantage page.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional

from repro.core.highlight import PriceAnchor
from repro.ecommerce.localization import Locale, PriceFormatError, parse_price
from repro.htmlmodel.dom import Document, Element, NodePath
from repro.htmlmodel.parser import parse_html, parse_html_cached
from repro.htmlmodel.selectors import Selector, SelectorError

__all__ = ["ExtractedPrice", "extract_price", "extract_price_from_document"]


@lru_cache(maxsize=2048)
def _compiled_selector(text: str) -> Optional[Selector]:
    """Compile an anchor selector once per distinct string.

    A fan-out applies the same anchor to every vantage page of every check;
    re-tokenizing the selector grammar each time is pure waste.  Returns
    ``None`` for unparseable selectors (the anchor then falls back to its
    structural path).
    """
    try:
        return Selector.parse(text)
    except SelectorError:
        return None


@lru_cache(maxsize=2048)
def _parsed_path_steps(text: str) -> Optional[tuple[int, ...]]:
    """Parse a ``/0/1/3`` structural path once per distinct string."""
    try:
        return NodePath.parse(text).steps
    except ValueError:
        return None


@dataclass(frozen=True)
class ExtractedPrice:
    """The outcome of one extraction attempt."""

    ok: bool
    amount: Optional[float] = None
    currency: Optional[str] = None  # ISO code, None when symbol-less
    raw_text: str = ""
    method: str = ""  # "selector" | "node-path" | ""
    error: str = ""

    @classmethod
    def failure(cls, error: str) -> "ExtractedPrice":
        return cls(ok=False, error=error)


def extract_price(
    html: str,
    anchor: PriceAnchor,
    *,
    locale_hint: Optional[Locale] = None,
    cache: bool = True,
) -> ExtractedPrice:
    """Extract the anchored price from an HTML string.

    With ``cache`` (the default) the parse goes through the shared
    content-hash LRU (:func:`repro.htmlmodel.parser.parse_html_cached`):
    extraction never mutates the tree, so identical page strings -- store
    replays, promo-free renders, repeated crowd uploads -- parse once.
    """
    try:
        document = parse_html_cached(html) if cache else parse_html(html)
    except Exception as exc:  # parser recovers from almost anything
        return ExtractedPrice.failure(f"unparseable page: {exc}")
    return extract_price_from_document(document, anchor, locale_hint=locale_hint)


def extract_price_from_document(
    document: Document,
    anchor: PriceAnchor,
    *,
    locale_hint: Optional[Locale] = None,
) -> ExtractedPrice:
    """Extract from an already-parsed document (crawler fast path)."""
    element, method = _resolve(document, anchor)
    if element is None:
        return ExtractedPrice.failure("anchor matched nothing")
    text = element.text(strip=True)
    if not text:
        return ExtractedPrice.failure(f"anchored node is empty (via {method})")
    try:
        parsed = parse_price(text, locale_hint=locale_hint)
    except PriceFormatError as exc:
        return ExtractedPrice.failure(f"unparseable price text {text!r}: {exc}")
    return ExtractedPrice(
        ok=True,
        amount=parsed.amount,
        currency=parsed.currency,
        raw_text=text,
        method=method,
    )


def _resolve(
    document: Document, anchor: PriceAnchor
) -> tuple[Optional[Element], str]:
    """Selector first, structural path as fallback."""
    if anchor.selector:
        selector = _compiled_selector(anchor.selector)
        matches = selector.select(document) if selector is not None else []
        if len(matches) == 1:
            return matches[0], "selector"
        if len(matches) > 1:
            # Ambiguity on a foreign render: prefer the match whose position
            # is closest to the recorded structural path.
            target = _path_steps(anchor)
            if target is not None:
                best = min(
                    matches,
                    key=lambda el: _path_distance(el.node_path().steps, target),
                )
                return best, "selector"
            return matches[0], "selector"
    target = _path_steps(anchor)
    if target is not None:
        element = document.find_by_path(NodePath(target))
        if element is not None:
            return element, "node-path"
    return None, ""


def _path_steps(anchor: PriceAnchor) -> Optional[tuple[int, ...]]:
    return _parsed_path_steps(anchor.node_path)


def _path_distance(a: tuple[int, ...], b: tuple[int, ...]) -> int:
    """A cheap tree-edit proxy: prefix mismatch position + length gap."""
    common = 0
    for x, y in zip(a, b):
        if x != y:
            break
        common += 1
    return (len(a) - common) + (len(b) - common)
