"""Kill-safe runs: day-segment spill, fsync'd manifests, exact resume.

Campaigns and crawls passed a ``checkpoint_dir`` spill each completed
day-segment to disk (columnar JSONL, the :mod:`repro.io` layout) behind a
fsync'd manifest; ``resume=True`` regrows the world from its
:class:`~repro.ecommerce.world.WorldSpec`, restores every mutable cursor
(:mod:`repro.checkpoint.state`), skips committed segments, and continues
to output byte-identical to an uninterrupted run.  See
``docs/ARCHITECTURE.md`` (checkpoint/manifest contract) and
``docs/TESTING.md`` (the crash-injection harness that proves it).
"""

from repro.checkpoint.barriers import (
    BARRIER_NAMES,
    MANIFEST_MID_WRITE,
    MID_DAY,
    SEGMENT_COMMITTED,
    SEGMENT_FLUSH,
    WORKER_RESPAWN,
    barrier,
    install_barrier_hook,
)
from repro.checkpoint.manifest import (
    CheckpointError,
    CheckpointMismatchError,
    Manifest,
    ManifestError,
    SegmentDigestError,
    SegmentMissingError,
)
from repro.checkpoint.runner import RunCheckpoint, run_fingerprint
from repro.checkpoint.state import (
    capture_run_state,
    decode_state,
    encode_state,
    restore_run_state,
)

__all__ = [
    "BARRIER_NAMES",
    "MANIFEST_MID_WRITE",
    "MID_DAY",
    "SEGMENT_COMMITTED",
    "SEGMENT_FLUSH",
    "WORKER_RESPAWN",
    "CheckpointError",
    "CheckpointMismatchError",
    "Manifest",
    "ManifestError",
    "RunCheckpoint",
    "SegmentDigestError",
    "SegmentMissingError",
    "barrier",
    "capture_run_state",
    "decode_state",
    "encode_state",
    "install_barrier_hook",
    "restore_run_state",
    "run_fingerprint",
]
