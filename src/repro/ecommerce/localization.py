"""Locale-specific price formatting and parsing.

The paper names "diverse number and date formats across countries" as a
primary noise source in the crowdsourced dataset (§3.2) and "pricing format
differences" as a challenge (§2.2).  This module is both sides of that coin:

* retailers *format* prices for the visitor's locale
  (``$1,234.56`` / ``1.234,56 €`` / ``1 234,56 €`` / ``R$ 1.234,56``),
* $heriff's extraction stage *parses* price strings back into numbers
  without knowing the locale a priori, resolving the classic
  ``1.234`` ambiguity (one-point-two-three-four or twelve-hundred?) with
  explicit, testable rules.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.fx.currencies import CURRENCIES, Currency, currency_for_country

__all__ = [
    "Locale",
    "LOCALES",
    "locale_for_country",
    "format_price",
    "parse_price",
    "ParsedPrice",
    "PriceFormatError",
]


class PriceFormatError(ValueError):
    """Raised when a string cannot be understood as a price."""


@dataclass(frozen=True)
class Locale:
    """Number-format conventions of one market."""

    code: str  # e.g. "en-US"
    decimal_sep: str
    group_sep: str
    currency: Currency
    symbol_before: bool
    symbol_space: bool = False  # space between symbol and number

    def format_amount(self, amount: float, *, decimals: int = 2) -> str:
        """Format a bare number with this locale's separators."""
        if amount < 0:
            raise ValueError("prices are non-negative")
        quantized = f"{amount:.{decimals}f}"
        if decimals:
            integer_part, fraction = quantized.split(".")
        else:
            integer_part, fraction = quantized, ""
        groups: list[str] = []
        while len(integer_part) > 3:
            groups.insert(0, integer_part[-3:])
            integer_part = integer_part[:-3]
        groups.insert(0, integer_part)
        body = self.group_sep.join(groups)
        if fraction:
            body = f"{body}{self.decimal_sep}{fraction}"
        return body

    def format_price(self, amount: float, *, decimals: int = 2) -> str:
        """Format an amount with the locale's currency symbol."""
        body = self.format_amount(amount, decimals=decimals)
        space = " " if self.symbol_space else ""
        if self.symbol_before:
            return f"{self.currency.symbol}{space}{body}"
        return f"{body}{space}{self.currency.symbol}"


#: country code -> locale.  Separator conventions follow CLDR.
LOCALES: dict[str, Locale] = {
    "US": Locale("en-US", ".", ",", CURRENCIES["USD"], symbol_before=True),
    "GB": Locale("en-GB", ".", ",", CURRENCIES["GBP"], symbol_before=True),
    "CA": Locale("en-CA", ".", ",", CURRENCIES["CAD"], symbol_before=True),
    "AU": Locale("en-AU", ".", ",", CURRENCIES["AUD"], symbol_before=True),
    "IE": Locale("en-IE", ".", ",", CURRENCIES["EUR"], symbol_before=True),
    "DE": Locale("de-DE", ",", ".", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "ES": Locale("es-ES", ",", ".", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "IT": Locale("it-IT", ",", ".", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "FR": Locale("fr-FR", ",", " ", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "BE": Locale("fr-BE", ",", ".", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "NL": Locale("nl-NL", ",", ".", CURRENCIES["EUR"], symbol_before=True, symbol_space=True),
    "PT": Locale("pt-PT", ",", " ", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "GR": Locale("el-GR", ",", ".", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "FI": Locale("fi-FI", ",", " ", CURRENCIES["EUR"], symbol_before=False, symbol_space=True),
    "BR": Locale("pt-BR", ",", ".", CURRENCIES["BRL"], symbol_before=True, symbol_space=True),
    "PL": Locale("pl-PL", ",", " ", CURRENCIES["PLN"], symbol_before=False, symbol_space=True),
    "SE": Locale("sv-SE", ",", " ", CURRENCIES["SEK"], symbol_before=False, symbol_space=True),
    "CH": Locale("de-CH", ".", "'", CURRENCIES["CHF"], symbol_before=True, symbol_space=True),
    "JP": Locale("ja-JP", ".", ",", CURRENCIES["JPY"], symbol_before=True),
    "IN": Locale("en-IN", ".", ",", CURRENCIES["INR"], symbol_before=True),
}


def locale_for_country(country_code: str) -> Locale:
    """The display locale of ``country_code`` (defaults to en-US)."""
    return LOCALES.get(country_code.upper(), LOCALES["US"])


def format_price(amount: float, country_code: str, *, decimals: int = 2) -> str:
    """Format ``amount`` the way a retailer localizes for ``country_code``."""
    return locale_for_country(country_code).format_price(amount, decimals=decimals)


# ----------------------------------------------------------------------
# Parsing
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ParsedPrice:
    """The result of parsing a displayed price string."""

    amount: float
    currency: Optional[str]  # ISO code, or None when no symbol present
    raw: str


_SYMBOL_TO_CODE: dict[str, str] = {}
for _currency in CURRENCIES.values():
    _SYMBOL_TO_CODE.setdefault(_currency.symbol, _currency.code)
# Longest symbols first so "R$" wins over "$".
_SYMBOLS_BY_LENGTH = sorted(_SYMBOL_TO_CODE, key=len, reverse=True)

_NUMBER_RE = re.compile(r"\d[\d  .,' ]*\d|\d")


def parse_price(text: str, *, locale_hint: Optional[Locale] = None) -> ParsedPrice:
    """Parse a displayed price like ``"1.234,56 €"`` into a number.

    Rules (documented because they *are* the noise model):

    1. A currency symbol or ISO code anywhere in the string fixes the
       currency; otherwise currency is ``None`` and the caller must use
       page context.
    2. The number is the first digit run; separators are classified as
       decimal or grouping:
       - if both ``.`` and ``,`` occur, the *last* one is the decimal mark;
       - a single separator followed by exactly 2 digits at the end is the
         decimal mark, unless the hinted locale says it groups with it and
         the digits before it group evenly by thousands **and** the value
         would be implausibly small otherwise -- we resolve the tie in
         favour of the decimal reading, which is overwhelmingly more common
         in price displays;
       - a single separator followed by exactly 3 digits is grouping
         (``1.234`` -> 1234) unless the hinted locale uses it as decimal
         *and* the integer part is 0 (``0,999`` -> 0.999 never happens in
         prices, so this stays grouping);
       - spaces and apostrophes always group.
    3. Yen and other zero-decimal displays parse as integers.
    """
    if not isinstance(text, str) or not text.strip():
        raise PriceFormatError("empty price string")
    raw = text.strip()

    currency = _detect_currency(raw)
    match = _NUMBER_RE.search(raw.replace(" ", " "))
    if match is None:
        raise PriceFormatError(f"no number in price string {raw!r}")
    number = match.group(0).replace(" ", "").replace(" ", "").replace("'", "")
    amount = _interpret_number(number, locale_hint)
    if amount < 0:
        raise PriceFormatError(f"negative price in {raw!r}")
    return ParsedPrice(amount=amount, currency=currency, raw=raw)


def _detect_currency(text: str) -> Optional[str]:
    upper = text.upper()
    for code in CURRENCIES:
        if re.search(rf"\b{code}\b", upper):
            return code
    for symbol in _SYMBOLS_BY_LENGTH:
        if symbol in text:
            return _SYMBOL_TO_CODE[symbol]
    return None


def _interpret_number(number: str, locale_hint: Optional[Locale]) -> float:
    has_dot = "." in number
    has_comma = "," in number
    if has_dot and has_comma:
        # Both present: the later one is the decimal mark.
        if number.rfind(".") > number.rfind(","):
            return float(number.replace(",", ""))
        return float(number.replace(".", "").replace(",", "."))
    if not has_dot and not has_comma:
        return float(number)
    sep = "." if has_dot else ","
    head, _, tail = number.rpartition(sep)
    if number.count(sep) > 1:
        # Multiple same separators can only be grouping: 1.234.567
        return float(number.replace(sep, ""))
    if len(tail) == 3:
        # "1.234" / "1,234": grouping by overwhelming convention...
        if locale_hint is not None and locale_hint.decimal_sep == sep and head == "0":
            # ...except a hinted decimal with zero integer part ("0,999").
            return float(f"{head}.{tail}")
        return float(number.replace(sep, ""))
    if len(tail) == 2 or len(tail) == 1:
        return float(f"{head or '0'}.{tail}")
    # len(tail) == 0 ("12.") or > 3 ("1.2345"): treat as decimal mark.
    return float(f"{head or '0'}.{tail or '0'}")
