"""Serving smoke: boot, scripted session, clean SIGTERM shutdown.

Spawns the real CLI (``python -m repro.cli serve --port 0``), reads the
bound port off its stdout, drives one of everything -- health probe,
on-demand check, campaign job submitted and polled to completion,
results download -- then SIGTERMs the process and demands exit code 0.
``make serve-smoke`` runs this in the push tier of CI.
"""

from __future__ import annotations

import json
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
_LISTENING = re.compile(r"listening on http://[0-9.]+:(\d+)")


def _await_port(proc: subprocess.Popen, timeout: float = 60.0) -> int:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            raise AssertionError("service exited before listening")
        sys.stdout.write(line)
        match = _LISTENING.search(line)
        if match:
            return int(match.group(1))
    raise AssertionError("service never printed its port")


def main() -> int:
    data_dir = tempfile.mkdtemp(prefix="serve-smoke-")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--port", "0", "--data-dir", data_dir],
        env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    try:
        base = f"http://127.0.0.1:{_await_port(proc)}"

        def get(path: str) -> dict:
            with urllib.request.urlopen(base + path, timeout=60) as resp:
                return json.loads(resp.read())

        def post(path: str, payload: dict) -> dict:
            req = urllib.request.Request(
                base + path, data=json.dumps(payload).encode("utf-8")
            )
            with urllib.request.urlopen(req, timeout=60) as resp:
                return json.loads(resp.read())

        health = get("/healthz")
        assert health["status"] == "ok", health
        report = post("/checks", {"domain": "www.digitalrev.com", "product": 1})
        assert report["check_id"] == "chk0000001", report
        job = post("/campaigns", {"scale": "tiny", "n_checks": 30,
                                  "end_day": 10})
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            state = get(f"/jobs/{job['id']}")
            if state["status"] in ("done", "failed"):
                break
            time.sleep(0.2)
        assert state["status"] == "done", state
        with urllib.request.urlopen(
            f"{base}/jobs/{job['id']}/results", timeout=60
        ) as resp:
            results = resp.read()
        assert results.startswith(b'{"format":'), results[:40]
        print(f"session ok: check + job {job['id']} "
              f"({state['checks']['done']} checks, "
              f"{len(results)} result bytes)")
    except BaseException:
        proc.kill()
        proc.wait()
        raise
    proc.send_signal(signal.SIGTERM)
    code = proc.wait(timeout=30)
    tail = proc.stdout.read()
    sys.stdout.write(tail)
    assert code == 0, f"service exited {code}, not 0"
    assert "sheriff service stopped" in tail, "shutdown message missing"
    print("clean shutdown: exit 0")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
