"""Burst memoization: byte-identity, state detection, replay, validation.

The memo contract (``docs/PERFORMANCE.md``): with the burst memo on, every
crawl/campaign/report byte -- including archive timestamps and page bodies
-- is identical to the memo-off run; retailers whose responses read state
the signature cannot capture are detected and served live; sampled
cross-validation re-runs hits and fails loudly on divergence.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import pytest

from repro.core.backend import CheckRequest, SheriffBackend
from repro.core.burstcache import BurstCache, BurstCacheDivergence, BurstEntry
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.crowd import CampaignConfig, run_campaign
from repro.ecommerce.catalog import generate_catalog
from repro.ecommerce.pricing import (
    CAPTURABLE_SIGNALS,
    PricingContext,
    SignalProbe,
    signals_read,
)
from repro.ecommerce.retailer import Retailer, RetailerServer
from repro.ecommerce.templates import template_for
from repro.ecommerce.world import WorldConfig, build_world
from repro.exec import ExecConfig
from repro.io import report_to_dict


def _world(**kwargs):
    config = dict(catalog_scale=0.15, long_tail_domains=0)
    config.update(kwargs)
    return build_world(WorldConfig(**config))


def _anchor(world, domain):
    from repro.analysis.personal import derive_anchor_for_domain

    return derive_anchor_for_domain(world, domain)


def _reports_blob(reports) -> str:
    return json.dumps([report_to_dict(r) for r in reports], sort_keys=True)


def _store_blob(store) -> str:
    return json.dumps(
        [[p.check_id, p.url, p.domain, p.vantage, p.timestamp, p.html]
         for p in store],
        sort_keys=True,
    )


def _register_retailer(world, domain: str, policy) -> RetailerServer:
    """Wire a custom retailer into an existing world (inline backend only)."""
    catalog = generate_catalog(domain, "books", 6, seed=7)
    retailer = Retailer(
        domain=domain,
        name="Custom",
        category="books",
        catalog=catalog,
        policy=policy,
        template=template_for(domain, seed=7),
    )
    server = RetailerServer(
        retailer, geoip=world.geoip, rates=world.rates, seed=world.config.seed
    )
    world.retailers[domain] = retailer
    world.servers[domain] = server
    world.network.register(domain, server)
    return server


# Custom policies for the detection tests (module level: reprs stay stable).
@dataclass(frozen=True)
class NoncePeeking:
    """Undeclared policy that secretly reads per-request state."""

    def price(self, product, ctx) -> float:
        return product.base_price_usd * (1.0 + (ctx.nonce % 7) * 0.01)


@dataclass(frozen=True)
class UndeclaredGeo:
    """Undeclared but signature-pure: reads only the requester country."""

    def price(self, product, ctx) -> float:
        return product.base_price_usd * (1.2 if ctx.country_code == "FI" else 1.0)


@dataclass(frozen=True)
class LyingPolicy:
    """Declares no signals but actually reads the city."""

    def signals(self) -> frozenset[str]:
        return frozenset()

    def price(self, product, ctx) -> float:
        return product.base_price_usd * (1.1 if ctx.city == "London" else 1.0)


# ----------------------------------------------------------------------
# Signal declarations and the probe
# ----------------------------------------------------------------------
class TestSignals:
    def test_every_builtin_policy_declares(self):
        from repro.ecommerce.world import NAMED_RETAILER_SPECS

        for spec in NAMED_RETAILER_SPECS:
            assert signals_read(spec.policy_factory(1)) is not None, spec.domain

    def test_declarations_match_reality_for_named_retailers(self):
        """The probe confirms each policy reads within its declaration."""
        from repro.ecommerce.world import NAMED_RETAILER_SPECS

        ctx = PricingContext(
            country_code="FI", city="Tampere", day_index=12, seconds=5.0,
            identity="anon:s1", logged_in=False, referer=None,
            browser="probe", nonce=99,
        )
        for spec in NAMED_RETAILER_SPECS:
            policy = spec.policy_factory(1)
            declared = signals_read(policy)
            catalog = generate_catalog(spec.domain, spec.category, 10, seed=3)
            reads: set[str] = set()
            for product in catalog.products:
                policy.price(product, SignalProbe(ctx, reads))
            assert reads <= declared, (spec.domain, reads - declared)

    def test_probe_is_read_only(self):
        ctx = PricingContext(country_code="US")
        probe = SignalProbe(ctx, set())
        with pytest.raises(AttributeError):
            probe.country_code = "DE"

    def test_unknown_signal_declaration_rejected(self):
        @dataclass(frozen=True)
        class Bad:
            def signals(self):
                return frozenset({"not_a_field"})

            def price(self, product, ctx):
                return product.base_price_usd

        with pytest.raises(ValueError, match="unknown signals"):
            signals_read(Bad())

    def test_capturable_signals_are_context_fields(self):
        from repro.ecommerce.pricing import PRICING_SIGNALS

        assert CAPTURABLE_SIGNALS <= PRICING_SIGNALS


# ----------------------------------------------------------------------
# Byte identity: memo on vs off
# ----------------------------------------------------------------------
class TestByteIdentity:
    def _crawl_blobs(self, memo: bool, *, loss_rate: float = 0.0):
        world = _world(loss_rate=loss_rate)
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates, burst_memo=memo
        )
        plan = build_plan(
            world, domains=world.crawled_domains[:5], products_per_retailer=3
        )
        dataset = run_crawl(world, backend, plan, CrawlConfig(days=2))
        return (
            _reports_blob(dataset.reports),
            _store_blob(backend.store),
            backend.cache_stats(),
        )

    def test_crawl_bytes_identical(self):
        on_reports, on_store, _ = self._crawl_blobs(True)
        off_reports, off_store, _ = self._crawl_blobs(False)
        assert on_reports == off_reports
        assert on_store == off_store

    def test_crawl_bytes_identical_under_loss(self):
        on_reports, on_store, _ = self._crawl_blobs(True, loss_rate=0.25)
        off_reports, off_store, _ = self._crawl_blobs(False, loss_rate=0.25)
        assert on_reports == off_reports
        assert on_store == off_store

    def test_repeated_checks_hit_and_stay_identical(self):
        """The heavy-traffic shape: same product, same day, many checks."""

        def run(memo: bool):
            world = _world()
            backend = SheriffBackend(
                world.network, world.vantage_points, world.rates,
                burst_memo=memo,
            )
            domain = "www.digitalrev.com"
            anchor = _anchor(world, domain)
            product = world.retailer(domain).catalog.products[0]
            request = CheckRequest(
                url=f"http://{domain}{product.path}", anchor=anchor
            )
            reports = [backend.check(request) for _ in range(6)]
            return (
                _reports_blob(reports),
                _store_blob(backend.store),
                backend.cache_stats(),
            )

        on_reports, on_store, on_stats = run(True)
        off_reports, off_store, off_stats = run(False)
        assert on_reports == off_reports
        assert on_store == off_store
        assert on_stats["burst_hits"] == 5
        assert on_stats["burst_misses"] == 1
        assert off_stats["burst_hits"] == 0

    def _campaign_blob(self, memo: bool, exec_config=None) -> str:
        world = build_world(
            WorldConfig(catalog_scale=0.15, long_tail_domains=10)
        )
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates, burst_memo=memo
        )
        dataset = run_campaign(
            world,
            backend,
            CampaignConfig(n_checks=40, population_size=20, seed=11),
            exec_config=exec_config,
        )
        rows = []
        for record in dataset:
            rows.append({
                "user": record.user_id,
                "day": record.day_index,
                "domain": record.domain,
                "url": record.url,
                "failure": record.outcome.failure,
                "user_amount": record.outcome.user_amount,
                "report": report_to_dict(record.report) if record.report else None,
            })
        return json.dumps(rows, sort_keys=True)

    def test_campaign_bytes_identical(self):
        assert self._campaign_blob(True) == self._campaign_blob(False)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_campaign_bytes_identical_under_process_executor(self, workers):
        baseline = self._campaign_blob(False)
        sharded = self._campaign_blob(
            True, exec_config=ExecConfig(workers=workers, mode="process")
        )
        assert sharded == baseline

    @pytest.mark.parametrize("workers", [2, 4])
    def test_crawl_bytes_identical_under_local_executor(self, workers):
        def run(memo, exec_config):
            world = _world()
            backend = SheriffBackend(
                world.network, world.vantage_points, world.rates,
                burst_memo=memo,
            )
            plan = build_plan(
                world, domains=world.crawled_domains[:5],
                products_per_retailer=3,
            )
            dataset = run_crawl(
                world, backend, plan, CrawlConfig(days=2),
                exec_config=exec_config,
            )
            return _reports_blob(dataset.reports), _store_blob(backend.store)

        baseline = run(False, None)
        sharded = run(True, ExecConfig(workers=workers, mode="local"))
        assert sharded == baseline


# ----------------------------------------------------------------------
# State-dependence detection
# ----------------------------------------------------------------------
class TestStateDetection:
    def _check_repeatedly(self, world, backend, domain, n=4):
        anchor = _anchor(world, domain)
        product = world.retailer(domain).catalog.products[0]
        request = CheckRequest(
            url=f"http://{domain}{product.path}", anchor=anchor
        )
        return [backend.check(request) for _ in range(n)]

    def test_declared_stateful_retailer_serves_live(self):
        """ABTestNoise (hotels.com) declares the nonce: zero memo traffic."""
        world = _world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        self._check_repeatedly(world, backend, "www.hotels.com")
        stats = backend.cache_stats()
        assert stats["burst_hits"] == 0
        assert stats["burst_misses"] == 0
        assert stats["burst_bypass_live_only"] == 4
        assert backend.burst_cache.live_only_domains() == {
            "www.hotels.com": "state-dependent responses"
        }

    def test_login_retailer_serves_live(self):
        """amazon supports login: the server keys pages on the auth cookie."""
        world = _world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        self._check_repeatedly(world, backend, "www.amazon.com")
        stats = backend.cache_stats()
        assert stats["burst_hits"] == 0
        assert stats["burst_bypass_live_only"] == 4

    def test_undeclared_stateful_retailer_detected_not_assumed(self):
        """An undeclared nonce-reading policy: the probe catches the read
        on the first live burst, the retailer demotes, nothing is ever
        cached, and the output still matches a memo-off run."""

        def run(memo: bool):
            world = _world()
            _register_retailer(world, "www.sneaky.example", NoncePeeking())
            backend = SheriffBackend(
                world.network, world.vantage_points, world.rates,
                burst_memo=memo,
            )
            reports = self._check_repeatedly(
                world, backend, "www.sneaky.example"
            )
            return _reports_blob(reports), backend.cache_stats()

        on_reports, on_stats = run(True)
        off_reports, _ = run(False)
        assert on_reports == off_reports
        assert on_stats["burst_hits"] == 0
        assert on_stats["burst_stores"] == 0
        assert on_stats["burst_demotions"] == 1
        assert on_stats["burst_bypass_live_only"] == 3  # after the demotion

    def test_undeclared_pure_retailer_memoizes(self):
        def run(memo: bool):
            world = _world()
            _register_retailer(world, "www.plain.example", UndeclaredGeo())
            backend = SheriffBackend(
                world.network, world.vantage_points, world.rates,
                burst_memo=memo,
            )
            reports = self._check_repeatedly(
                world, backend, "www.plain.example"
            )
            return _reports_blob(reports), backend.cache_stats()

        on_reports, on_stats = run(True)
        off_reports, _ = run(False)
        assert on_reports == off_reports
        assert on_stats["burst_hits"] == 3
        assert on_stats["burst_misses"] == 1
        assert on_stats["burst_demotions"] == 0

    def test_understating_declaration_demotes(self):
        """A policy lying about its reads is caught before anything is
        cached -- the miss that would store the entry records the
        undeclared city read and demotes the retailer instead."""
        world = _world()
        server = _register_retailer(world, "www.liar.example", LyingPolicy())
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        self._check_repeatedly(world, backend, "www.liar.example")
        stats = backend.cache_stats()
        assert stats["burst_hits"] == 0
        assert stats["burst_stores"] == 0
        assert stats["burst_demotions"] == 1
        assert "city" in backend.burst_cache.live_only_domains()[
            "www.liar.example"
        ]
        assert server.signature_profile() is not None  # declaration looked pure

    def test_non_product_urls_bypass(self):
        world = _world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        domain = "www.digitalrev.com"
        anchor = _anchor(world, domain)
        request = CheckRequest(url=f"http://{domain}/", anchor=anchor)
        backend.check(request)
        backend.check(request)
        stats = backend.cache_stats()
        assert stats["burst_bypass_non_product"] == 2
        assert stats["burst_hits"] == 0


# ----------------------------------------------------------------------
# Campaign-scale plumbing
# ----------------------------------------------------------------------
class TestCampaignScalePlumbing:
    def test_worker_payload_carries_memo_knobs(self):
        """ProcessExecutor workers mirror the coordinator's full memo
        configuration -- cross-validation must not silently vanish when a
        campaign shards across processes."""
        from repro.exec.process import _WORKER_WORLDS, _run_shard

        world = _world()
        spec = world.spec()
        payload = {
            "spec": spec,
            "tasks": [],
            "domains": [],
            "session": {},
            "memo_demotions": {},
            "memo_entries": [],
            "burst_memo": {
                "enabled": True,
                "validate_fraction": 0.25,
                "max_entries_per_domain": 77,
            },
        }
        try:
            _run_shard(payload)
            _, worker_backend = _WORKER_WORLDS[spec]
            cache = worker_backend.burst_cache
            assert cache.enabled is True
            assert cache.validate_fraction == 0.25
            assert cache.max_entries_per_domain == 77
        finally:
            _WORKER_WORLDS.pop(spec, None)

    def test_page_store_rolling_window_returns_retention_budget(self):
        """With ``metadata_cap``, evicted pages hand back their domain's
        HTML budget: the window always holds the most *recent* retained
        bodies, not only the campaign's very first ones."""
        from repro.core.store import PageStore

        store = PageStore(html_per_domain=2, metadata_cap=4)
        for i in range(10):
            store.archive(
                check_id=f"c{i}", url="http://shop.example/x",
                domain="shop.example", vantage="v", timestamp=float(i),
                html=f"<html>{i}</html>",
            )
        pages = list(store)
        assert len(pages) == 4
        assert [p.check_id for p in pages] == ["c6", "c7", "c8", "c9"]
        retained = [p.check_id for p in pages if p.retained]
        assert retained == ["c8", "c9"]  # recent bodies, budget returned
        assert store.retained_html_count() == 2

    def test_page_store_without_cap_unchanged(self):
        from repro.core.store import PageStore

        store = PageStore(html_per_domain=2)
        for i in range(6):
            store.archive(
                check_id=f"c{i}", url="http://shop.example/x",
                domain="shop.example", vantage="v", timestamp=float(i),
                html="<html>same</html>",
            )
        assert len(store) == 6
        assert [p.check_id for p in store if p.retained] == ["c0", "c1"]


# ----------------------------------------------------------------------
# Cross-validation
# ----------------------------------------------------------------------
class TestCrossValidation:
    def _backend(self, world, fraction):
        return SheriffBackend(
            world.network, world.vantage_points, world.rates,
            burst_cache=BurstCache(validate_fraction=fraction),
        )

    def test_validated_hits_agree_with_live(self):
        world = _world()
        backend = self._backend(world, 1.0)
        domain = "www.digitalrev.com"
        anchor = _anchor(world, domain)
        product = world.retailer(domain).catalog.products[0]
        request = CheckRequest(
            url=f"http://{domain}{product.path}", anchor=anchor
        )
        for _ in range(5):
            backend.check(request)
        stats = backend.cache_stats()
        assert stats["burst_hits"] == 4
        assert stats["burst_validations"] == 4

    def test_divergence_fails_loudly(self):
        world = _world()
        backend = self._backend(world, 1.0)
        domain = "www.digitalrev.com"
        anchor = _anchor(world, domain)
        product = world.retailer(domain).catalog.products[0]
        request = CheckRequest(
            url=f"http://{domain}{product.path}", anchor=anchor
        )
        backend.check(request)
        # Corrupt the stored entry: validation must notice the tampering.
        cache = backend.burst_cache
        state = cache._domains[domain]
        (key, entry), = state.entries.items()
        state.entries[key] = BurstEntry(
            observations=entry.observations,
            htmls=("<html>tampered</html>",) * len(entry.htmls),
            currencies=entry.currencies,
        )
        with pytest.raises(BurstCacheDivergence, match="page bodies differ"):
            backend.check(request)


# ----------------------------------------------------------------------
# Timeline replay
# ----------------------------------------------------------------------
class TestTimelineReplay:
    def test_replay_matches_live_archive_timestamps(self):
        """The predicted delivery timeline is exactly what the live burst
        stamps into the archive -- the property every hit relies on."""
        from repro.core.burstcache import predict_fanout
        from repro.net.urls import URL

        world = _world(loss_rate=0.2)
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates,
            burst_memo=False,
        )
        domain = "www.digitalrev.com"
        anchor = _anchor(world, domain)
        product = world.retailer(domain).catalog.products[0]
        url = f"http://{domain}{product.path}"
        start_ts = world.clock.now
        timeline = predict_fanout(
            world.network, world.vantage_points, URL.parse(url),
            start_ts, backend.MAX_RETRIES,
        )
        report = backend.check(CheckRequest(url=url, anchor=anchor))
        pages = [p for p in backend.store if p.check_id == report.check_id]
        if timeline is None:
            # Some vantage stayed unreachable: the live burst must agree.
            assert any(not obs.ok and obs.error.startswith("network")
                       for obs in report.observations)
        else:
            delivered = [p.timestamp for p in pages]
            predicted = [archive_ts for _, archive_ts in timeline]
            assert delivered == predicted

    def test_lossless_replay_is_exact(self):
        from repro.core.burstcache import predict_fanout
        from repro.net.urls import URL

        world = _world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates,
            burst_memo=False,
        )
        domain = "www.mauijim.com"
        anchor = _anchor(world, domain)
        product = world.retailer(domain).catalog.products[0]
        url = f"http://{domain}{product.path}"
        start_ts = world.clock.now
        timeline = predict_fanout(
            world.network, world.vantage_points, URL.parse(url),
            start_ts, backend.MAX_RETRIES,
        )
        report = backend.check(CheckRequest(url=url, anchor=anchor))
        pages = [p for p in backend.store if p.check_id == report.check_id]
        assert timeline is not None
        assert [p.timestamp for p in pages] == [a for _, a in timeline]


# ----------------------------------------------------------------------
# TemporalDrift x BurstCache across day boundaries
# ----------------------------------------------------------------------
class TestDriftAcrossDayBoundaries:
    """A drift retailer must never serve a stale memoized price for a
    new check day: the burst key carries the check day, drift declares
    ``day_index``, and the memo reprices at every boundary."""

    AMPLITUDE = 0.2

    def _drift_world(self):
        from repro.ecommerce.pricing import TemporalDrift, UniformPricing

        world = _world()
        domain = "www.driftbooks.test"
        _register_retailer(
            world, domain,
            TemporalDrift(UniformPricing(), amplitude=self.AMPLITUDE, seed=5),
        )
        return world, domain

    def _run_sequence(self, burst_memo: bool):
        """Two same-day checks, then two more the next day."""
        from repro.net.clock import SECONDS_PER_DAY

        world, domain = self._drift_world()
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates,
            burst_memo=burst_memo,
        )
        anchor = _anchor(world, domain)
        product = world.retailer(domain).catalog.products[0]
        request = CheckRequest(
            url=f"http://{domain}{product.path}", anchor=anchor
        )
        reports = []
        for day in (40, 41):
            world.clock.advance_to(day * SECONDS_PER_DAY + 3600.0)
            reports.append(backend.check(request))
            world.clock.advance(120.0)
            reports.append(backend.check(request))
        return backend, reports

    def test_memoized_day_boundary_reprices_exactly_like_live(self):
        memo_backend, memo_reports = self._run_sequence(burst_memo=True)
        live_backend, live_reports = self._run_sequence(burst_memo=False)
        assert _reports_blob(memo_reports) == _reports_blob(live_reports)
        assert len(memo_backend.store) > 0
        assert _store_blob(memo_backend.store) == _store_blob(live_backend.store)
        stats = memo_backend.burst_cache.stats()
        # Within each day the second check hits; the new day must miss.
        assert stats["hits"] == 2
        assert stats["misses"] == 2
        assert stats["stores"] == 2

    def test_drift_actually_moved_the_price_between_days(self):
        """Guard the guard: if drift ever stopped repricing across this
        boundary, the memo test above would pass vacuously."""
        _, reports = self._run_sequence(burst_memo=True)
        day_one = [obs.usd for obs in reports[0].valid_observations()]
        day_two = [obs.usd for obs in reports[2].valid_observations()]
        assert day_one and day_two
        assert day_one != day_two

    def test_memo_hit_timestamps_replay_per_day(self):
        """Archive timestamps on the hit day come from that day's
        delivery draws, not the stored day's."""
        backend, reports = self._run_sequence(burst_memo=True)
        by_check = {}
        for page in backend.store:
            by_check.setdefault(page.check_id, []).append(page.timestamp)
        first_day_hit = by_check[reports[1].check_id]
        second_day_hit = by_check[reports[3].check_id]
        assert len(first_day_hit) == len(second_day_hit) == 14
        assert all(
            b > a + 86000 for a, b in zip(first_day_hit, second_day_hit)
        )
