"""Unit tests for the DOM node classes and tree operations."""

from __future__ import annotations

import pytest

from repro.htmlmodel.build import E, T, document
from repro.htmlmodel.dom import Document, Element, NodePath, Text


def make_tree() -> Document:
    return document(
        E("html", None,
          E("body", None,
            E("div", {"id": "a", "class": "box main"},
              E("p", None, T("hello "), E("b", None, "world")),
              E("p", {"class": "second"}, "again")),
            E("div", {"id": "b"}, "tail")))
    )


class TestTreeStructure:
    def test_children_have_parent(self):
        doc = make_tree()
        html = doc.children[0]
        assert html.parent is doc
        body = html.children[0]
        assert body.parent is html

    def test_append_reparents(self):
        a = E("div")
        b = E("div")
        child = E("span")
        a.append(child)
        b.append(child)
        assert child.parent is b
        assert child not in a.children

    def test_insert_at_index(self):
        parent = E("ul", None, E("li", None, "one"), E("li", None, "three"))
        middle = E("li", None, "two")
        parent.insert(1, middle)
        texts = [c.text() for c in parent.child_elements()]
        assert texts == ["one", "two", "three"]

    def test_remove_detaches(self):
        parent = E("div", None, E("span"))
        child = parent.children[0]
        parent.remove(child)
        assert child.parent is None
        assert not parent.children

    def test_remove_missing_raises(self):
        with pytest.raises(ValueError):
            E("div").remove(E("span"))

    def test_index_in_parent(self):
        parent = E("div", None, E("a"), E("b"), E("c"))
        assert parent.children[2].index_in_parent == 2

    def test_index_in_parent_detached_raises(self):
        with pytest.raises(ValueError):
            E("div").index_in_parent

    def test_ancestors_order(self):
        doc = make_tree()
        bold = next(e for e in doc.iter_elements() if e.tag == "b")
        tags = [getattr(a, "tag", "document") for a in bold.ancestors()]
        assert tags == ["p", "div", "body", "html", "document"]

    def test_root(self):
        doc = make_tree()
        bold = next(e for e in doc.iter_elements() if e.tag == "b")
        assert bold.root is doc


class TestIteration:
    def test_iter_document_order(self):
        doc = make_tree()
        tags = [e.tag for e in doc.iter_elements()]
        assert tags == ["html", "body", "div", "p", "b", "p", "div"]

    def test_child_elements_skips_text(self):
        parent = E("div", None, "text", E("span"), "more", E("em"))
        assert [e.tag for e in parent.child_elements()] == ["span", "em"]


class TestText:
    def test_text_concatenation(self):
        doc = make_tree()
        div = next(e for e in doc.iter_elements() if e.id == "a")
        assert div.text() == "hello worldagain"

    def test_text_separator_and_strip(self):
        doc = make_tree()
        div = next(e for e in doc.iter_elements() if e.id == "a")
        assert div.text(separator=" ", strip=True) == "hello  world again"

    def test_text_skips_script_and_style(self):
        tree = E("div", None,
                 E("script", None, "var x = 1;"),
                 E("style", None, ".a{}"),
                 E("span", None, "visible"))
        assert tree.text() == "visible"


class TestAttributes:
    def test_get_and_contains(self):
        el = E("div", {"id": "x", "data-v": "7"})
        assert el.get("data-v") == "7"
        assert el.get("missing") is None
        assert el.get("missing", "d") == "d"
        assert "id" in el
        assert "nope" not in el

    def test_classes(self):
        el = E("div", {"class": "a  b\tc"})
        assert el.classes == ("a", "b", "c")
        assert el.has_class("b")
        assert not el.has_class("z")

    def test_no_class_attribute(self):
        assert E("div").classes == ()


class TestNodePath:
    def test_roundtrip_through_document(self):
        doc = make_tree()
        for element in doc.iter_elements():
            path = element.node_path()
            assert doc.find_by_path(path) is element

    def test_str_parse_roundtrip(self):
        path = NodePath((0, 2, 1))
        assert NodePath.parse(str(path)) == path

    def test_parse_root(self):
        assert NodePath.parse("/") == NodePath(())

    @pytest.mark.parametrize("bad", ["", "0/1", "/a/b", "/-1", "/1.5"])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            NodePath.parse(bad)

    def test_parent_and_child(self):
        path = NodePath((1, 2))
        assert path.parent() == NodePath((1,))
        assert path.child(0) == NodePath((1, 2, 0))
        assert NodePath(()).parent() == NodePath(())

    def test_child_rejects_negative(self):
        with pytest.raises(ValueError):
            NodePath(()).child(-1)

    def test_find_by_path_out_of_range(self):
        doc = make_tree()
        assert doc.find_by_path(NodePath((0, 0, 99))) is None

    def test_depth(self):
        assert NodePath((0, 1, 2)).depth == 3


class TestBuildHelpers:
    def test_string_children_become_text(self):
        el = E("p", None, "one", T("two"))
        assert isinstance(el.children[0], Text)
        assert el.text() == "onetwo"

    def test_bad_child_type_raises(self):
        with pytest.raises(TypeError):
            E("p", None, 42)  # type: ignore[arg-type]

    def test_repr_smoke(self):
        assert "div" in repr(E("div", {"id": "x", "class": "a"}))
        assert "Text" in repr(T("y" * 50))
        assert "Document" in repr(document())
