"""Fig. 7: magnitude of price differences per location (all retailers)."""

from __future__ import annotations

import statistics

from repro.analysis.locations import location_ratio_stats
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

US_VANTAGES = (
    "USA - Boston", "USA - Chicago", "USA - Lincoln",
    "USA - Los Angeles", "USA - New York", "USA - Albany",
)
EU_VANTAGES = (
    "Belgium - Liege", "Germany - Berlin",
    "Spain (Linux,FF)", "Spain (Mac,Safari)", "Spain (Win,Chrome)",
)
SPAIN_VANTAGES = ("Spain (Linux,FF)", "Spain (Mac,Safari)", "Spain (Win,Chrome)")


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 7's per-location distributions."""
    result = FigureResult(
        figure_id="FIG7",
        title="Magnitude of price differences per location (all retailers)",
        paper_claim=(
            "USA and Brazil tend to get lower prices than Europe; within "
            "Europe, Finland stands out as the most expensive location"
        ),
        columns=("location", "n", "median", "mean", "q75", "whisker_high"),
    )
    stats = location_ratio_stats(ctx.crawl_clean.kept)
    means: dict[str, float] = {}
    samples: dict[str, list[float]] = {}
    for report in ctx.crawl_clean.kept:
        for vantage, ratio in report.ratios_by_vantage().items():
            samples.setdefault(vantage, []).append(ratio)
    for vantage, values in samples.items():
        means[vantage] = statistics.fmean(values)

    for vantage in sorted(stats, key=lambda v: means.get(v, 0.0)):
        s = stats[vantage]
        result.add_row(vantage, s.n, s.median, means[vantage], s.q75, s.whisker_high)

    fi = means.get("Finland - Tampere", 0.0)
    result.check(
        "Finland is the most expensive location",
        fi == max(means.values())
        and stats["Finland - Tampere"].q75 == max(s.q75 for s in stats.values()),
    )
    # The paper reads the claim off the boxes: US/Brazil boxes sit low,
    # European boxes reach higher.  Box tops (q75) are the robust measure;
    # raw means are nearly tied because a handful of luxury exceptions
    # (mauijim/tuscany/luisaviaroma) charge the US heavily.
    us_q75 = statistics.fmean(stats[v].q75 for v in US_VANTAGES)
    eu_q75 = statistics.fmean(stats[v].q75 for v in EU_VANTAGES)
    result.check(
        "US boxes sit below continental-Europe boxes (q75)", us_q75 < eu_q75
    )
    br = stats.get("Brazil - Sao Paulo")
    result.check(
        "Brazil among the cheapest locations (q75 below Europe's)",
        br is not None and br.q75 <= eu_q75
        and br.q75 <= stats["UK - London"].q75,
    )
    spain = [means[v] for v in SPAIN_VANTAGES]
    result.check(
        "browser configuration alone changes nothing (Spain x3 equal)",
        max(spain) - min(spain) < 0.005,
    )
    return result
