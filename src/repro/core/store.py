"""The page archive: "(vi) We store the pages for analysis in a database."

The store keeps *metadata* for every archived fetch but caps the number of
full HTML bodies retained per domain: the third-party census (§4.4) needs a
handful of pages per retailer, while a paper-scale crawl would otherwise
hold ~200K pages of HTML in memory.  The cap is a store policy, not a
caller concern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["ArchivedPage", "PageStore"]


@dataclass(frozen=True)
class ArchivedPage:
    """One archived fetch."""

    check_id: str
    url: str
    domain: str
    vantage: str
    timestamp: float
    html: Optional[str]  # None when only metadata was retained

    @property
    def retained(self) -> bool:
        return self.html is not None


class PageStore:
    """In-memory page database with per-domain HTML retention caps."""

    def __init__(self, *, html_per_domain: int = 30) -> None:
        if html_per_domain < 0:
            raise ValueError("html_per_domain must be >= 0")
        self.html_per_domain = html_per_domain
        self._pages: list[ArchivedPage] = []
        self._html_counts: dict[str, int] = {}

    # ------------------------------------------------------------------
    def archive(
        self,
        *,
        check_id: str,
        url: str,
        domain: str,
        vantage: str,
        timestamp: float,
        html: str,
    ) -> ArchivedPage:
        """Store one fetched page, retaining HTML if under the domain cap."""
        count = self._html_counts.get(domain, 0)
        keep = count < self.html_per_domain
        page = ArchivedPage(
            check_id=check_id,
            url=url,
            domain=domain,
            vantage=vantage,
            timestamp=timestamp,
            html=html if keep else None,
        )
        if keep:
            self._html_counts[domain] = count + 1
        self._pages.append(page)
        return page

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    def __iter__(self) -> Iterator[ArchivedPage]:
        return iter(self._pages)

    def pages_for_domain(
        self, domain: str, *, with_html_only: bool = False
    ) -> list[ArchivedPage]:
        """All archived pages of one domain (optionally HTML-bearing only)."""
        return [
            page
            for page in self._pages
            if page.domain == domain and (page.retained or not with_html_only)
        ]

    def domains(self) -> list[str]:
        """Every domain with at least one archived page, sorted."""
        return sorted({page.domain for page in self._pages})

    def retained_html_count(self) -> int:
        """How many archived pages still carry their full HTML."""
        return sum(1 for page in self._pages if page.retained)

    def clear(self) -> None:
        """Drop every archived page and reset the retention counters."""
        self._pages.clear()
        self._html_counts.clear()
