"""In-process shard execution: the default and the test baseline.

:class:`LocalExecutor` runs every shard in the coordinating process, one
shard after another -- deliberately *not* in submission order, so the
byte-identity tests exercise the same out-of-order execution a process
pool produces, without any process machinery in the way.  Archives are
buffered per check and replayed into the backend's store in plan order,
leaving the store exactly as the sequential loop would.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Sequence

from repro.exec.plan import make_planner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ScheduledCheck, SheriffBackend
    from repro.core.reports import PriceCheckReport
    from repro.net.vantage import VantagePoint

__all__ = ["LocalExecutor", "merge_in_plan_order"]


def merge_in_plan_order(
    backend: "SheriffBackend",
    scheduled: Sequence["ScheduledCheck"],
    merged: dict[int, tuple["PriceCheckReport", list[dict]]],
    sink: Optional[Callable[["PriceCheckReport"], None]] = None,
) -> list["PriceCheckReport"]:
    """Reassemble per-shard results into submission order.

    ``merged`` maps schedule index to (report, buffered archive calls).
    Archives replay into ``backend.store`` in plan order, so retention
    caps and content interning fire in the same sequence -- and therefore
    retain the same pages -- as the inline loop.

    With a ``sink``, each report is handed over in plan order instead of
    being accumulated (the crawl streams reports straight into the
    columnar dataset spine this way) and the returned list is empty.
    """
    reports: list["PriceCheckReport"] = []
    for sched in scheduled:
        report, archives = merged[sched.index]
        for kwargs in archives:
            backend.store.archive(**kwargs)
        if sink is not None:
            sink(report)
        else:
            reports.append(report)
    return reports


class LocalExecutor:
    """Run shards sequentially in-process, merging deterministically."""

    def __init__(self, workers: int = 1, *, plan=None) -> None:
        self.plan = plan or make_planner("cost", workers)

    def run(
        self,
        backend: "SheriffBackend",
        scheduled: Sequence["ScheduledCheck"],
        fleet: Sequence["VantagePoint"],
        sink: Optional[Callable[["PriceCheckReport"], None]] = None,
    ) -> list["PriceCheckReport"]:
        """Execute every schedule entry, shard by shard, and merge."""
        merged: dict[int, tuple["PriceCheckReport", list[dict]]] = {}
        for shard in self.plan.partition_batch(backend, scheduled):
            for sched in shard:
                archives: list[dict] = []
                report = backend.run_scheduled_check(
                    sched, fleet, lambda **kwargs: archives.append(kwargs)
                )
                merged[sched.index] = (report, archives)
        return merge_in_plan_order(backend, scheduled, merged, sink)

    def close(self) -> None:
        """Nothing to release (symmetry with :class:`ProcessExecutor`)."""

    def __repr__(self) -> str:
        return f"LocalExecutor(workers={self.plan.workers})"
