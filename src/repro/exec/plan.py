"""Shard planning: deterministic ownership of a batch's checks.

The unit of shard ownership is the **retailer**.  Everything that makes
two checks against one shop interact -- the vantage fleet's session
cookies for that domain, the server's request counter (part of the
pricing nonce), its render memo -- is keyed by domain, while checks
against different shops share nothing (per-request latency/loss draws,
burst-clock isolation; see ``docs/ARCHITECTURE.md``).  A
:class:`ShardPlan` therefore assigns every (retailer, product) target to
the shard that owns its retailer, via a stable hash of the domain: the
same plan on any machine, in any process, on any day partitions a batch
identically, and each shard can execute its slice against nothing but its
own retailers' state.

:class:`ExecConfig` is the user-facing knob: ``workers`` and ``mode``
travel from the CLI / :func:`repro.crawler.run_crawl` /
:func:`repro.crowd.run_campaign` down to an executor instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence

from repro.net.urls import URL
from repro.util import stable_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.backend import ScheduledCheck
    from repro.ecommerce.world import World

__all__ = ["ExecConfig", "ExecError", "ShardPlan"]

_MODES = ("local", "process")


class ExecError(RuntimeError):
    """Raised when a shard executor cannot honor its determinism contract."""


class ShardPlan:
    """Stable partition of checks across ``workers`` shards by retailer."""

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("a shard plan needs at least one worker")
        self.workers = workers

    def shard_of(self, domain: str) -> int:
        """The shard that owns ``domain``.

        Derived from a process- and platform-stable hash, so coordinator
        and workers (or two runs months apart) always agree.
        """
        return stable_hash("shard", domain.lower()) % self.workers

    def partition(
        self, scheduled: Sequence["ScheduledCheck"]
    ) -> list[list["ScheduledCheck"]]:
        """Split schedule entries into per-shard slices.

        Entries keep their submission order inside each shard, which
        preserves the per-domain request sequence (and with it cookie and
        nonce evolution) exactly as the sequential loop would produce it.
        """
        shards: list[list["ScheduledCheck"]] = [[] for _ in range(self.workers)]
        for sched in scheduled:
            host = URL.parse(sched.request.url).host
            shards[self.shard_of(host)].append(sched)
        return shards

    def __repr__(self) -> str:
        return f"ShardPlan(workers={self.workers})"


@dataclass(frozen=True)
class ExecConfig:
    """How a crawl/campaign executes its fan-out batches.

    ``workers=1`` with ``mode="local"`` is the sequential baseline (no
    executor object at all); higher worker counts shard the batch.  Modes:

    * ``"local"`` -- :class:`~repro.exec.local.LocalExecutor`: shards run
      one after another in this process.  Zero overhead, exercises the
      exact partition/merge path; the default and the test baseline.
    * ``"process"`` -- :class:`~repro.exec.process.ProcessExecutor`:
      shards run in parallel worker processes that rebuild the world from
      its :class:`~repro.ecommerce.world.WorldSpec`.
    """

    workers: int = 1
    mode: str = "local"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}")

    def create(self, world: "World"):
        """Build the executor this config describes (None = run inline)."""
        if self.mode == "local":
            if self.workers == 1:
                return None
            from repro.exec.local import LocalExecutor

            return LocalExecutor(self.workers)
        from repro.exec.process import ProcessExecutor

        return ProcessExecutor(world, self.workers)
