"""Sharded execution of synchronized-check batches.

The paper's workload is a day-batched fan-out: ~200K fetches across
21 retailers x 7 days x 14 vantage points.  This package executes one
day's batch across N workers while keeping every report byte-identical
to the sequential loop:

* :class:`~repro.exec.plan.ShardPlan` -- stable-hash partition of the
  batch by retailer, so each shard owns disjoint retailer/session state;
* :class:`~repro.exec.plan.ExecConfig` -- the ``workers``/``mode`` knob
  carried by :func:`repro.crawler.run_crawl`,
  :func:`repro.crowd.run_campaign`, and the CLI's ``--workers``;
* :class:`~repro.exec.local.LocalExecutor` -- in-process execution, the
  default and the determinism test baseline;
* :class:`~repro.exec.process.ProcessExecutor` -- multiprocessing
  execution; workers regrow the world from its picklable
  :class:`~repro.ecommerce.world.WorldSpec` instead of pickling live
  simulation objects.

See ``docs/ARCHITECTURE.md`` for the determinism contract that makes the
byte-identity guarantee hold.
"""

from repro.exec.local import LocalExecutor
from repro.exec.plan import ExecConfig, ExecError, ShardPlan
from repro.exec.process import ProcessExecutor

__all__ = [
    "ExecConfig",
    "ExecError",
    "LocalExecutor",
    "ProcessExecutor",
    "ShardPlan",
]
