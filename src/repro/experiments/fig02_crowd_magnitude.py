"""Fig. 2: magnitude of price differences per domain (crowdsourced)."""

from __future__ import annotations

from repro.analysis.ratios import domain_ratio_stats
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 2 from the crowdsourced dataset."""
    result = FigureResult(
        figure_id="FIG2",
        title="Magnitude of price differences per domain (crowdsourced)",
        paper_claim=(
            "prices vary between 15%-40% depending on the retailer, with a "
            "few cases approaching a factor of x2"
        ),
        columns=("domain", "n", "median", "q25", "q75", "max"),
    )
    stats = domain_ratio_stats(
        ctx.crowd_clean.kept, only_variation=True, min_samples=1
    )
    for domain in sorted(stats, key=lambda d: -stats[d].n):
        s = stats[domain]
        result.add_row(domain, s.n, s.median, s.q25, s.q75, s.maximum)

    medians = [s.median for s in stats.values()]
    result.check(
        "typical magnitude in the 10%-45% band",
        bool(medians)
        and sum(1 for m in medians if 1.05 <= m <= 1.45) >= 0.7 * len(medians),
    )
    result.check(
        "isolated cases approach x2",
        any(s.maximum >= 1.6 for s in stats.values()),
    )
    result.check(
        "guard strictly above 1 (currency translation excluded)",
        ctx.crowd_clean.guard > 1.0,
    )
    return result
