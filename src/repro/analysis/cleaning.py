"""Noise removal, per §2.2 and §3.2.

The key defense is the paper's conservative currency guard: a variation
only counts when it *strictly exceeds* the largest ratio that currency
translation alone could produce, computed over the **whole dataset's**
extreme exchange rates (not just the check's day -- a product seen on
Monday and re-seen on Friday spans both days' rates).

:func:`clean_reports` recomputes each report's guard against the dataset-
wide extremes, drops degenerate reports, and optionally enforces
*repeatability*: a (product, pair-of-locations) relationship must point the
same way on a majority of days, which suppresses A/B-test flukes (§2.2's
"we repeated the same set of measurements multiple times").

Given a columnar :class:`~repro.store.TableSlice` (what the datasets now
hand out), cleaning runs as column passes, the guard is written through
:meth:`~repro.store.ReportTable.set_guard` (column + materialized rows
stay in sync), and ``CleanResult.kept`` is itself a slice -- so every
downstream figure aggregation stays on the columnar kernels.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.reports import PriceCheckReport
from repro.fx.convert import Converter, max_gap_ratio
from repro.fx.rates import RateService
from repro.store import TableSlice, as_table_slice

__all__ = [
    "CleanResult",
    "clean_reports",
    "dataset_guard",
    "repeatable_products",
    "split_by_user_agreement",
]


def dataset_guard(
    rates: RateService, reports: Sequence[PriceCheckReport], *, margin: float = 0.0
) -> float:
    """The dataset-wide currency-translation guard threshold."""
    if not len(reports):
        raise ValueError("no reports")
    currencies: set[str] = set()
    days: set[int] = set()
    sliced = as_table_slice(reports)
    if sliced is not None:
        table = sliced.table
        currency_value = table.currencies.value
        seen_ids: set[int] = set()
        for i in sliced.rows:
            days.add(table.day_index[i])
            for j in table.valid_obs_indices(i):
                cid = table.o_currency_id[j]
                if cid >= 0:
                    seen_ids.add(cid)
        currencies = {
            code for code in (currency_value(cid) for cid in seen_ids) if code
        }
    else:
        for report in reports:
            days.add(report.day_index)
            for obs in report.valid_observations():
                if obs.currency:
                    currencies.add(obs.currency)
    if not currencies:
        currencies = {"USD"}
    return max_gap_ratio(rates, currencies, days, margin=margin)


@dataclass
class CleanResult:
    """Cleaning outcome: surviving reports plus an accounting of drops.

    ``kept`` is a ``Sequence[PriceCheckReport]`` -- a plain list on the
    legacy path, a lazy :class:`~repro.store.TableSlice` on the columnar
    one (list-style consumers cannot tell the difference).
    """

    kept: Sequence[PriceCheckReport] = field(default_factory=list)
    dropped: Counter = field(default_factory=Counter)
    guard: float = 1.0

    @property
    def n_kept(self) -> int:
        return len(self.kept)

    @property
    def n_dropped(self) -> int:
        return sum(self.dropped.values())


def clean_reports(
    reports: Sequence[PriceCheckReport],
    rates: RateService,
    *,
    min_points: int = 2,
    guard_margin: float = 0.0,
    require_repeatable: bool = False,
) -> CleanResult:
    """Apply the paper's cleaning rules.

    Every surviving report has its ``guard_threshold`` replaced by the
    dataset-wide guard, so downstream ``has_variation`` answers are
    consistent across the dataset.  ``require_repeatable`` additionally
    restricts *variation* verdicts to products whose variation recurs
    across measurement rounds (no-ops on single-day datasets).
    """
    sliced = as_table_slice(reports)
    if sliced is not None:
        return _clean_kernel(
            sliced, rates,
            min_points=min_points, guard_margin=guard_margin,
            require_repeatable=require_repeatable,
        )
    result = CleanResult()
    if not reports:
        return result
    result.guard = dataset_guard(rates, reports, margin=guard_margin)
    # Validity first, repeatability second: a measurement round that
    # fails the data-quality filters (too few observations, corrupted
    # non-positive prices) is not evidence about whether a product's
    # variation recurs -- an adversary serving garbage on alternate days
    # must not be able to veto the clean days' verdict.
    prefiltered: list[PriceCheckReport] = []
    for report in reports:
        valid = report.valid_observations()
        if len(valid) < min_points:
            result.dropped["too-few-observations"] += 1
            continue
        if any(obs.amount is not None and obs.amount <= 0 for obs in valid):
            result.dropped["non-positive-price"] += 1
            continue
        prefiltered.append(report)
    repeatable: Optional[set[str]] = None
    if require_repeatable:
        repeatable = repeatable_products(prefiltered, guard=result.guard)
    for report in prefiltered:
        report.guard_threshold = result.guard
        if repeatable is not None and report.has_variation and report.url not in repeatable:
            result.dropped["not-repeatable"] += 1
            continue
        result.kept.append(report)  # type: ignore[union-attr]
    return result


def _clean_kernel(
    sliced: TableSlice,
    rates: RateService,
    *,
    min_points: int,
    guard_margin: float,
    require_repeatable: bool,
) -> CleanResult:
    result = CleanResult()
    table = sliced.table
    if not len(sliced):
        result.kept = TableSlice(table, [])
        return result
    result.guard = dataset_guard(rates, sliced, margin=guard_margin)
    # Mirror of the list path: repeatability is judged only over rounds
    # that pass the validity filters, so corrupted rounds cannot veto
    # clean ones (see clean_reports).
    guarded_rows: list[int] = []
    o_amount = table.o_amount
    for i in sliced.rows:
        if table.n_valid[i] < min_points:
            result.dropped["too-few-observations"] += 1
            continue
        if any(
            o_amount[j] is not None and o_amount[j] <= 0
            for j in table.valid_obs_indices(i)
        ):
            result.dropped["non-positive-price"] += 1
            continue
        guarded_rows.append(i)
    repeatable_ids: Optional[set[int]] = None
    if require_repeatable:
        repeatable_ids = _repeatable_url_ids(
            TableSlice(table, guarded_rows), guard=result.guard
        )
    kept_rows: list[int] = []
    for i in guarded_rows:
        if repeatable_ids is not None:
            ratio = table.ratio[i]
            if (
                ratio is not None
                and ratio > result.guard
                and table.url_id[i] not in repeatable_ids
            ):
                result.dropped["not-repeatable"] += 1
                continue
        kept_rows.append(i)
    # Same write the list path performs on each surviving dataclass, done
    # once through the table so the column and cached rows agree.
    table.set_guard(result.guard, guarded_rows)
    result.kept = TableSlice(table, kept_rows)
    return result


def split_by_user_agreement(
    records,  # Sequence[repro.crowd.dataset.CheckRecord]
    rates: RateService,
    *,
    tolerance: float = 0.03,
):
    """Split crowd records into (agreeing, disagreeing) with the fleet.

    A crowd user's own observed price should match *some* vantage point's
    (typically the one sharing their country) once converted to USD.  When
    it matches none, the user saw something the fan-out cannot reproduce:
    a session-specific variant, or a Referer-earned discount -- §3.2's
    "product customization not encoded on the URI" class of noise.  Such
    records are excluded from price-variation statistics (while remaining
    interesting evidence of *personalized* pricing).
    """
    if tolerance < 0:
        raise ValueError("tolerance must be >= 0")
    converter = Converter(rates)
    agreeing = []
    disagreeing = []
    for record in records:
        report = record.report
        outcome = record.outcome
        if report is None or outcome.user_amount is None:
            agreeing.append(record)  # nothing to disagree with
            continue
        currency = outcome.user_currency or "USD"
        user_usd = converter.to_usd(outcome.user_amount, currency, record.day_index)
        fleet = [obs.usd for obs in report.valid_observations() if obs.usd]
        if not fleet:
            agreeing.append(record)
            continue
        closest = min(abs(value - user_usd) / user_usd for value in fleet)
        if closest <= tolerance:
            agreeing.append(record)
        else:
            disagreeing.append(record)
    return agreeing, disagreeing


def repeatable_products(
    reports: Sequence[PriceCheckReport], *, guard: float, min_fraction: float = 0.5
) -> set[str]:
    """Product URLs whose variation recurs across measurement rounds.

    A product measured on ``k`` distinct occasions counts as repeatable
    when more than ``min_fraction`` of those occasions show guarded
    variation.  Products measured once pass trivially (no repetition
    available to demand).
    """
    sliced = as_table_slice(reports)
    if sliced is not None:
        url_value = sliced.table.urls.value
        return {
            url_value(uid)
            for uid in _repeatable_url_ids(
                sliced, guard=guard, min_fraction=min_fraction
            )
        }
    rounds: dict[str, list[bool]] = {}
    for report in reports:
        if len(report.valid_observations()) < 2:
            continue
        ratio = report.ratio
        varied = ratio is not None and ratio > guard
        rounds.setdefault(report.url, []).append(varied)
    out: set[str] = set()
    for url, outcomes in rounds.items():
        if len(outcomes) == 1:
            out.add(url)
        elif sum(outcomes) / len(outcomes) > min_fraction:
            out.add(url)
    return out


def _repeatable_url_ids(
    sliced: TableSlice, *, guard: float, min_fraction: float = 0.5
) -> set[int]:
    table = sliced.table
    rounds: dict[int, list[bool]] = {}
    for i in sliced.rows:
        if table.n_valid[i] < 2:
            continue
        ratio = table.ratio[i]
        rounds.setdefault(table.url_id[i], []).append(
            ratio is not None and ratio > guard
        )
    return {
        uid for uid, outcomes in rounds.items()
        if len(outcomes) == 1 or sum(outcomes) / len(outcomes) > min_fraction
    }
