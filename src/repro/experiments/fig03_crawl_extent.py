"""Fig. 3: extent of price variation per crawled domain."""

from __future__ import annotations

from repro.analysis.extent import variation_extent
from repro.analysis.longitudinal import extent_stability, product_persistence
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

#: Domains the paper shows at (or essentially at) 100% extent.
PAPER_FULL_EXTENT = (
    "store.killah.com",
    "store.refrigiwear.it",
    "www.bookdepository.co.uk",
    "www.digitalrev.com",
    "www.energie.it",
    "www.guess.eu",
    "www.mauijim.com",
    "www.misssixty.com",
    "www.net-a-porter.com",
    "www.tuscanyleather.it",
)

#: Domains the paper shows in the decreasing tail.
PAPER_LOW_EXTENT = ("www.autotrader.com", "www.rightstart.com")


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 3 (plus persistence checks) from the crawl."""
    result = FigureResult(
        figure_id="FIG3",
        title="Extent of price variations per domain (crawled)",
        paper_claim=(
            "for the majority of retailers the extent is near-complete "
            "(100%), with a decreasing tail down to ~10-20% (rightstart)"
        ),
        columns=("domain", "extent"),
    )
    extent = variation_extent(ctx.crawl_clean.kept)
    for domain in sorted(extent, key=extent.get, reverse=True):
        result.add_row(domain, extent[domain])

    full = [extent.get(d, 0.0) for d in PAPER_FULL_EXTENT]
    result.check(
        "the paper's 100%-extent retailers measure >= 90%",
        bool(full) and min(full) >= 0.9,
    )
    low = [extent.get(d, 1.0) for d in PAPER_LOW_EXTENT]
    result.check(
        "the paper's tail retailers measure below 60%",
        bool(low) and max(low) < 0.6,
    )
    result.check(
        "all 21 crawled retailers present",
        len(extent) == len(ctx.world.crawled_domains),
    )

    # §4.1 "persistent and repeatable": the full-extent retailers must show
    # near-identical extent on every crawl day, and their varying products
    # must vary on every day measured.
    stability = extent_stability(ctx.crawl_clean.kept)
    result.check(
        "extent is stable across crawl days",
        all(stability[d].is_stable for d in PAPER_FULL_EXTENT if d in stability),
    )
    persistence = product_persistence(ctx.crawl_clean.kept)
    full = [persistence[d] for d in PAPER_FULL_EXTENT if d in persistence]
    result.check(
        "varying products vary on every measured day (persistence >= 95%)",
        bool(full) and min(full) >= 0.95,
    )
    return result
