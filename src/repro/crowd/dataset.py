"""The crowdsourced dataset and its summary statistics.

Everything Figs. 1-2 need lives here: per-domain counts of checks showing
variation, per-domain ratio distributions, and the §3.2 headline numbers
(requests, users, countries, domains).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.core.extension import CheckOutcome
from repro.core.reports import PriceCheckReport

__all__ = ["CheckRecord", "CrowdDataset"]


@dataclass(frozen=True)
class CheckRecord:
    """One crowd-triggered check: who asked, what came back."""

    user_id: str
    user_country: str
    day_index: int
    domain: str
    url: str
    outcome: CheckOutcome

    @property
    def report(self) -> Optional[PriceCheckReport]:
        return self.outcome.report

    @property
    def ok(self) -> bool:
        return self.outcome.ok


@dataclass
class CrowdDataset:
    """The full beta-phase collection."""

    records: list[CheckRecord] = field(default_factory=list)

    def add(self, record: CheckRecord) -> None:
        """Append one crowd check record."""
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[CheckRecord]:
        return iter(self.records)

    # ------------------------------------------------------------------
    # §3.2 headline numbers
    # ------------------------------------------------------------------
    @property
    def n_requests(self) -> int:
        return len(self.records)

    @property
    def n_users(self) -> int:
        return len({record.user_id for record in self.records})

    @property
    def n_countries(self) -> int:
        return len({record.user_country for record in self.records})

    @property
    def n_domains(self) -> int:
        return len({record.domain for record in self.records})

    def summary(self) -> dict[str, int]:
        """The §3.2 headline numbers of this dataset."""
        return {
            "requests": self.n_requests,
            "users": self.n_users,
            "countries": self.n_countries,
            "domains": self.n_domains,
        }

    # ------------------------------------------------------------------
    # Figure inputs
    # ------------------------------------------------------------------
    def reports(self) -> list[PriceCheckReport]:
        """All successfully completed check reports."""
        return [record.report for record in self.records if record.report]

    def variation_counts(self) -> Counter:
        """domain -> number of requests whose variation beat the guard.

        This is exactly Fig. 1's y-axis.
        """
        counts: Counter = Counter()
        for record in self.records:
            report = record.report
            if report is not None and report.has_variation:
                counts[record.domain] += 1
        return counts

    def ratios_by_domain(self, *, only_variation: bool = True) -> dict[str, list[float]]:
        """domain -> list of per-check max/min ratios (Fig. 2's input)."""
        out: dict[str, list[float]] = {}
        for record in self.records:
            report = record.report
            if report is None:
                continue
            ratio = report.ratio
            if ratio is None:
                continue
            if only_variation and not report.has_variation:
                continue
            out.setdefault(record.domain, []).append(ratio)
        return out

    def checks_for_domain(self, domain: str) -> list[CheckRecord]:
        """Every check the crowd ran against one domain."""
        return [record for record in self.records if record.domain == domain]
