"""Dataset persistence: JSON-lines serialization for check reports.

The paper's backend "store[s] the pages for analysis in a database"; the
measurement datasets likewise need to outlive a process so the expensive
crawl can be analyzed repeatedly.  Format:

* line 1 -- a header object: ``{"format": "repro-reports", "version": 1,
  "kind": "crawl"|"crowd", ...metadata}``,
* every further line -- one serialized :class:`PriceCheckReport` (for
  crawl datasets) or one crowd check record wrapping a report.

Readers validate the header and fail loudly on version mismatch -- silent
misreads of measurement data are worse than crashes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional, Union

from repro.core.extension import CheckOutcome
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.crawler.records import CrawlDataset
from repro.crowd.dataset import CheckRecord, CrowdDataset

__all__ = [
    "DatasetFormatError",
    "save_crawl_dataset",
    "load_crawl_dataset",
    "save_crowd_dataset",
    "load_crowd_dataset",
    "report_to_dict",
    "report_from_dict",
]

FORMAT_NAME = "repro-reports"
FORMAT_VERSION = 1


class DatasetFormatError(ValueError):
    """Raised for files that are not valid dataset dumps."""


# ----------------------------------------------------------------------
# Report <-> dict
# ----------------------------------------------------------------------
def _observation_to_dict(obs: VantageObservation) -> dict:
    return {
        "vantage": obs.vantage,
        "country": obs.country_code,
        "city": obs.city,
        "ok": obs.ok,
        "raw": obs.raw_text,
        "amount": obs.amount,
        "currency": obs.currency,
        "usd": obs.usd,
        "method": obs.method,
        "error": obs.error,
    }


def _observation_from_dict(data: dict) -> VantageObservation:
    try:
        return VantageObservation(
            vantage=data["vantage"],
            country_code=data["country"],
            city=data.get("city", ""),
            ok=bool(data["ok"]),
            raw_text=data.get("raw", ""),
            amount=data.get("amount"),
            currency=data.get("currency"),
            usd=data.get("usd"),
            method=data.get("method", ""),
            error=data.get("error", ""),
        )
    except KeyError as exc:
        raise DatasetFormatError(f"observation missing field {exc}") from exc


def report_to_dict(report: PriceCheckReport) -> dict:
    """Serialize one report to a JSON-compatible dict."""
    return {
        "check_id": report.check_id,
        "url": report.url,
        "domain": report.domain,
        "day": report.day_index,
        "ts": report.timestamp,
        "guard": report.guard_threshold,
        "origin": report.origin,
        "observations": [
            _observation_to_dict(obs) for obs in report.observations
        ],
    }


def report_from_dict(data: dict) -> PriceCheckReport:
    """Deserialize one report; raises :class:`DatasetFormatError`."""
    try:
        return PriceCheckReport(
            check_id=data["check_id"],
            url=data["url"],
            domain=data["domain"],
            day_index=int(data["day"]),
            timestamp=float(data["ts"]),
            observations=[
                _observation_from_dict(obs) for obs in data["observations"]
            ],
            guard_threshold=float(data.get("guard", 1.0)),
            origin=data.get("origin", "crawler"),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise DatasetFormatError(f"bad report record: {exc}") from exc


# ----------------------------------------------------------------------
# File plumbing
# ----------------------------------------------------------------------
def _write_lines(path: Union[str, Path], header: dict, rows: Iterable[dict]) -> int:
    path = Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as fh:
        fh.write(json.dumps(header, separators=(",", ":")) + "\n")
        for row in rows:
            fh.write(json.dumps(row, separators=(",", ":")) + "\n")
            count += 1
    return count


def _read_lines(path: Union[str, Path], expected_kind: str) -> tuple[dict, list[dict]]:
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise DatasetFormatError(f"{path} is empty")
        try:
            header = json.loads(first)
        except json.JSONDecodeError as exc:
            raise DatasetFormatError(f"{path}: bad header: {exc}") from exc
        if header.get("format") != FORMAT_NAME:
            raise DatasetFormatError(f"{path}: not a {FORMAT_NAME} file")
        if header.get("version") != FORMAT_VERSION:
            raise DatasetFormatError(
                f"{path}: unsupported version {header.get('version')!r}"
            )
        if header.get("kind") != expected_kind:
            raise DatasetFormatError(
                f"{path}: kind {header.get('kind')!r}, expected {expected_kind!r}"
            )
        rows = []
        for line_no, line in enumerate(fh, start=2):
            if not line.strip():
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise DatasetFormatError(f"{path}:{line_no}: {exc}") from exc
    return header, rows


# ----------------------------------------------------------------------
# Crawl dataset
# ----------------------------------------------------------------------
def save_crawl_dataset(
    dataset: CrawlDataset, path: Union[str, Path], *, seed: Optional[int] = None
) -> int:
    """Write a crawl dataset; returns the number of report lines."""
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": "crawl",
        "reports": len(dataset.reports),
        "seed": seed,
    }
    return _write_lines(
        path, header, (report_to_dict(r) for r in dataset.reports)
    )


def load_crawl_dataset(path: Union[str, Path]) -> CrawlDataset:
    """Read a crawl dataset written by :func:`save_crawl_dataset`."""
    _, rows = _read_lines(path, "crawl")
    dataset = CrawlDataset()
    for row in rows:
        dataset.add(report_from_dict(row))
    return dataset


# ----------------------------------------------------------------------
# Crowd dataset
# ----------------------------------------------------------------------
def save_crowd_dataset(
    dataset: CrowdDataset, path: Union[str, Path], *, seed: Optional[int] = None
) -> int:
    """Write a crowd dataset; returns the number of record lines."""
    header = {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "kind": "crowd",
        "records": len(dataset.records),
        "seed": seed,
    }

    def rows() -> Iterable[dict]:
        for record in dataset.records:
            yield {
                "user": record.user_id,
                "country": record.user_country,
                "day": record.day_index,
                "domain": record.domain,
                "url": record.url,
                "user_amount": record.outcome.user_amount,
                "user_currency": record.outcome.user_currency,
                "failure": record.outcome.failure,
                "report": (
                    report_to_dict(record.report) if record.report else None
                ),
            }

    return _write_lines(path, header, rows())


def load_crowd_dataset(path: Union[str, Path]) -> CrowdDataset:
    """Read a crowd dataset written by :func:`save_crowd_dataset`."""
    _, rows = _read_lines(path, "crowd")
    dataset = CrowdDataset()
    for row in rows:
        try:
            outcome = CheckOutcome(
                url=row["url"],
                user=row["user"],
                report=(
                    report_from_dict(row["report"]) if row.get("report") else None
                ),
                user_amount=row.get("user_amount"),
                user_currency=row.get("user_currency"),
                failure=row.get("failure", ""),
            )
            dataset.add(
                CheckRecord(
                    user_id=row["user"],
                    user_country=row["country"],
                    day_index=int(row["day"]),
                    domain=row["domain"],
                    url=row["url"],
                    outcome=outcome,
                )
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DatasetFormatError(f"bad crowd record: {exc}") from exc
    return dataset
