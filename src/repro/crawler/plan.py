"""Crawl planning: which retailers, which products, which anchor.

The paper's selection process: retailers "where $heriff revealed price
differences" (crowd evidence), plus carry-overs already flagged in the
authors' earlier HotNets study (chainreactioncycles, homedepot, rightstart
appear in the crawled figures without appearing in the crowd figures).

Product discovery is honest crawling: the shop's index page is fetched and
product links harvested, then up to ``products_per_retailer`` are sampled.
The price anchor per retailer models the one-time manual step the authors
performed -- an operator opens one product page, visually finds the price,
and the extension machinery derives the anchor used for every subsequent
automated extraction on that retailer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.backend import SheriffBackend
from repro.core.highlight import PriceAnchor, derive_anchor
from repro.crowd.dataset import CrowdDataset
from repro.ecommerce.templates import selector_on_day
from repro.ecommerce.world import World
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import Selector
from repro.net.clock import SECONDS_PER_DAY
from repro.net.http import HttpResponse
from repro.net.transport import TransportError
from repro.net.urls import URL, urljoin
from repro.util import stable_rng

__all__ = ["CrawlTarget", "CrawlPlan", "build_plan", "PlanError"]


class PlanError(RuntimeError):
    """Raised when a crawl target cannot be prepared."""


@dataclass(frozen=True)
class CrawlTarget:
    """One retailer in the crawl: its products and its price anchor."""

    domain: str
    product_urls: tuple[str, ...]
    anchor: PriceAnchor

    def __post_init__(self) -> None:
        if not self.product_urls:
            raise ValueError(f"no products for {self.domain}")


@dataclass
class CrawlPlan:
    """The full crawl schedule."""

    targets: list[CrawlTarget] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.targets)

    @property
    def domains(self) -> list[str]:
        return [target.domain for target in self.targets]

    @property
    def total_product_urls(self) -> int:
        return sum(len(target.product_urls) for target in self.targets)


def select_domains_from_crowd(
    crowd: CrowdDataset,
    *,
    min_flagged: int = 2,
    max_retailers: int = 21,
    carry_overs: Sequence[str] = (),
) -> list[str]:
    """Rank crowd-flagged domains and append prior-work carry-overs.

    Carry-overs are guaranteed a slot (the authors crawled them regardless
    of crowd evidence); the crowd ranking fills the remaining budget.
    """
    counts = crowd.variation_counts()
    ranked = [domain for domain, count in counts.most_common() if count >= min_flagged]
    missing = [domain for domain in carry_overs if domain not in ranked]
    budget = max(0, max_retailers - len(missing))
    return (ranked[:budget] + missing)[:max_retailers]


def build_plan(
    world: World,
    *,
    domains: Optional[Sequence[str]] = None,
    crowd: Optional[CrowdDataset] = None,
    products_per_retailer: int = 100,
    min_flagged: int = 2,
    max_retailers: int = 21,
    seed: int = 2013,
) -> CrawlPlan:
    """Prepare crawl targets.

    ``domains`` pins the target list explicitly (the experiments pass the
    paper's 21); otherwise it is derived from ``crowd`` via
    :func:`select_domains_from_crowd`.  One of the two must be given.
    """
    if domains is None:
        if crowd is None:
            raise PlanError("need either explicit domains or a crowd dataset")
        domains = select_domains_from_crowd(
            crowd,
            min_flagged=min_flagged,
            max_retailers=max_retailers,
            carry_overs=[d for d in world.crawled_domains if d not in crowd.variation_counts()],
        )
    if products_per_retailer <= 0:
        raise PlanError("products_per_retailer must be positive")

    rng = stable_rng(seed, "crawl-plan")
    targets: list[CrawlTarget] = []
    for domain in domains:
        if domain not in world.retailers:
            raise PlanError(f"unknown domain {domain!r}")
        product_urls = _discover_products(world, domain, products_per_retailer, rng)
        anchor = None
        failures: list[str] = []
        # The operator needs *one* loadable product page to highlight;
        # a shop whose first product happens to 404 (out of stock) just
        # costs them another click.
        for url in product_urls:
            try:
                anchor = _derive_retailer_anchor(world, domain, url)
                break
            except PlanError as exc:
                failures.append(str(exc))
        if anchor is None:
            shown = "; ".join(failures[:3])
            if len(failures) > 3:
                shown += f" (+{len(failures) - 3} more)"
            raise PlanError(
                f"no product page on {domain} yielded an anchor: {shown}"
            )
        targets.append(
            CrawlTarget(domain=domain, product_urls=tuple(product_urls), anchor=anchor)
        )
    return CrawlPlan(targets=targets)


def _operator_fetch(world: World, url: str, *, what: str) -> HttpResponse:
    """One plan-time page load, reloading on transient network failures.

    Plan preparation is the operator's manual work; like the backend's
    fan-out, the operator retries a bounded number of times before
    declaring the retailer unreachable.
    """
    reference = world.vantage_points[0]
    try:
        return reference.fetch_with_retries(world.network, url)
    except TransportError as exc:
        raise PlanError(f"{what} fetch failed for {url}: {exc}") from exc


def _discover_products(
    world: World, domain: str, limit: int, rng
) -> list[str]:
    """Harvest product links from the shop's index page."""
    response = _operator_fetch(world, f"http://{domain}/", what="index")
    if not response.ok:
        raise PlanError(f"index fetch failed for {domain}: {response.status}")
    document = parse_html(response.body)
    links = Selector.parse("ul.catalog-list a").select(document)
    hrefs = [link.get("href") for link in links if link.get("href")]
    if not hrefs:
        raise PlanError(f"no product links found on {domain}")
    base = URL.parse(f"http://{domain}/")
    urls = [str(urljoin(base, href)) for href in hrefs]
    if len(urls) > limit:
        urls = rng.sample(urls, limit)
    return sorted(urls)


def _derive_retailer_anchor(world: World, domain: str, product_url: str) -> PriceAnchor:
    """The manual highlight, per retailer (re-done per day when churning).

    The template's ``price_selector`` stands in for the operator's eyes.
    Day-aware templates (the scenario layer's churning template swaps
    families between days) expose ``selector_for_day``; the operator
    reads the page actually rendered *today*, so the anchor matches the
    day's structure.
    """
    day_index = int(world.clock.now // SECONDS_PER_DAY)
    response = _operator_fetch(world, product_url, what="anchor page")
    if not response.ok:
        raise PlanError(f"anchor page fetch failed for {domain}")
    document = parse_html(response.body)
    selector = selector_on_day(world.retailer(domain).template, day_index)
    element = Selector.parse(selector).select_one(document)
    if element is None:
        raise PlanError(f"operator could not locate the price on {domain}")
    return derive_anchor(document, element)
