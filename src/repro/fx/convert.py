"""Currency conversion and the conservative max-gap guard.

The guard implements the paper's rule exactly: a price variation observed
across vantage points is only *trusted* if the max/min ratio strictly
exceeds the largest ratio that pure currency translation could produce
given the extreme exchange rates in the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.fx.currencies import CURRENCIES
from repro.fx.rates import RateService

__all__ = ["Converter", "ConversionError", "max_gap_ratio"]


class ConversionError(ValueError):
    """Raised for unknown currencies or non-positive amounts."""


@dataclass(frozen=True)
class Converter:
    """Converts local-currency amounts to USD against a rate service."""

    rates: RateService

    def to_usd(
        self,
        amount: float,
        currency: str,
        day_index: int,
        *,
        bound: str = "mid",
    ) -> float:
        """Convert ``amount`` of ``currency`` to USD on ``day_index``.

        ``bound`` selects which rate to use: ``"low"``, ``"mid"`` or
        ``"high"`` -- the guard computation needs the extremes.
        """
        if amount < 0:
            raise ConversionError(f"negative amount: {amount}")
        code = currency.upper()
        if code not in CURRENCIES:
            raise ConversionError(f"unknown currency {currency!r}")
        rate = self.rates.rate(code, day_index)
        try:
            factor = {"low": rate.low, "mid": rate.mid, "high": rate.high}[bound]
        except KeyError:
            raise ConversionError(f"bad bound {bound!r}") from None
        return amount * factor

    def usd_range(
        self, amount: float, currency: str, day_index: int
    ) -> tuple[float, float]:
        """The (min, max) USD value of ``amount`` over the day's rate range."""
        return (
            self.to_usd(amount, currency, day_index, bound="low"),
            self.to_usd(amount, currency, day_index, bound="high"),
        )


def max_gap_ratio(
    rates: RateService,
    currencies: Iterable[str],
    day_indices: Iterable[int],
    *,
    margin: float = 0.0,
) -> float:
    """The largest price ratio pure currency translation can fake.

    For each non-USD currency seen in the dataset, the worst case is a
    price converted at the highest high on one day versus the lowest low on
    another.  The guard threshold is the max of those ratios across all
    currencies involved; observations must *strictly exceed* it (optionally
    inflated by ``margin``) to count as price variation.

    With only USD observations the ratio is exactly 1.0 -- any variation
    at all survives the guard, as it should.
    """
    days = list(day_indices)
    if not days:
        raise ValueError("day_indices must be non-empty")
    worst = 1.0
    for currency in set(c.upper() for c in currencies):
        if currency == "USD":
            continue
        if currency not in CURRENCIES:
            raise ConversionError(f"unknown currency {currency!r}")
        low, high = rates.extremes(currency, days)
        worst = max(worst, high / low)
    return worst * (1.0 + margin)
