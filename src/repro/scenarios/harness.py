"""The differential invariant harness: one scenario, every execution mode.

For a given scenario this module runs the full pipeline -- crowd
campaign, (re-anchoring) crawl, cleaning, detection -- under every cell
of the **executor × burst-memo grid** and checks the load-bearing
invariants in one place:

* **Byte identity.**  Every cell's crawl dataset, campaign dataset, and
  page store serialize to exactly the baseline's bytes -- local or
  process executors, 1 or 2 workers, memo on or off.
* **Memo soundness.**  Retailers whose behaviour a fan-out signature
  cannot capture are demoted to the live path (the scenario says which
  ones); a fully cross-validated cell (every memo hit re-run live)
  raises :class:`~repro.core.burstcache.BurstCacheDivergence` on any
  byte difference.
* **Cleaning conduct.**  Scenarios that plant corrupted pages declare
  the drop reasons cleaning must trigger; the harness checks they fired.
* **Detection quality.**  Precision must be 1.0 and recall >= 0.9
  against the scenario's ground truth, and every true positive's
  measured magnitude must reach the truth's promised bound.

``python -m repro.scenarios.harness [--scenario NAME] [--grid]`` runs it
from the command line; ``tests/test_scenario_matrix.py`` runs the same
code as the regression suite.
"""

from __future__ import annotations

import argparse
import hashlib
import json
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.cleaning import clean_reports
from repro.analysis.detection import DetectionScore, score_detection
from repro.core.backend import SheriffBackend
from repro.core.burstcache import BurstCache
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.crawler.records import CrawlDataset
from repro.crowd import CampaignConfig, run_campaign
from repro.exec import ExecConfig
from repro.io import report_to_dict
from repro.net.clock import SECONDS_PER_DAY
from repro.scenarios.engine import Scenario, get_scenario, scenario_names
from repro.scenarios import definitions as _definitions  # noqa: F401  (registers)

__all__ = [
    "GridCell",
    "CellResult",
    "DEFAULT_GRID",
    "run_cell",
    "run_matrix",
    "run_scenario_crawl",
    "check_invariants",
    "main",
]


@dataclass(frozen=True)
class GridCell:
    """One point of the executor × memo grid."""

    mode: str = "local"
    workers: int = 1
    burst_memo: bool = True
    #: Fraction of memo hits re-run live for cross-validation (only
    #: meaningful with the memo on; 1.0 = audit every hit).
    validate_fraction: float = 0.0
    #: Shard planner ("cost" or "stable") -- wall clock only, never bytes.
    planner: str = "cost"

    @property
    def label(self) -> str:
        memo = "memo" if self.burst_memo else "live"
        if self.validate_fraction:
            memo += f"+audit{self.validate_fraction:g}"
        if self.planner != "cost":
            memo += f"/{self.planner}"
        return f"{self.mode}x{self.workers}/{memo}"

    def exec_config(self) -> Optional[ExecConfig]:
        """The executor config this cell runs under (None = inline)."""
        if self.workers == 1 and self.mode == "local":
            return None
        return ExecConfig(
            workers=self.workers, mode=self.mode, planner=self.planner
        )


#: The acceptance grid: executor(local/process, N in {1, 2}) × memo
#: on/off, plus a fully cross-validated memo cell auditing every hit.
DEFAULT_GRID: tuple[GridCell, ...] = tuple(
    GridCell(mode=mode, workers=workers, burst_memo=memo)
    for memo in (True, False)
    for mode in ("local", "process")
    for workers in (1, 2)
) + (GridCell(burst_memo=True, validate_fraction=1.0),)


@dataclass
class CellResult:
    """Everything one grid cell produced, serialized for comparison."""

    scenario: str
    cell: GridCell
    crawl_blob: str
    store_blob: str
    campaign_blob: str
    score: DetectionScore
    drop_counts: dict[str, int]
    memo_stats: dict[str, int]
    live_only: dict[str, str]
    n_reports: int
    #: The crawled dataset itself (only with ``run_cell(keep_dataset=
    #: True)`` -- the CLI saves it; grid runs drop it to stay lean).
    crawl_dataset: Optional[CrawlDataset] = None

    def digest(self) -> str:
        """One hash over every byte-identity-relevant artifact."""
        h = hashlib.sha256()
        for blob in (self.crawl_blob, self.store_blob, self.campaign_blob):
            h.update(blob.encode("utf-8"))
            h.update(b"\x1f")
        return h.hexdigest()


def _blob(reports) -> str:
    return json.dumps([report_to_dict(r) for r in reports], sort_keys=True)


def _store_blob(store) -> str:
    return json.dumps(
        [[p.check_id, p.url, p.domain, p.vantage, p.timestamp, p.html]
         for p in store],
        sort_keys=True,
    )


def _campaign_blob(dataset) -> str:
    rows = []
    for record in dataset:
        rows.append({
            "user": record.user_id,
            "country": record.user_country,
            "day": record.day_index,
            "domain": record.domain,
            "url": record.url,
            "failure": record.outcome.failure,
            "user_amount": record.outcome.user_amount,
            "user_currency": record.outcome.user_currency,
            "report": report_to_dict(record.report) if record.report else None,
        })
    return json.dumps(rows, sort_keys=True)


def run_scenario_crawl(
    world,
    backend: SheriffBackend,
    scenario: Scenario,
    *,
    exec_config: Optional[ExecConfig] = None,
    seed: int = 2013,
) -> CrawlDataset:
    """The scenario-aware crawl: plan (and maybe re-anchor) per day.

    For ``reanchor_daily`` scenarios the operator's one-time manual step
    becomes a daily one: the plan -- product discovery *and* anchor
    derivation -- is rebuilt at the start of each crawl day, after the
    clock reaches it, so anchors always match the day's template.  Other
    scenarios build the plan once, exactly like
    :func:`~repro.crawler.run_crawl` alone would.
    """
    dataset = CrawlDataset()
    executor = exec_config.create(world) if exec_config is not None else None
    plan = None
    try:
        for offset in range(scenario.crawl_days):
            day_start = (scenario.crawl_start_day + offset) * SECONDS_PER_DAY
            if day_start > world.clock.now:
                world.clock.advance_to(day_start)
            if plan is None or scenario.reanchor_daily:
                plan = build_plan(
                    world,
                    domains=list(scenario.crawl_domains),
                    products_per_retailer=scenario.products_per_retailer,
                    seed=seed,
                )
            day = run_crawl(
                world, backend, plan,
                CrawlConfig(
                    days=1,
                    start_day=scenario.crawl_start_day + offset,
                    pacing_seconds=scenario.pacing_seconds,
                ),
                executor=executor,
            )
            for report in day.reports:
                dataset.add(report)
    finally:
        if executor is not None:
            executor.close()
    return dataset


def run_cell(
    scenario: Scenario | str,
    cell: GridCell = GridCell(),
    *,
    seed: int = 2013,
    keep_dataset: bool = False,
) -> CellResult:
    """Run one grid cell: campaign + crawl + analysis on a fresh world."""
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    world = scenario.build_world(seed)
    backend = SheriffBackend(
        world.network, world.vantage_points, world.rates,
        burst_cache=BurstCache(
            enabled=cell.burst_memo,
            validate_fraction=cell.validate_fraction,
        ),
    )
    exec_config = cell.exec_config()
    campaign = run_campaign(
        world, backend,
        CampaignConfig(
            n_checks=scenario.campaign_checks,
            population_size=scenario.campaign_population,
            start_day=0,
            end_day=scenario.campaign_end_day,
            seed=seed,
        ),
        exec_config=exec_config,
    )
    crawl = run_scenario_crawl(
        world, backend, scenario, exec_config=exec_config, seed=seed
    )
    clean = clean_reports(crawl.reports, world.rates, require_repeatable=True)
    score = score_detection(
        crawl.reports, world.rates, scenario.truth,
        min_extent=scenario.min_extent, clean=clean,
    )
    return CellResult(
        scenario=scenario.name,
        cell=cell,
        crawl_blob=_blob(crawl.reports),
        store_blob=_store_blob(backend.store),
        campaign_blob=_campaign_blob(campaign),
        score=score,
        drop_counts=dict(clean.dropped),
        memo_stats=backend.burst_cache.stats(),
        live_only=backend.burst_cache.live_only_domains(),
        n_reports=len(crawl),
        crawl_dataset=crawl if keep_dataset else None,
    )


def run_matrix(
    scenario: Scenario | str,
    grid: Sequence[GridCell] = DEFAULT_GRID,
    *,
    seed: int = 2013,
) -> list[CellResult]:
    """Run every grid cell for one scenario (baseline cell first)."""
    return [run_cell(scenario, cell, seed=seed) for cell in grid]


def check_invariants(
    scenario: Scenario | str, results: Sequence[CellResult]
) -> list[str]:
    """Every violated invariant across ``results``, as human-readable lines.

    Empty list = the scenario holds.  The same checks back the test
    suite (which asserts emptiness) and the CLI harness (which prints).
    """
    if isinstance(scenario, str):
        scenario = get_scenario(scenario)
    problems: list[str] = []
    if not results:
        return ["no cells ran"]
    baseline = results[0]

    # Byte identity across the whole grid.
    for result in results[1:]:
        for name in ("crawl_blob", "store_blob", "campaign_blob"):
            if getattr(result, name) != getattr(baseline, name):
                problems.append(
                    f"{result.cell.label}: {name.removesuffix('_blob')} bytes "
                    f"diverged from {baseline.cell.label}"
                )

    # Memo soundness, both directions: exactly the declared domains are
    # demoted to the live path (an unexpected demotion means a
    # supposedly memoizable behaviour regressed, turning the memo-on vs
    # memo-off comparison vacuous), and the memo actually served hits
    # whenever the scenario has memoizable retailers.  Process cells are
    # inspectable too: workers drain their cache's entries, demotions,
    # and counters back through the shard results, and the coordinator
    # folds them into its master cache -- so its stats speak for the
    # fleet.  The one blind spot is a *stable*-planner process cell: the
    # coordinator then never classifies domains itself and only
    # evidence-based demotions flow back, so the structural live-only
    # set would read incomplete.
    memoizable = set(scenario.crawl_domains) - set(scenario.live_only_domains)
    for result in results:
        if not result.cell.burst_memo:
            continue
        if result.cell.mode != "local" and result.cell.planner != "cost":
            continue
        observed = set(result.live_only)
        for domain in sorted(set(scenario.live_only_domains) - observed):
            problems.append(
                f"{result.cell.label}: {domain} should be live-only "
                f"but the memo considered it cacheable"
            )
        for domain in sorted(observed - set(scenario.live_only_domains)):
            problems.append(
                f"{result.cell.label}: {domain} unexpectedly demoted to "
                f"live-only ({result.live_only[domain]})"
            )
        if memoizable and result.memo_stats.get("hits", 0) <= 0:
            problems.append(
                f"{result.cell.label}: the memo never served a hit even "
                f"though {sorted(memoizable)} are memoizable"
            )

    # Cleaning conduct: declared drop reasons must have fired.
    for reason in scenario.expected_drop_reasons:
        if baseline.drop_counts.get(reason, 0) <= 0:
            problems.append(
                f"cleaning never dropped a report for {reason!r} "
                f"(got {baseline.drop_counts})"
            )

    # Detection quality against ground truth.
    score = baseline.score
    if score.precision < 1.0:
        problems.append(
            f"precision {score.precision:.2f} < 1.0 "
            f"(false positives: {score.false_positives})"
        )
    if score.recall < 0.9:
        problems.append(
            f"recall {score.recall:.2f} < 0.9 "
            f"(missed: {score.false_negatives})"
        )
    for domain, (measured, bound) in score.magnitude_violations().items():
        problems.append(
            f"{domain}: measured magnitude x{measured:.3f} below the "
            f"ground-truth bound x{bound:.3f}"
        )
    return problems


def main(argv: Optional[list[str]] = None) -> int:
    """CLI entry point: run scenarios and report invariants."""
    parser = argparse.ArgumentParser(
        prog="repro.scenarios.harness",
        description="Adversarial scenario matrix: invariants + detection quality",
    )
    parser.add_argument(
        "--scenario", action="append", choices=scenario_names(),
        help="scenario to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--grid", action="store_true",
        help="run the full executor x memo grid per scenario "
             "(default: the inline memo-on cell only)",
    )
    parser.add_argument("--seed", type=int, default=2013)
    args = parser.parse_args(argv)

    names = args.scenario or scenario_names()
    grid = DEFAULT_GRID if args.grid else (GridCell(),)
    failures = 0
    for name in names:
        scenario = get_scenario(name)
        results = run_matrix(scenario, grid, seed=args.seed)
        problems = check_invariants(scenario, results)
        cells = ", ".join(r.cell.label for r in results)
        print(f"=== {name} [{cells}] ===")
        for line in results[0].score.summary_lines():
            print(f"  {line}")
        stats = results[0].memo_stats
        print(
            f"  memo: {stats['hits']} hits / {stats['misses']} misses / "
            f"{stats['domains_live_only']} live-only domains; "
            f"{results[0].n_reports} crawl reports"
        )
        if problems:
            failures += 1
            for line in problems:
                print(f"  INVARIANT VIOLATED: {line}")
        else:
            print("  all invariants hold")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
