"""DNS + request routing with a latency model.

:class:`Network` is the spine of the simulation: servers register under
hostnames, clients issue :class:`~repro.net.http.HttpRequest` objects, and
the network resolves the hostname, applies per-hop latency (seeded jitter),
stamps virtual-clock timestamps, follows redirects, and returns the
response.  Packet loss can be enabled to exercise the retry paths in the
crawler and $heriff backend.

Structured-fetch channel: responses travel with both the serialized HTML
body (the byte-faithful wire/archive representation) and, when the origin
server rendered a DOM tree, the tree itself
(:attr:`~repro.net.http.HttpResponse.document`).  The network forwards
responses as-is, so the attached tree survives routing and redirects and
lets in-process consumers skip re-parsing the body they just received.

Determinism contract (what makes sharded execution possible): every
stochastic draw -- latency jitter and packet loss -- is keyed by the
*request identity* (network seed, URL, client IP, virtual send time), not
by a shared RNG stream.  Two requests therefore never influence each
other's draws: delivering them in a different order, or in different
worker processes rebuilt from the same seed, produces bit-identical
responses and timings.  See ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.net.clock import VirtualClock
from repro.net.http import Headers, HttpRequest, HttpResponse, HttpStatus
from repro.net.urls import URL, urljoin

__all__ = ["Network", "Server", "DNSError", "TransportError", "LatencyModel"]


class TransportError(RuntimeError):
    """A request failed below HTTP level (timeout / simulated loss)."""


class DNSError(TransportError):
    """The hostname is not registered with the network."""


class Server(Protocol):
    """Anything that can answer a request.

    Retailer servers, tracker endpoints, and test doubles implement this.
    """

    def handle(self, request: HttpRequest) -> HttpResponse:  # pragma: no cover
        """Answer one request (servers are single-threaded and pure)."""
        ...


@dataclass
class LatencyModel:
    """Base latency plus uniform jitter, in virtual seconds."""

    base: float = 0.08
    jitter: float = 0.04

    def from_unit(self, unit: float) -> float:
        """The latency at a point of the unit interval.

        The network feeds it request-keyed hash draws (uniform in
        [0, 1)), so no RNG object is constructed per delivery and no
        draw depends on any other request -- the determinism contract.
        """
        if self.jitter <= 0:
            return self.base
        return self.base + unit * self.jitter

    @property
    def timeout(self) -> float:
        """Virtual time a lost request burns before failing.

        Strictly positive even at ``base == 0``: a retry must send at a
        *later* instant than the lost attempt, or its request-identity
        draw key (which includes the send time) would repeat and re-lose
        the request forever.
        """
        return max(self.base * 10.0, 1e-3)


class Network:
    """Routes requests to servers registered by hostname.

    Parameters
    ----------
    clock:
        The shared virtual clock; every delivered request advances it by
        the sampled latency so timestamps are causally ordered.
    seed:
        Keys the jitter / loss draws; the same seed reproduces the same
        request timeline bit-for-bit.  Draws are derived per request from
        (seed, URL, client IP, send time) -- never from a shared stream --
        so the timeline of one client/domain is independent of traffic to
        any other (the property shard workers rely on).
    loss_rate:
        Probability a request is dropped with :class:`TransportError`.
    """

    MAX_REDIRECTS = 5

    def __init__(
        self,
        clock: Optional[VirtualClock] = None,
        *,
        seed: int = 0,
        loss_rate: float = 0.0,
        latency: Optional[LatencyModel] = None,
    ) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self.clock = clock or VirtualClock()
        self.latency = latency or LatencyModel()
        self.loss_rate = loss_rate
        self._seed = seed
        self._servers: dict[str, Server] = {}
        self.request_log: list[HttpRequest] = []
        self._request_count = 0

    # ------------------------------------------------------------------
    # Registration / DNS
    # ------------------------------------------------------------------
    def register(self, hostname: str, server: Server) -> None:
        """Bind ``hostname`` to ``server``; re-binding replaces."""
        self._servers[hostname.lower()] = server

    def unregister(self, hostname: str) -> None:
        """Remove a hostname binding (missing hostnames are ignored)."""
        self._servers.pop(hostname.lower(), None)

    def resolve(self, hostname: str) -> Server:
        """Return the server for ``hostname`` or raise :class:`DNSError`."""
        try:
            return self._servers[hostname.lower()]
        except KeyError:
            raise DNSError(f"NXDOMAIN: {hostname}") from None

    @property
    def hostnames(self) -> list[str]:
        return sorted(self._servers)

    @property
    def request_count(self) -> int:
        """Total requests delivered (including redirect hops)."""
        return self._request_count

    # ------------------------------------------------------------------
    # Request delivery
    # ------------------------------------------------------------------
    def fetch(
        self,
        request: HttpRequest,
        *,
        follow_redirects: bool = True,
        record: bool = False,
    ) -> HttpResponse:
        """Deliver ``request``, optionally following redirects.

        The response's ``url`` is the final URL and ``elapsed`` the total
        virtual round-trip time across hops.
        """
        started = self.clock.now
        current = request
        # Set-Cookie headers seen on redirect hops must survive to the
        # final response -- a browser applies them at every hop.
        pending_cookies: list[str] = []
        for _ in range(self.MAX_REDIRECTS + 1):
            response = self._deliver(current, record=record)
            if follow_redirects and response.status.is_redirect:
                location = response.headers.get("Location")
                if not location:
                    break
                pending_cookies.extend(response.headers.get_all("Set-Cookie"))
                next_url = urljoin(current.url, location)
                headers = current.headers.copy()
                if pending_cookies and next_url.host == current.url.host:
                    headers.set("Cookie", _merge_cookies(
                        headers.get("Cookie"), pending_cookies
                    ))
                current = HttpRequest(
                    method="GET",
                    url=next_url,
                    headers=headers,
                    client_ip=current.client_ip,
                    timestamp=self.clock.now,
                )
                continue
            break
        else:
            raise TransportError(f"too many redirects for {request.url}")
        for header in pending_cookies:
            response.headers.add("Set-Cookie", header)
        response.url = current.url
        response.elapsed = self.clock.now - started
        return response

    def delivery_draws(
        self, url: "URL | str", client_ip: str, send_ts: float
    ) -> tuple[float, float, float]:
        """The delivery's three unit-interval draws (loss, two latencies).

        One digest keyed by the request identity at its send instant --
        never a shared RNG stream, so no request can shift another's
        draws (the sharding determinism contract).  Retries re-key
        naturally: a failed attempt burns timeout time, so the next
        attempt sends at a later instant.

        Public because the burst-memo layer (:mod:`repro.core.burstcache`)
        replays a fan-out's exact delivery timeline from these draws
        without touching any server; the draws are a pure function of
        ``(seed, url, client_ip, send_ts)``, so prediction and delivery
        can never disagree.
        """
        payload = (
            f"{self._seed}\x1f{url}\x1f{client_ip}"
            f"\x1f{send_ts!r}\x1fdeliver"
        ).encode("utf-8")
        digest = hashlib.blake2b(payload, digest_size=24).digest()
        return (
            int.from_bytes(digest[0:8], "big") / 2**64,
            int.from_bytes(digest[8:16], "big") / 2**64,
            int.from_bytes(digest[16:24], "big") / 2**64,
        )

    def _deliver(self, request: HttpRequest, *, record: bool) -> HttpResponse:
        loss_draw, latency_out, latency_back = self.delivery_draws(
            request.url, request.client_ip, self.clock.now
        )
        if self.loss_rate and loss_draw < self.loss_rate:
            # A lost request still burns time (timeout) -- which also
            # re-keys any retry's draws to a fresh send instant.
            self.clock.advance(self.latency.timeout)
            raise TransportError(f"request to {request.url.host} timed out")
        server = self.resolve(request.url.host)
        self.clock.advance(self.latency.from_unit(latency_out))
        request.timestamp = self.clock.now
        self._request_count += 1
        if record:
            self.request_log.append(request)
        response = server.handle(request)
        self.clock.advance(self.latency.from_unit(latency_back))
        return response


def _merge_cookies(existing: Optional[str], set_cookie_headers: list[str]) -> str:
    """Fold redirect-hop Set-Cookie values into a request Cookie header."""
    pairs: dict[str, str] = {}
    if existing:
        for item in existing.split(";"):
            item = item.strip()
            if "=" in item:
                name, _, value = item.partition("=")
                pairs[name.strip()] = value.strip()
    for header in set_cookie_headers:
        first = header.split(";", 1)[0]
        if "=" in first:
            name, _, value = first.partition("=")
            pairs[name.strip()] = value.strip()
    return "; ".join(f"{k}={v}" for k, v in pairs.items())


class FunctionServer:
    """Adapt a plain callable into a :class:`Server` (testing helper)."""

    def __init__(self, fn: Callable[[HttpRequest], HttpResponse]) -> None:
        self._fn = fn

    def handle(self, request: HttpRequest) -> HttpResponse:
        """Delegate to the wrapped callable."""
        return self._fn(request)
