"""$heriff: the paper's crowd-assisted price-discrimination detector.

The pipeline, matching §3.1's six steps:

1. a user *highlights a price* on a product page
   (:mod:`repro.core.highlight` turns the highlighted DOM node into a
   robust :class:`~repro.core.highlight.PriceAnchor`),
2. the browser extension ships the exact URI + anchor to the backend
   (:mod:`repro.core.extension`),
3. the backend fans the URI out to the 14 vantage points in a synchronized
   burst (:mod:`repro.core.backend`),
4. each downloaded copy of the page has its price extracted at the
   anchored location (:mod:`repro.core.extraction`), with locale-aware
   number parsing,
5. prices are converted to USD and compared under the conservative
   currency guard; the per-location report goes back to the user
   (:mod:`repro.core.reports`),
6. pages are archived for later analysis (:mod:`repro.core.store`).
"""

from repro.core.backend import CheckRequest, ScheduledCheck, SheriffBackend
from repro.core.burstcache import BurstCache, BurstCacheDivergence
from repro.core.extension import PreparedCheck, SheriffExtension, UserClient
from repro.core.extraction import ExtractedPrice, extract_price
from repro.core.highlight import PriceAnchor, derive_anchor
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.core.store import ArchivedPage, PageStore

__all__ = [
    "ArchivedPage",
    "BurstCache",
    "BurstCacheDivergence",
    "CheckRequest",
    "ExtractedPrice",
    "PageStore",
    "PreparedCheck",
    "PriceAnchor",
    "PriceCheckReport",
    "ScheduledCheck",
    "SheriffBackend",
    "SheriffExtension",
    "UserClient",
    "VantageObservation",
    "derive_anchor",
    "extract_price",
]
