"""§3.2 dataset summary: paper numbers vs measured numbers."""

from __future__ import annotations

from repro.analysis.tables import dataset_summary
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext


def run(ctx: ExperimentContext) -> FigureResult:
    """Produce the §3.2 dataset-summary table."""
    result = FigureResult(
        figure_id="TAB-DATA",
        title="Dataset summary (§3.2)",
        paper_claim=(
            "crowd: 1500 requests / 340 users / 18 countries / 600 domains; "
            "crawl: 21 retailers x <=100 products, daily for a week, 188K prices"
        ),
        columns=("metric", "paper", "measured"),
    )
    summary = dataset_summary(ctx.crowd, ctx.crawl)
    for metric, paper, measured in summary.rows():
        result.add_row(metric, paper, measured)

    measured = summary.measured
    at_paper_scale = ctx.scale.name == "paper"
    result.check(
        "crowd countries == 18",
        measured.get("crowd_countries", 0) == 18 or not at_paper_scale,
    )
    result.check(
        "21 crawled retailers", measured.get("crawl_retailers", 0) == 21
    )
    if at_paper_scale:
        result.check(
            "crowd scale matches (1500 requests / 340 users / ~600 domains)",
            measured.get("crowd_requests") == 1500
            and measured.get("crowd_users", 0) >= 300
            and measured.get("crowd_domains", 0) >= 500,
        )
        result.check(
            "extracted prices at the paper's order of magnitude (~188K)",
            140_000 <= measured.get("crawl_extracted_prices", 0) <= 230_000,
        )
        result.notes.append(
            "we extract ~160K prices vs the paper's 188K: several simulated "
            "niche retailers stock fewer than 100 products, so 'up to 100 "
            "per retailer' yields fewer fetches than the authors' catalogs did"
        )
    else:
        result.notes.append(
            f"scale '{ctx.scale.name}' shrinks the workload; absolute counts "
            f"are checked at scale 'paper' only"
        )
    return result
