"""The page archive: "(vi) We store the pages for analysis in a database."

The store keeps *metadata* for every archived fetch but caps the number of
full HTML bodies retained per domain: the third-party census (§4.4) needs a
handful of pages per retailer, while a paper-scale crawl would otherwise
hold ~200K pages of HTML in memory.  The cap is a store policy, not a
caller concern.

Retained bodies are deduplicated by content: a promo-free retailer renders
byte-identical pages to every vantage point of a burst, so the store
interns equal strings and all duplicate archives share one object.  The
:class:`ArchivedPage` API is unchanged -- ``page.html`` is always the full
text of what was fetched.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = ["ArchivedPage", "PageStore"]

#: Initial value of the archive hash chain (no pages archived yet).
_CHAIN_SEED = b"\x00" * 16


@dataclass(frozen=True)
class ArchivedPage:
    """One archived fetch."""

    check_id: str
    url: str
    domain: str
    vantage: str
    timestamp: float
    html: Optional[str]  # None when only metadata was retained

    @property
    def retained(self) -> bool:
        return self.html is not None


class PageStore:
    """In-memory page database with per-domain HTML retention caps."""

    def __init__(
        self,
        *,
        html_per_domain: int = 30,
        metadata_cap: Optional[int] = None,
    ) -> None:
        """``metadata_cap`` bounds the per-fetch metadata list.

        ``None`` (the default) keeps every :class:`ArchivedPage` forever
        -- the analysis-friendly behaviour.  A campaign-scale run (100K+
        checks, millions of fetches) sets a cap and the store becomes a
        rolling window over the most recent archives: memory stays flat
        no matter how long the campaign runs, at the documented cost that
        ``__iter__``/``pages_for_domain`` only see the window.  A page
        rolling off the window returns its domain's HTML retention budget
        (and its body's interning slot), so the window always carries up
        to ``html_per_domain`` recent bodies per domain rather than only
        the campaign's very first ones.
        """
        if html_per_domain < 0:
            raise ValueError("html_per_domain must be >= 0")
        if metadata_cap is not None and metadata_cap < 1:
            raise ValueError("metadata_cap must be >= 1 (or None)")
        self.html_per_domain = html_per_domain
        self.metadata_cap = metadata_cap
        self._pages: "deque[ArchivedPage] | list[ArchivedPage]" = (
            deque() if metadata_cap is not None else []
        )
        self._html_counts: dict[str, int] = {}
        # Content interning pool: maps an HTML string to its first-seen
        # instance, so equal bodies are stored once (str is immutable).
        self._interned: dict[str, str] = {}
        self._dedup_hits = 0
        self._archive_chain = _CHAIN_SEED

    # ------------------------------------------------------------------
    def archive(
        self,
        *,
        check_id: str,
        url: str,
        domain: str,
        vantage: str,
        timestamp: float,
        html: str,
    ) -> ArchivedPage:
        """Store one fetched page, retaining HTML if under the domain cap.

        Retained HTML is interned: when an identical body was archived
        before, the new page references the existing string instead of
        holding a redundant copy (paper-scale crawls archive ~200K pages,
        most of them byte-identical across vantage points).
        """
        digest = hashlib.blake2b(
            "\x1f".join(
                (check_id, url, domain, vantage, repr(timestamp), html)
            ).encode("utf-8"),
            digest_size=16,
            key=self._archive_chain,
        )
        self._archive_chain = digest.digest()
        if self.metadata_cap is not None:
            while len(self._pages) >= self.metadata_cap:
                evicted = self._pages.popleft()  # type: ignore[union-attr]
                if evicted.retained:
                    self._html_counts[evicted.domain] -= 1
                    # Future identical bodies re-intern; pages still in
                    # the window keep the shared string alive meanwhile.
                    self._interned.pop(evicted.html, None)
        count = self._html_counts.get(domain, 0)
        keep = count < self.html_per_domain
        if keep:
            interned = self._interned.get(html)
            if interned is not None:
                self._dedup_hits += 1
                html = interned
            else:
                self._interned[html] = html
        page = ArchivedPage(
            check_id=check_id,
            url=url,
            domain=domain,
            vantage=vantage,
            timestamp=timestamp,
            html=html if keep else None,
        )
        if keep:
            self._html_counts[domain] = count + 1
        self._pages.append(page)
        return page

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pages)

    def __iter__(self) -> Iterator[ArchivedPage]:
        return iter(self._pages)

    def pages_for_domain(
        self, domain: str, *, with_html_only: bool = False
    ) -> list[ArchivedPage]:
        """All archived pages of one domain (optionally HTML-bearing only)."""
        return [
            page
            for page in self._pages
            if page.domain == domain and (page.retained or not with_html_only)
        ]

    def domains(self) -> list[str]:
        """Every domain with at least one archived page, sorted."""
        return sorted({page.domain for page in self._pages})

    def retained_html_count(self) -> int:
        """How many archived pages still carry their full HTML."""
        return sum(1 for page in self._pages if page.retained)

    def unique_html_count(self) -> int:
        """How many *distinct* HTML bodies the retained pages share."""
        return len(self._interned)

    def dedup_stats(self) -> dict[str, int]:
        """Archive dedup counters (for performance reports)."""
        return {
            "store_unique_bodies": len(self._interned),
            "store_dedup_hits": self._dedup_hits,
        }

    # ------------------------------------------------------------------
    @property
    def archive_chain(self) -> str:
        """Hex digest of the rolling hash chain over every archived fetch.

        Each :meth:`archive` call folds the page's identifying fields and
        full HTML into a keyed blake2b chain.  Two stores that processed
        the same archive *stream* -- regardless of retention caps or
        eviction -- end with equal chains, which is what checkpoint resume
        asserts instead of comparing page windows byte by byte.
        """
        return self._archive_chain.hex()

    def restore_archive_chain(self, chain: str) -> None:
        """Reset the chain cursor to a previously captured value.

        Used on checkpoint resume: the store starts empty (the retention
        window refills as the resumed run archives pages) but the chain
        continues from where the interrupted run committed, so the final
        chain matches an uninterrupted run's.
        """
        raw = bytes.fromhex(chain)
        if len(raw) != len(_CHAIN_SEED):
            raise ValueError(f"archive chain must be {len(_CHAIN_SEED)} bytes")
        self._archive_chain = raw

    def clear(self) -> None:
        """Drop every archived page and reset the retention counters."""
        self._pages.clear()
        self._html_counts.clear()
        self._interned.clear()
        self._dedup_hits = 0
        self._archive_chain = _CHAIN_SEED
