"""Sharded execution: partition stability and byte-identical merges.

The executor contract (``docs/ARCHITECTURE.md``): a crawl or campaign
executed across N worker shards serializes to exactly the bytes of the
sequential run, for any N, in-process or across processes.  These tests
assert the contract end to end -- dataset serialization compared as
strings -- plus the pieces it rests on: stable shard assignment across
processes, order-preserving partitions, and store-state equivalence.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.core.backend import CheckRequest, ScheduledCheck, SheriffBackend

# The byte-identity suites below re-run whole crawls/campaigns per
# worker count: full tier only (docs/TESTING.md).  The ShardPlan /
# ExecConfig unit tests stay in the fast tier.
slow = pytest.mark.slow
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.crowd import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, WorldSpec, build_world
from repro.exec import ExecConfig, ExecError, LocalExecutor, ProcessExecutor, ShardPlan
from repro.io import report_to_dict


def _tiny_world():
    return build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0))


def _anchor(world, domain):
    from repro.analysis.personal import derive_anchor_for_domain

    return derive_anchor_for_domain(world, domain)


def _crawl_blob(exec_config, *, loss_rate=0.0) -> tuple[str, tuple]:
    """Serialize a small same-seed crawl plus a store signature."""
    world = build_world(
        WorldConfig(catalog_scale=0.15, long_tail_domains=0, loss_rate=loss_rate)
    )
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    plan = build_plan(
        world, domains=world.crawled_domains[:5], products_per_retailer=4
    )
    dataset = run_crawl(
        world, backend, plan, CrawlConfig(days=2), exec_config=exec_config
    )
    blob = json.dumps(
        [report_to_dict(r) for r in dataset.reports], sort_keys=True
    )
    store = backend.store
    signature = (
        len(store),
        store.retained_html_count(),
        store.unique_html_count(),
        [(p.check_id, p.vantage, p.timestamp, p.html) for p in store],
    )
    return blob, signature


def _campaign_blob(exec_config) -> str:
    world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=10))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    dataset = run_campaign(
        world,
        backend,
        CampaignConfig(n_checks=40, population_size=20, seed=11),
        exec_config=exec_config,
    )
    rows = []
    for record in dataset:
        rows.append({
            "user": record.user_id,
            "day": record.day_index,
            "domain": record.domain,
            "url": record.url,
            "failure": record.outcome.failure,
            "user_amount": record.outcome.user_amount,
            "report": report_to_dict(record.report) if record.report else None,
        })
    return json.dumps(rows, sort_keys=True)


# ----------------------------------------------------------------------
# ShardPlan
# ----------------------------------------------------------------------
class TestShardPlan:
    def test_partition_covers_all_and_preserves_order(self):
        world = _tiny_world()
        anchor = _anchor(world, "www.digitalrev.com")
        domains = world.crawled_domains[:6]
        scheduled = []
        index = 0
        for _ in range(3):  # interleave domains, like a crawl day does
            for domain in domains:
                product = world.retailer(domain).catalog.products[0]
                scheduled.append(ScheduledCheck(
                    index=index,
                    check_id=f"chk{index:07d}",
                    start_ts=float(index),
                    request=CheckRequest(
                        url=f"http://{domain}{product.path}", anchor=anchor
                    ),
                ))
                index += 1
        plan = ShardPlan(4)
        shards = plan.partition(scheduled)
        assert len(shards) == 4
        flat = [sched.index for shard in shards for sched in shard]
        assert sorted(flat) == list(range(len(scheduled)))
        for shard in shards:  # submission order survives inside a shard
            assert [s.index for s in shard] == sorted(s.index for s in shard)

    def test_shards_own_disjoint_retailers(self):
        plan = ShardPlan(3)
        domains = [f"www.shop{i}.example" for i in range(60)]
        owners = {domain: plan.shard_of(domain) for domain in domains}
        assert set(owners.values()) == {0, 1, 2}  # all shards used
        # Ownership is a function of the domain alone.
        assert all(plan.shard_of(d) == owner for d, owner in owners.items())

    def test_shard_of_case_insensitive(self):
        plan = ShardPlan(5)
        assert plan.shard_of("WWW.Amazon.COM") == plan.shard_of("www.amazon.com")

    def test_stable_across_processes(self):
        """The coordinator/worker agreement the whole design rests on."""
        domains = ["www.amazon.com", "www.hotels.com", "www.digitalrev.com",
                   "store.killah.com", "www.rightstart.com"]
        local = [ShardPlan(4).shard_of(d) for d in domains]
        code = (
            "from repro.exec import ShardPlan; "
            f"print([ShardPlan(4).shard_of(d) for d in {domains!r}])"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert json.loads(out.stdout) == local

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ShardPlan(0)


# ----------------------------------------------------------------------
# ExecConfig
# ----------------------------------------------------------------------
class TestExecConfig:
    def test_defaults_are_sequential(self):
        config = ExecConfig()
        assert config.workers == 1 and config.mode == "local"
        assert config.create(_tiny_world()) is None

    def test_local_workers_create_local_executor(self):
        executor = ExecConfig(workers=3).create(_tiny_world())
        assert isinstance(executor, LocalExecutor)
        assert executor.plan.workers == 3

    def test_process_mode_creates_process_executor(self):
        executor = ExecConfig(workers=2, mode="process").create(_tiny_world())
        try:
            assert isinstance(executor, ProcessExecutor)
        finally:
            executor.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ExecConfig(workers=0)
        with pytest.raises(ValueError):
            ExecConfig(mode="threads")


# ----------------------------------------------------------------------
# Byte identity: crawl
# ----------------------------------------------------------------------
@slow
class TestCrawlByteIdentity:
    def test_local_workers_1_2_4_identical(self):
        """The acceptance criterion: same-seed crawls at workers 1/2/4
        serialize to identical bytes (and identical archived stores)."""
        base_blob, base_store = _crawl_blob(None)
        for workers in (1, 2, 4):
            blob, store = _crawl_blob(ExecConfig(workers=workers))
            assert blob == base_blob, f"workers={workers} diverged"
            assert store == base_store, f"workers={workers} store diverged"

    def test_process_workers_identical(self):
        base_blob, base_store = _crawl_blob(None)
        blob, store = _crawl_blob(ExecConfig(workers=2, mode="process"))
        assert blob == base_blob
        assert store == base_store

    def test_identity_survives_packet_loss(self):
        """Loss draws are per-request, so retries/failures land on the
        same fetches in every execution mode."""
        base_blob, _ = _crawl_blob(None, loss_rate=0.10)
        blob, _ = _crawl_blob(ExecConfig(workers=3), loss_rate=0.10)
        assert blob == base_blob


# ----------------------------------------------------------------------
# Byte identity: campaign
# ----------------------------------------------------------------------
@slow
class TestCampaignByteIdentity:
    def test_local_workers_identical(self):
        base = _campaign_blob(None)
        for workers in (2, 4):
            assert _campaign_blob(ExecConfig(workers=workers)) == base

    def test_process_workers_identical(self):
        base = _campaign_blob(None)
        assert _campaign_blob(ExecConfig(workers=2, mode="process")) == base


# ----------------------------------------------------------------------
# Executor seams
# ----------------------------------------------------------------------
@slow
class TestExecutorSeams:
    def test_caller_owned_executor_reused_across_days(self):
        base_blob, _ = _crawl_blob(None)
        world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=0))
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        plan = build_plan(
            world, domains=world.crawled_domains[:5], products_per_retailer=4
        )
        executor = LocalExecutor(2)
        dataset = run_crawl(
            world, backend, plan, CrawlConfig(days=2), executor=executor
        )
        blob = json.dumps(
            [report_to_dict(r) for r in dataset.reports], sort_keys=True
        )
        assert blob == base_blob

    def test_exec_config_and_executor_are_exclusive(self):
        world = _tiny_world()
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        plan = build_plan(
            world, domains=world.crawled_domains[:1], products_per_retailer=2
        )
        with pytest.raises(ValueError):
            run_crawl(
                world, backend, plan, CrawlConfig(days=1),
                exec_config=ExecConfig(workers=2),
                executor=LocalExecutor(2),
            )

    def test_start_times_must_match_requests(self):
        world = _tiny_world()
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        anchor = _anchor(world, "www.digitalrev.com")
        product = world.retailer("www.digitalrev.com").catalog.products[0]
        request = CheckRequest(
            url=f"http://www.digitalrev.com{product.path}", anchor=anchor
        )
        with pytest.raises(ValueError):
            backend.check_batch([request, request], start_times=[1.0])

    def test_process_executor_rejects_foreign_fleet(self):
        world = _tiny_world()
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        anchor = _anchor(world, "www.digitalrev.com")
        product = world.retailer("www.digitalrev.com").catalog.products[0]
        request = CheckRequest(
            url=f"http://www.digitalrev.com{product.path}", anchor=anchor
        )
        with ProcessExecutor(world, 2) as executor:
            with pytest.raises(ExecError):
                backend.check_batch(
                    [request],
                    vantage_points=world.vantage_points[:3],
                    executor=executor,
                )

    def test_world_spec_round_trip(self):
        world = _tiny_world()
        spec = world.spec()
        assert spec == WorldSpec(config=world.config)
        rebuilt = spec.build()
        assert rebuilt.crawled_domains == world.crawled_domains
        assert [vp.name for vp in rebuilt.vantage_points] == [
            vp.name for vp in world.vantage_points
        ]
