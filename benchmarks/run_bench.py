"""Standalone pipeline-benchmark entry point.

Runs the measurement-spine benches without pytest and writes
``BENCH_pipeline.json`` next to this file: mean ms per synchronized check,
crawl and campaign throughput, and the hit rates of the caches introduced
by the parse-once fan-out.  Future PRs diff this file for a regression
trajectory.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py [--rounds N] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path


def _time_rounds(fn, rounds: int) -> list[float]:
    """Wall-clock each call of ``fn``, in milliseconds."""
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        samples.append((time.perf_counter() - start) * 1000.0)
    return samples


def _summary(samples: list[float]) -> dict[str, float]:
    return {
        "mean_ms": round(statistics.fmean(samples), 4),
        "min_ms": round(min(samples), 4),
        "max_ms": round(max(samples), 4),
        "rounds": len(samples),
    }


def _reset_parse_cache() -> None:
    """Benches that report parse-cache stats must not inherit another
    bench's process-global counters (stats would then depend on which
    benches ran earlier, breaking BENCH_pipeline.json diffs)."""
    from repro.htmlmodel.parser import reset_parse_cache

    reset_parse_cache()


def bench_sheriff_check(rounds: int) -> dict[str, object]:
    """One synchronized 14-vantage-point price check, end to end.

    Two numbers: the *live* fan-out (burst memo off -- the historical
    trajectory metric, comparable to the seed baseline) and the same
    check served as a burst-memo hit.
    """
    from repro.analysis.personal import derive_anchor_for_domain
    from repro.core.backend import CheckRequest, SheriffBackend
    from repro.ecommerce.world import WorldConfig, build_world

    _reset_parse_cache()
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(
        world.network, world.vantage_points, world.rates, burst_memo=False
    )
    domain = "www.digitalrev.com"
    anchor = derive_anchor_for_domain(world, domain)
    product = world.retailer(domain).catalog.products[0]
    request = CheckRequest(url=f"http://{domain}{product.path}", anchor=anchor)

    for _ in range(5):  # warm caches the way a long-lived backend would
        backend.check(request)
    samples = _time_rounds(lambda: backend.check(request), rounds)
    result = _summary(samples)
    result["cache_stats"] = backend.cache_stats()
    server = world.network.resolve(domain)
    result["render_cache"] = server.render_cache_stats()

    backend.burst_cache.enabled = True
    backend.check(request)  # the storing miss
    memo_samples = _time_rounds(lambda: backend.check(request), rounds)
    result["memo_hit"] = _summary(memo_samples)
    result["memo_hit"]["speedup_vs_live"] = round(
        statistics.fmean(samples) / statistics.fmean(memo_samples), 2
    )
    return result


def bench_store_replay(rounds: int) -> dict[str, object]:
    """Re-extract prices from archived page *strings* (the parse-cache
    path: no attached document, only serialized bodies)."""
    from repro.analysis.personal import derive_anchor_for_domain
    from repro.core.backend import CheckRequest, SheriffBackend
    from repro.core.extraction import extract_price
    from repro.ecommerce.world import WorldConfig, build_world
    from repro.htmlmodel.parser import parse_cache_stats, reset_parse_cache

    _reset_parse_cache()
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    domain = "www.digitalrev.com"
    anchor = derive_anchor_for_domain(world, domain)
    product = world.retailer(domain).catalog.products[0]
    backend.check(CheckRequest(url=f"http://{domain}{product.path}",
                               anchor=anchor))
    bodies = [page.html for page in backend.store if page.retained]
    assert bodies

    reset_parse_cache()

    def replay_once():
        for html in bodies:
            extracted = extract_price(html, anchor)
            assert extracted.ok

    samples = _time_rounds(replay_once, rounds)
    result = _summary(samples)
    result["pages_per_round"] = len(bodies)
    result["parse_cache"] = parse_cache_stats()
    return result


def bench_crawl_day(rounds: int) -> dict[str, object]:
    """A one-day crawl slice: 3 retailers x 5 products x 14 points."""
    from repro.core.backend import SheriffBackend
    from repro.crawler import CrawlConfig, build_plan, run_crawl
    from repro.ecommerce.world import WorldConfig, build_world

    _reset_parse_cache()
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    plan = build_plan(world, domains=world.crawled_domains[:3],
                      products_per_retailer=5)
    day = iter(range(300, 10_000))
    checks_per_day = 3 * 5

    datasets = []

    def crawl_once():
        datasets.append(run_crawl(
            world, backend, plan, CrawlConfig(days=1, start_day=next(day))
        ))

    samples = _time_rounds(crawl_once, rounds)
    assert all(d.n_extracted_prices == checks_per_day * 14 for d in datasets)
    result = _summary(samples)
    result["checks_per_day"] = checks_per_day
    result["checks_per_second"] = round(
        checks_per_day / (statistics.fmean(samples) / 1000.0), 2
    )
    result["cache_stats"] = backend.cache_stats()
    return result


def bench_crawl_day_scaling(rounds: int) -> dict[str, object]:
    """One crawl day (6 retailers x 6 products x 14 points) per executor.

    Each configuration keeps its executor (and, for process mode, its
    worker pool with per-process rebuilt worlds) warm across rounds, the
    way a multi-day crawl would.  Every configuration's reports are
    asserted byte-identical to the sequential baseline -- the scaling
    curve never trades correctness.
    """
    import json
    import os

    from repro.core.backend import SheriffBackend
    from repro.crawler import CrawlConfig, build_plan, run_crawl
    from repro.ecommerce.world import WorldConfig, build_world
    from repro.exec import ExecConfig
    from repro.io import report_to_dict

    configs = (
        ("workers1_sequential", ExecConfig(workers=1, mode="local")),
        ("workers2_local", ExecConfig(workers=2, mode="local")),
        ("workers2_process", ExecConfig(workers=2, mode="process")),
        ("workers4_process", ExecConfig(workers=4, mode="process")),
    )
    checks_per_day = 6 * 6
    results: dict[str, object] = {"cpu_count": os.cpu_count()}
    blobs: dict[str, str] = {}
    for label, exec_config in configs:
        world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        plan = build_plan(world, domains=world.crawled_domains[:6],
                          products_per_retailer=6)
        executor = exec_config.create(world)
        day = iter(range(300, 10_000))
        datasets = []

        def crawl_once():
            datasets.append(run_crawl(
                world, backend, plan,
                CrawlConfig(days=1, start_day=next(day)),
                executor=executor,
            ))

        try:
            crawl_once()  # warm executor pool / caches, untimed
            samples = _time_rounds(crawl_once, rounds)
        finally:
            if executor is not None:
                executor.close()
        if any(d.n_extracted_prices != checks_per_day * 14 for d in datasets):
            raise RuntimeError(f"{label}: crawl lost extractions")
        blobs[label] = json.dumps(
            [report_to_dict(r) for d in datasets for r in d.reports],
            sort_keys=True,
        )
        entry = _summary(samples)
        entry["checks_per_second"] = round(
            checks_per_day / (statistics.fmean(samples) / 1000.0), 2
        )
        results[label] = entry
    baseline = blobs["workers1_sequential"]
    identical = all(blob == baseline for blob in blobs.values())
    if not identical:
        raise RuntimeError("sharded crawl diverged from sequential bytes")
    results["checks_per_day"] = checks_per_day
    results["byte_identical_across_configs"] = identical
    return results


def bench_multicore_scaling(
    rounds: int, *, fast: bool = False
) -> dict[str, object]:
    """The multicore scaling curve: workers x mode x memo, one crawl day.

    A mixed fleet (4 signature-pure retailers + 2 live-only ones, 6
    products each) crawled for one day per round under every cell of
    workers {1,2,4,8} x {local,process} x memo {on,off}.  Per cell:
    checks/s, fleet-wide burst-memo misses (the coordinator's counters
    absorb every worker's), and -- for process cells -- the per-day
    boundary overhead in ms from ``ProcessExecutor.boundary_stats()``
    ((payload_ms + fold_ms) / batches).  ``workers1_process`` isolates
    the pure boundary tax: same work as sequential plus one boundary.

    Every cell's reports are asserted byte-identical to the sequential
    memo-on baseline -- across worker counts, executors, *and* memo
    settings.  ``fast=True`` runs a 3-cell reduced grid for CI.
    """
    import json
    import os

    from repro.core.backend import SheriffBackend
    from repro.crawler import CrawlConfig, build_plan, run_crawl
    from repro.ecommerce.world import WorldConfig, build_world
    from repro.exec import ExecConfig
    from repro.io import report_to_dict

    world_config = WorldConfig(catalog_scale=0.2, long_tail_domains=0)
    probe = build_world(world_config)
    pure = [d for d in probe.crawled_domains
            if probe.servers[d].signature_profile() is not None]
    live = [d for d in probe.crawled_domains
            if probe.servers[d].signature_profile() is None]
    domains = sorted(pure[:4] + live[:2])
    products_per_retailer = 6
    checks_per_day = len(domains) * products_per_retailer

    if fast:
        cells = (
            (1, "local", True),
            (1, "process", True),
            (2, "process", True),
        )
    else:
        cells = tuple(
            (workers, mode, memo)
            for memo in (True, False)
            for mode in ("local", "process")
            for workers in (1, 2, 4, 8)
        )

    results: dict[str, object] = {
        "cpu_count": os.cpu_count(),
        "checks_per_day": checks_per_day,
        "mixed_fleet": {"pure": len(domains) - len(live[:2]),
                        "live_only": len(live[:2])},
    }
    blobs: dict[str, str] = {}
    for workers, mode, memo in cells:
        label = f"workers{workers}_{mode}" + ("" if memo else "_nomemo")
        world = build_world(world_config)
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates, burst_memo=memo
        )
        plan = build_plan(world, domains=domains,
                          products_per_retailer=products_per_retailer)
        executor = ExecConfig(workers=workers, mode=mode).create(world)
        day = iter(range(300, 10_000))
        datasets = []

        def crawl_once():
            datasets.append(run_crawl(
                world, backend, plan,
                CrawlConfig(days=1, start_day=next(day)),
                executor=executor,
            ))

        try:
            crawl_once()  # warm executor pool / worker worlds, untimed
            samples = _time_rounds(crawl_once, rounds)
            entry = _summary(samples)
            if executor is not None and hasattr(executor, "boundary_stats"):
                stats = executor.boundary_stats()
                entry["boundary_overhead_ms_per_day"] = round(
                    (stats["payload_ms"] + stats["fold_ms"])
                    / stats["batches"], 3
                )
                entry["boundary_ship_bytes_per_day"] = (
                    stats["ship_bytes"] // stats["batches"]
                )
                entry["boundary_recv_bytes_per_day"] = (
                    stats["recv_bytes"] // stats["batches"]
                )
        finally:
            if executor is not None:
                executor.close()
        if any(d.n_extracted_prices != checks_per_day * 14 for d in datasets):
            raise RuntimeError(f"{label}: crawl lost extractions")
        blobs[label] = json.dumps(
            [report_to_dict(r) for d in datasets for r in d.reports],
            sort_keys=True,
        )
        entry["checks_per_second"] = round(
            checks_per_day / (statistics.fmean(samples) / 1000.0), 2
        )
        entry["fleet_burst_misses"] = backend.cache_stats()["burst_misses"]
        entry["fleet_burst_hits"] = backend.cache_stats()["burst_hits"]
        results[label] = entry

    baseline = blobs["workers1_local"]
    if any(blob != baseline for blob in blobs.values()):
        diverged = [k for k, blob in blobs.items() if blob != baseline]
        raise RuntimeError(f"cells diverged from sequential bytes: {diverged}")
    results["byte_identical_across_cells"] = True
    if not fast:
        seq = results["workers1_local"]["checks_per_second"]
        results["process_speedup_at_4_workers"] = round(
            results["workers4_process"]["checks_per_second"] / seq, 2
        )
    return results


def bench_crowd_checks(rounds: int) -> dict[str, object]:
    """25 crowd-triggered checks through the extension + backend."""
    from repro.core.backend import SheriffBackend
    from repro.crowd import CampaignConfig, run_campaign
    from repro.ecommerce.world import WorldConfig, build_world

    n_checks = 25

    def run_once():
        world = build_world(WorldConfig(catalog_scale=0.15, long_tail_domains=10))
        backend = SheriffBackend(world.network, world.vantage_points, world.rates)
        dataset = run_campaign(
            world, backend,
            CampaignConfig(n_checks=n_checks, population_size=20, seed=11),
        )
        assert dataset.n_requests == n_checks

    samples = _time_rounds(run_once, rounds)
    result = _summary(samples)
    result["checks_per_run"] = n_checks
    result["checks_per_second"] = round(
        n_checks / (statistics.fmean(samples) / 1000.0), 2
    )
    return result


def _synthetic_reports(n_reports: int, *, n_vantages: int = 5):
    """``n_reports`` deterministic product-day reports for the analysis
    bench: 20 domains x 50 products x rolling 7-day window, a sprinkle of
    failed observations, and domain/vantage-dependent price spreads so
    every aggregation has real work to do."""
    from repro.core.reports import PriceCheckReport, VantageObservation

    n_domains, products_per_domain = 20, 50
    currencies = ("USD", "EUR", "GBP", "BRL")
    vantage_names = [
        (f"Country{v:02d} - City{v:02d}", f"C{v:02d}", f"City{v:02d}")
        for v in range(n_vantages)
    ]
    reports = []
    for i in range(n_reports):
        d = i % n_domains
        domain = f"www.shop{d:03d}.example"
        product = (i // n_domains) % products_per_domain
        day = 155 + (i % 7)
        base = 10.0 + ((i * 37) % 1000) / 7.0
        observations = []
        for v, (name, country, city) in enumerate(vantage_names):
            if (i + v) % 29 == 0:  # occasional fan-out failure
                observations.append(VantageObservation(
                    vantage=name, country_code=country, city=city,
                    ok=False, error="timeout",
                ))
                continue
            usd = base * (1.0 + 0.002 * v + (0.25 if (d + v) % 5 == 0 else 0.0))
            observations.append(VantageObservation(
                vantage=name, country_code=country, city=city, ok=True,
                raw_text=f"{usd:.2f}", amount=round(usd, 2),
                currency=currencies[(d + v) % len(currencies)], usd=usd,
                method="selector",
            ))
        reports.append(PriceCheckReport(
            check_id=f"chk{i:07d}",
            url=f"http://{domain}/p/{product:04d}",
            domain=domain,
            day_index=day,
            timestamp=day * 86400.0 + float(i),
            observations=observations,
            guard_threshold=1.08,
            origin="crawler",
        ))
    return reports


def bench_analysis_aggregation(
    rounds: int, *, n_reports: int = 100_000
) -> dict[str, object]:
    """The figure-feeding aggregations over 100K synthetic reports:
    list-of-dataclasses path vs single-pass columnar kernels over the
    same data in a :class:`ReportTable`, results asserted equal."""
    from repro.analysis.extent import variation_extent
    from repro.analysis.locations import location_ratio_stats
    from repro.analysis.longitudinal import daily_extent, product_persistence
    from repro.analysis.products import ratio_vs_min_price
    from repro.analysis.ratios import domain_ratio_stats
    from repro.store import ReportTable, TableSlice

    reports = _synthetic_reports(n_reports)

    build_start = time.perf_counter()
    table = ReportTable()
    table.extend(reports)
    build_ms = (time.perf_counter() - build_start) * 1000.0
    sliced = TableSlice(table)

    def aggregate(data):
        return (
            variation_extent(data),
            domain_ratio_stats(data, only_variation=True),
            location_ratio_stats(data),
            daily_extent(data),
            product_persistence(data),
            ratio_vs_min_price(data),
        )

    if aggregate(reports) != aggregate(sliced):
        raise RuntimeError("columnar kernels diverged from the list path")

    list_samples = _time_rounds(lambda: aggregate(reports), rounds)
    columnar_samples = _time_rounds(lambda: aggregate(sliced), rounds)
    list_mean = statistics.fmean(list_samples)
    columnar_mean = statistics.fmean(columnar_samples)
    return {
        "reports": n_reports,
        "observations": table.n_observations,
        "aggregations": 6,
        "table_build_ms": round(build_ms, 4),
        "list_path": _summary(list_samples),
        "columnar_path": _summary(columnar_samples),
        "speedup": round(list_mean / columnar_mean, 2),
        "results_equal": True,
    }


def _campaign_scaling_worker(
    memo: bool, n_checks: int, days: int, pure_only: bool, queue
) -> None:
    """One campaign run in a fresh process (clean peak-RSS accounting).

    Simulates heavy crowd traffic through the backend: ``n_checks``
    popularity-weighted product checks spread over a ``days``-day window,
    submitted as one scheduled batch per day and streamed through the
    ``sink=`` seam -- no report list exists at any point.  Sends back
    throughput, the process's peak RSS, and a streamed digest of every
    16th report (plus full-run counters) for cross-mode byte comparison.
    """
    import hashlib
    import resource

    from repro.analysis.personal import derive_anchor_for_domain
    from repro.core.backend import CheckRequest, SheriffBackend
    from repro.core.store import PageStore
    from repro.ecommerce.world import NAMED_RETAILER_SPECS, WorldConfig, build_world
    from repro.io import report_to_dict
    from repro.net.clock import SECONDS_PER_DAY
    from repro.util import stable_rng

    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(
        world.network, world.vantage_points, world.rates,
        burst_memo=memo,
        store=PageStore(metadata_cap=4096),  # rolling archive window
    )
    weights_by_domain = {
        spec.domain: spec.crowd_weight for spec in NAMED_RETAILER_SPECS
    }
    domains = []
    for domain in world.crawled_domains:
        server = world.servers[domain]
        if pure_only and server.signature_profile() is None:
            continue
        domains.append(domain)
    anchors = {d: derive_anchor_for_domain(world, d) for d in domains}
    products = [
        (domain, product.path)
        for domain in domains
        for product in world.retailer(domain).catalog.products
    ]
    product_weights = [weights_by_domain[domain] for domain, _ in products]

    rng = stable_rng(2013, "campaign-scaling", n_checks, pure_only)
    start_day = 200
    per_day = [n_checks // days + (1 if d < n_checks % days else 0)
               for d in range(days)]

    digest = hashlib.sha256()
    seen = 0
    valid_total = 0

    def sink(report) -> None:
        nonlocal seen, valid_total
        valid_total += len(report.valid_observations())
        if seen % 16 == 0:
            digest.update(
                json.dumps(report_to_dict(report), sort_keys=True).encode()
            )
        seen += 1

    start = time.perf_counter()
    for day_offset, day_checks in enumerate(per_day):
        day_start = (start_day + day_offset) * SECONDS_PER_DAY
        if day_start > world.clock.now:
            world.clock.advance_to(day_start)
        picks = rng.choices(products, weights=product_weights, k=day_checks)
        times = sorted(
            day_start + rng.uniform(0, SECONDS_PER_DAY) for _ in picks
        )
        requests = [
            CheckRequest(url=f"http://{domain}{path}", anchor=anchors[domain])
            for domain, path in picks
        ]
        backend.check_batch(requests, start_times=times, sink=sink)
    elapsed = time.perf_counter() - start

    stats = backend.cache_stats()
    queue.put({
        "checks": seen,
        "elapsed_s": round(elapsed, 3),
        "checks_per_second": round(seen / elapsed, 2),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
        "digest": digest.hexdigest(),
        "valid_observations": valid_total,
        "burst_hits": stats["burst_hits"],
        "burst_misses": stats["burst_misses"],
        "burst_bypass_live_only": stats["burst_bypass_live_only"],
    })


def _campaign_scaling_run(
    memo: bool, n_checks: int, days: int, pure_only: bool
) -> dict[str, object]:
    """Run one campaign config in a spawned subprocess and collect results.

    Spawn (not fork) so each config's peak RSS is its own, not inherited
    from the coordinator's high-water mark.
    """
    import multiprocessing

    import queue as queue_module

    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(
        target=_campaign_scaling_worker,
        args=(memo, n_checks, days, pure_only, queue),
    )
    proc.start()
    # Join first: a worker that dies (exception, OOM kill) before putting
    # its result must surface as an error, not an indefinite queue.get()
    # hang.  The result dict is tiny, so the put cannot block the child.
    proc.join()
    if proc.exitcode != 0:
        raise RuntimeError(f"campaign worker exited with {proc.exitcode}")
    try:
        return queue.get(timeout=30)
    except queue_module.Empty:
        raise RuntimeError(
            "campaign worker exited cleanly without reporting a result"
        ) from None


def bench_campaign_scaling(
    rounds: int, *, n_checks: int = 100_000, days: int = 7
) -> dict[str, object]:
    """Heavy-traffic campaign throughput: burst memo on vs off.

    The headline pair runs ``n_checks`` over the signature-pure crawled
    retailers (the workload the memo accelerates; stateful retailers
    bypass it by design and are measured in the ``mixed`` pair at a
    reduced scale).  A further memo-on run at 2x the checks demonstrates
    that peak memory stays flat as the campaign grows -- reports stream
    through the sink, nothing accumulates per check.  Digests assert the
    memo-on and memo-off outputs are byte-identical.  ``rounds`` is
    ignored: every config is a single subprocess-isolated run.
    """
    del rounds  # single-shot by design; see docstring
    off = _campaign_scaling_run(False, n_checks, days, True)
    on = _campaign_scaling_run(True, n_checks, days, True)
    if off["digest"] != on["digest"] or off["valid_observations"] != on["valid_observations"]:
        raise RuntimeError("memo-on campaign diverged from memo-off bytes")
    on_2x = _campaign_scaling_run(True, 2 * n_checks, days, True)
    mixed_n = max(n_checks // 5, 1000)
    mixed_off = _campaign_scaling_run(False, mixed_n, days, False)
    mixed_on = _campaign_scaling_run(True, mixed_n, days, False)
    if mixed_off["digest"] != mixed_on["digest"]:
        raise RuntimeError("memo-on mixed campaign diverged from memo-off bytes")
    return {
        "n_checks": n_checks,
        "days": days,
        "memo_off": off,
        "memo_on": on,
        "memo_on_2x": on_2x,
        "speedup": round(
            on["checks_per_second"] / off["checks_per_second"], 2
        ),
        "byte_identical": True,
        "rss_growth_2x_checks": round(
            on_2x["peak_rss_mb"] / on["peak_rss_mb"], 2
        ),
        # All 21 crawled retailers, popularity-weighted: amazon (login) and
        # hotels.com (A/B nonce) alone carry ~60% of this traffic and stay
        # on the live path by design -- the honest blended number.
        "mixed_fleet": {
            "n_checks": mixed_n,
            "memo_off": mixed_off,
            "memo_on": mixed_on,
            "speedup": round(
                mixed_on["checks_per_second"] / mixed_off["checks_per_second"],
                2,
            ),
            "byte_identical": True,
        },
    }


def _campaign_resume_worker(
    n_checks: int, days: int, checkpoint_dir, resume: bool, kill, out_path,
    queue,
) -> None:
    """One (optionally checkpointed, optionally self-SIGKILLed) campaign.

    Unlike ``_campaign_scaling_worker`` this drives the *real*
    :func:`repro.crowd.run_campaign` -- prepare phase, checkpoint
    commits and all -- because resume cost is exactly what the scaling
    worker's stripped-down loop cannot measure.
    """
    import hashlib
    import os
    import resource
    import signal

    from repro.core.backend import SheriffBackend
    from repro.crowd.campaign import CampaignConfig, run_campaign
    from repro.ecommerce.world import WorldConfig, build_world
    from repro.io import save_crowd_dataset

    if kill is not None:
        from repro.checkpoint import install_barrier_hook

        point, count = kill
        fired = [0]

        def hook(name: str) -> None:
            if name == point:
                fired[0] += 1
                if fired[0] == count:
                    os.kill(os.getpid(), signal.SIGKILL)

        install_barrier_hook(hook)

    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    config = CampaignConfig(
        n_checks=n_checks, population_size=20, seed=11,
        start_day=0, end_day=days,
    )
    start = time.perf_counter()
    dataset = run_campaign(
        world, backend, config, checkpoint_dir=checkpoint_dir, resume=resume
    )
    elapsed = time.perf_counter() - start
    digest = None
    if out_path is not None:
        save_crowd_dataset(dataset, out_path, columnar=True)
        digest = hashlib.sha256(Path(out_path).read_bytes()).hexdigest()
    queue.put({
        "checks": len(dataset),
        "elapsed_s": round(elapsed, 3),
        "checks_per_second": round(len(dataset) / elapsed, 2),
        "peak_rss_mb": round(
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0, 1
        ),
        "digest": digest,
    })


def _campaign_resume_run(
    n_checks: int, days: int, checkpoint_dir, *,
    resume: bool = False, kill=None, out_path=None,
) -> dict[str, object]:
    """Spawn one resume-bench worker; returns its result (or, for a
    killed worker, the parent-measured elapsed time until the SIGKILL)."""
    import multiprocessing
    import signal

    import queue as queue_module

    ctx = multiprocessing.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(
        target=_campaign_resume_worker,
        args=(n_checks, days, checkpoint_dir, resume, kill, out_path, queue),
    )
    start = time.perf_counter()
    proc.start()
    proc.join()
    elapsed = time.perf_counter() - start
    if kill is not None:
        if proc.exitcode != -signal.SIGKILL:
            raise RuntimeError(
                f"kill-carrying worker exited {proc.exitcode}, not SIGKILL"
            )
        return {"elapsed_s": round(elapsed, 3)}
    if proc.exitcode != 0:
        raise RuntimeError(f"resume worker exited with {proc.exitcode}")
    try:
        return queue.get(timeout=30)
    except queue_module.Empty:
        raise RuntimeError(
            "resume worker exited cleanly without reporting a result"
        ) from None


def bench_campaign_resume(
    rounds: int, *, n_checks: int = 200_000, days: int = 7
) -> dict[str, object]:
    """Kill-safe campaigns at scale: checkpoint overhead + resume cost.

    Four subprocess-isolated runs of the real ``run_campaign``:

    * a *plain* and a *checkpointed* run at ``n_checks // 10`` measure
      the steady-state checkpointing tax (fsync'd day-segments);
    * a checkpointed *reference* at full ``n_checks``;
    * the same run SIGKILLed mid-manifest-append at the day-``days//2``
      boundary, then *resumed* to completion in a fresh process.

    Headline numbers: resume elapsed + peak RSS vs the uninterrupted
    run's (the resumed process replays committed day-segments from disk
    one at a time -- its RSS must stay in the full run's envelope, not
    grow with the committed prefix), and byte identity of the outputs.
    ``rounds`` is ignored: every config is a single subprocess run.
    """
    import tempfile

    del rounds  # single-shot by design; see docstring
    with tempfile.TemporaryDirectory(prefix="bench_resume_") as tmp:
        tmp_path = Path(tmp)
        tax_checks = max(n_checks // 10, 2000)
        plain = _campaign_resume_run(tax_checks, days, None)
        taxed = _campaign_resume_run(
            tax_checks, days, str(tmp_path / "tax")
        )

        reference = _campaign_resume_run(
            n_checks, days, str(tmp_path / "ref"),
            out_path=str(tmp_path / "ref.jsonl"),
        )
        kill_count = days // 2 + 1  # dies appending the day-days//2 line
        killed = _campaign_resume_run(
            n_checks, days, str(tmp_path / "run"),
            kill=("manifest-mid-write", kill_count),
        )
        resumed = _campaign_resume_run(
            n_checks, days, str(tmp_path / "run"), resume=True,
            out_path=str(tmp_path / "resumed.jsonl"),
        )
        if resumed["digest"] != reference["digest"]:
            raise RuntimeError("resumed campaign diverged from reference bytes")
        return {
            "n_checks": n_checks,
            "days": days,
            "checkpoint_tax": {
                "n_checks": tax_checks,
                "plain_elapsed_s": plain["elapsed_s"],
                "checkpointed_elapsed_s": taxed["elapsed_s"],
                "overhead_pct": round(
                    100.0 * (taxed["elapsed_s"] / plain["elapsed_s"] - 1.0), 1
                ),
            },
            "reference": reference,
            "killed_at": f"manifest-mid-write#{kill_count}",
            "killed_elapsed_s": killed["elapsed_s"],
            "resumed": resumed,
            "byte_identical": True,
            "resume_total_vs_uninterrupted": round(
                (killed["elapsed_s"] + resumed["elapsed_s"])
                / reference["elapsed_s"],
                2,
            ),
            "rss_resumed_vs_full": round(
                resumed["peak_rss_mb"] / reference["peak_rss_mb"], 2
            ),
        }


def bench_worker_failure(rounds: int) -> dict[str, object]:
    """Supervision bench: recovery latency and no-fault overhead.

    Three stacks crawl the same day sequence over the multicore bench's
    mixed fleet: a sequential reference, a supervised 4-worker process
    executor with no faults (the supervision layer's steady-state cost
    -- compare ``no_fault`` against ``multicore_scaling``'s
    ``workers4_process``), and the same executor with one worker
    SIGKILLed mid-day every round (victim rotating through the fleet).
    Per round the chaos run must produce the reference bytes; headline
    numbers are the mean recovery latency (retire + respawn + full
    re-ship + re-run, from ``supervision_stats``) and the wall-clock
    cost of eating one kill per day.
    """
    import json

    from repro.core.backend import SheriffBackend
    from repro.crawler import CrawlConfig, build_plan, run_crawl
    from repro.ecommerce.world import WorldConfig, build_world
    from repro.exec.process import ProcessExecutor, install_fault_hook
    from repro.io import report_to_dict

    world_config = WorldConfig(catalog_scale=0.2, long_tail_domains=0)
    probe = build_world(world_config)
    pure = [d for d in probe.crawled_domains
            if probe.servers[d].signature_profile() is not None]
    live = [d for d in probe.crawled_domains
            if probe.servers[d].signature_profile() is None]
    domains = sorted(pure[:4] + live[:2])
    products_per_retailer = 4
    workers = 4

    def stack():
        world = build_world(world_config)
        backend = SheriffBackend(
            world.network, world.vantage_points, world.rates
        )
        plan = build_plan(world, domains=domains,
                          products_per_retailer=products_per_retailer)
        return world, backend, plan

    def blob(dataset) -> str:
        return json.dumps(
            [report_to_dict(r) for r in dataset.reports], sort_keys=True
        )

    ref = stack()
    plain = stack()
    chaos = stack()
    plain_exec = ProcessExecutor(plain[0], workers)
    chaos_exec = ProcessExecutor(chaos[0], workers, restart_backoff_s=0.0)

    # One-shot fault: SIGKILL the pending victim mid-batch, once.
    pending: list[int] = []

    def hook(worker: int, batch: int):
        if pending and pending[0] == worker:
            pending.pop()
            return "mid-batch"
        return None

    def crawl(s, day, executor=None):
        world, backend, plan = s
        return run_crawl(world, backend, plan,
                         CrawlConfig(days=1, start_day=day),
                         executor=executor)

    day = iter(range(300, 10_000))
    plain_ms: list[float] = []
    chaos_ms: list[float] = []
    recovery_ms: list[float] = []
    previous = install_fault_hook(hook)
    assert previous is None, "a fault hook was already installed"
    try:
        warm = next(day)  # warm worker pools / worlds, untimed
        reference = blob(crawl(ref, warm))
        if (blob(crawl(plain, warm, plain_exec)) != reference
                or blob(crawl(chaos, warm, chaos_exec)) != reference):
            raise RuntimeError("warm-up day diverged from sequential bytes")
        for round_index in range(rounds):
            d = next(day)
            reference = blob(crawl(ref, d))

            start = time.perf_counter()
            no_fault = blob(crawl(plain, d, plain_exec))
            plain_ms.append((time.perf_counter() - start) * 1000.0)
            if no_fault != reference:
                raise RuntimeError("no-fault run diverged from reference")

            pending.append(round_index % workers)
            before = chaos_exec.supervision_stats()
            start = time.perf_counter()
            faulted = blob(crawl(chaos, d, chaos_exec))
            chaos_ms.append((time.perf_counter() - start) * 1000.0)
            after = chaos_exec.supervision_stats()
            if faulted != reference:
                raise RuntimeError(
                    f"worker kill changed bytes at day {d}"
                )
            if after["restarts"] != before["restarts"] + 1:
                raise RuntimeError("injected kill did not trigger a restart")
            recovery_ms.append(after["recovery_ms"] - before["recovery_ms"])
    finally:
        install_fault_hook(None)
        plain_exec.close()
        chaos_exec.close()

    checks_per_day = len(domains) * products_per_retailer
    return {
        "checks_per_day": checks_per_day,
        "workers": workers,
        "kills_per_day": 1,
        "no_fault": _summary(plain_ms),
        "with_worker_kill": _summary(chaos_ms),
        "recovery_latency_ms": _summary(recovery_ms),
        "kill_overhead_ms": round(
            statistics.fmean(chaos_ms) - statistics.fmean(plain_ms), 3
        ),
        "byte_identical_under_faults": True,
    }


def bench_serving_latency(
    rounds: int, *, n_requests: int = 2000
) -> dict[str, object]:
    """Traffic replay against the live HTTP service: p50/p99 + checks/s.

    Boots the real stack (``repro.serve`` on an ephemeral local port),
    submits one background campaign job as the write load, then drives
    ``rounds`` mixed read/write streams over a keep-alive connection:
    ~80% ``POST /checks`` (popularity-weighted domain/product picks from
    the serving world, zipf-ish head), ~10% ``GET /jobs/<id>`` progress
    polls, ~10% ``GET /healthz``.  Check latency is measured per request
    (the serving cache warms as the stream runs, exactly like
    production); sustained checks/s is checks over the whole mixed
    stream's wall clock, job traffic included.
    """
    import http.client
    import random
    import tempfile
    import threading

    from repro.serve import ServeConfig, build_app

    service, server = build_app(ServeConfig(
        port=0, scale="tiny",
        data_dir=tempfile.mkdtemp(prefix="bench-serve-"),
    ))
    server_thread = threading.Thread(target=server.serve_forever, daemon=True)
    server_thread.start()
    conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=60)

    def request(method: str, path: str, payload=None):
        body = None if payload is None else json.dumps(payload)
        start = time.perf_counter()
        conn.request(method, path, body=body,
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        data = resp.read()
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        assert resp.status in (200, 202), (resp.status, data[:200])
        return elapsed_ms, json.loads(data)

    try:
        world = service.world
        domains = list(world.crawled_domains)
        weights = [1.0 / (rank + 1) for rank in range(len(domains))]
        catalog_sizes = {
            domain: len(world.retailer(domain).catalog) for domain in domains
        }
        _, job = request("POST", "/campaigns", {
            "scale": "tiny", "n_checks": 60, "end_day": 20,
        })
        job_path = f"/jobs/{job['id']}"
        rng = random.Random(2013)
        check_ms: list[float] = []
        reads = {"job_status": 0, "healthz": 0}
        wall_s = 0.0
        for _ in range(rounds):
            stream_start = time.perf_counter()
            for _ in range(n_requests):
                roll = rng.random()
                if roll < 0.8:
                    domain = rng.choices(domains, weights)[0]
                    product = rng.randrange(min(4, catalog_sizes[domain]))
                    elapsed_ms, _body = request(
                        "POST", "/checks",
                        {"domain": domain, "product": product},
                    )
                    check_ms.append(elapsed_ms)
                elif roll < 0.9:
                    request("GET", job_path)
                    reads["job_status"] += 1
                else:
                    request("GET", "/healthz")
                    reads["healthz"] += 1
            wall_s += time.perf_counter() - stream_start
        _, health = request("GET", "/healthz")
        _, job_state = request("GET", job_path)
    finally:
        conn.close()
        server.shutdown()
        server_thread.join(timeout=10)
        server.server_close()

    quantiles = statistics.quantiles(check_ms, n=100)
    return {
        "requests": rounds * n_requests,
        "checks": len(check_ms),
        "mean_ms": round(statistics.fmean(check_ms), 4),
        "p50_ms": round(statistics.median(check_ms), 4),
        "p99_ms": round(quantiles[98], 4),
        "max_ms": round(max(check_ms), 4),
        "checks_per_s": round(len(check_ms) / wall_s, 1),
        "mixed_reads": reads,
        "serving_cache_hit_rate": health["serving_cache"]["hit_rate"],
        "background_job": {
            "status": job_state["status"],
            "checks_done": job_state["checks"]["done"],
        },
    }


#: name -> (runner, which rounds argument it takes).
BENCHES: dict[str, tuple] = {
    "sheriff_check": (bench_sheriff_check, "rounds"),
    "store_replay": (bench_store_replay, "rounds"),
    "crawl_day": (bench_crawl_day, "heavy"),
    "crawl_day_scaling": (bench_crawl_day_scaling, "heavy"),
    "multicore_scaling": (bench_multicore_scaling, "heavy"),
    "crowd_checks": (bench_crowd_checks, "heavy"),
    "analysis_aggregation": (bench_analysis_aggregation, "heavy"),
    "campaign_scaling": (bench_campaign_scaling, "heavy"),
    "campaign_resume": (bench_campaign_resume, "heavy"),
    "worker_failure": (bench_worker_failure, "heavy"),
    "serving_latency": (bench_serving_latency, "heavy"),
}


def _bench_kwargs(name: str, args) -> dict:
    """Per-bench keyword overrides sourced from the command line."""
    if name == "campaign_scaling":
        return {"n_checks": args.campaign_checks}
    if name == "campaign_resume":
        return {"n_checks": args.resume_checks}
    if name == "multicore_scaling":
        return {"fast": args.multicore_fast}
    if name == "serving_latency":
        return {"n_requests": args.serve_requests}
    return {}


def _profile_bench(name: str, args) -> int:
    """Run one bench under cProfile and print the top-20 cumulative rows.

    Future perf PRs should start here: the hot functions are measured,
    not guessed.  The profiled run's results are discarded (profiling
    skews timings), so the output file is left untouched.
    """
    import cProfile
    import pstats

    from repro.htmlmodel.parser import reset_parse_cache

    reset_parse_cache()
    fn, kind = BENCHES[name]
    rounds = args.rounds if kind == "rounds" else args.heavy_rounds
    profiler = cProfile.Profile()
    profiler.enable()
    fn(rounds, **_bench_kwargs(name, args))
    profiler.disable()
    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats("cumulative")
    print(f"\n== top 20 cumulative functions: {name} ==")
    stats.print_stats(20)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=50,
                        help="rounds for the per-check bench (default 50)")
    parser.add_argument("--heavy-rounds", type=int, default=3,
                        help="rounds for crawl/campaign benches (default 3)")
    parser.add_argument("--only", action="append", choices=sorted(BENCHES),
                        help="run only this bench (repeatable); existing "
                             "entries in the output file are preserved")
    parser.add_argument("--profile", choices=sorted(BENCHES), metavar="BENCH",
                        help="run BENCH once under cProfile, print the "
                             "top-20 cumulative functions, and exit "
                             "without touching the output file")
    parser.add_argument("--campaign-checks", type=int, default=100_000,
                        help="headline check count for campaign_scaling "
                             "(default 100000)")
    parser.add_argument("--resume-checks", type=int, default=200_000,
                        help="headline check count for campaign_resume "
                             "(default 200000)")
    parser.add_argument("--serve-requests", type=int, default=2000,
                        help="mixed requests per stream round for "
                             "serving_latency (default 2000)")
    parser.add_argument("--multicore-fast", action="store_true",
                        help="reduced 3-cell grid for multicore_scaling "
                             "(the CI configuration)")
    parser.add_argument("--out", type=Path,
                        default=Path(__file__).with_name("BENCH_pipeline.json"))
    args = parser.parse_args(argv)

    if args.profile:
        return _profile_bench(args.profile, args)

    from repro.htmlmodel.parser import reset_parse_cache

    reset_parse_cache()
    report: dict[str, object] = {}
    if args.only and args.out.exists():
        report = json.loads(args.out.read_text())
    report.update({
        "benchmark": "pipeline",
        "python": sys.version.split()[0],
        # Measured on the pre-optimization seed tree (same box, same
        # workloads) -- the "before" of the parse-once fan-out PR.
        "seed_baseline": {
            "sheriff_check_mean_ms": 15.08,
            "crawl_day_mean_ms": 312.0,
            "crowd_checks_mean_ms": 486.3,
        },
    })
    selected = args.only or sorted(BENCHES)
    for name in selected:
        fn, kind = BENCHES[name]
        rounds = args.rounds if kind == "rounds" else args.heavy_rounds
        report[name] = fn(rounds, **_bench_kwargs(name, args))
    args.out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(json.dumps(report, indent=2, sort_keys=True))
    print(f"\nwrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
