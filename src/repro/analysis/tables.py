"""Dataset summary tables (§3.2's headline numbers)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.crawler.records import CrawlDataset
from repro.crowd.dataset import CrowdDataset

__all__ = ["DatasetSummary", "dataset_summary", "PAPER_DATASET_NUMBERS"]

#: §3.2's reported numbers, for paper-vs-measured tables.
PAPER_DATASET_NUMBERS: dict[str, int] = {
    "crowd_requests": 1500,
    "crowd_users": 340,
    "crowd_countries": 18,
    "crowd_domains": 600,
    "crawl_retailers": 21,
    "crawl_max_products_per_retailer": 100,
    "crawl_days": 7,
    "crawl_extracted_prices": 188_000,
}


@dataclass(frozen=True)
class DatasetSummary:
    """Measured dataset statistics next to the paper's."""

    measured: dict[str, int]
    paper: dict[str, int]

    def rows(self) -> list[tuple[str, int, int]]:
        """(metric, paper value, measured value) rows in a stable order."""
        return [
            (key, self.paper[key], self.measured.get(key, 0))
            for key in self.paper
        ]

    def format_text(self) -> str:
        """Render the paper-vs-measured table as aligned monospace text."""
        lines = [f"{'metric':38s} {'paper':>10s} {'measured':>10s}"]
        for key, paper, measured in self.rows():
            lines.append(f"{key:38s} {paper:>10,} {measured:>10,}")
        return "\n".join(lines)


def dataset_summary(
    crowd: Optional[CrowdDataset], crawl: Optional[CrawlDataset]
) -> DatasetSummary:
    """Build the §3.2 paper-vs-measured table from the two datasets."""
    measured: dict[str, int] = {}
    if crowd is not None:
        measured.update(
            crowd_requests=crowd.n_requests,
            crowd_users=crowd.n_users,
            crowd_countries=crowd.n_countries,
            crowd_domains=crowd.n_domains,
        )
    if crawl is not None:
        # Columnar: distinct url ids per domain straight off the spine --
        # no report materialization for a summary table.
        table = crawl.table
        by_domain_rows = table.rows_by_domain()
        per_retailer_products = [
            len({table.url_id[i] for i in rows})
            for rows in by_domain_rows.values()
        ]
        measured.update(
            crawl_retailers=len(by_domain_rows),
            crawl_max_products_per_retailer=(
                max(per_retailer_products) if per_retailer_products else 0
            ),
            crawl_days=len(crawl.day_indices),
            crawl_extracted_prices=crawl.n_extracted_prices,
        )
    return DatasetSummary(measured=measured, paper=dict(PAPER_DATASET_NUMBERS))
