"""Checkout quotes: shipping and tax, revealed only at checkout.

§2.2 of the paper: "There are also reasons like taxation, logistics,
shipping costs ... that can cause price differences that are not due to
discrimination.  For proper attribution ... we need to ensure the known
reasons cannot explain the variations.  Most e-retailers do not include
shipping and taxing before checkout."

So the simulated shops work the same way: the *displayed* product price
excludes shipping and tax, and a ``/checkout/<sku>`` page itemizes

    item price + shipping + VAT = total

:class:`ShippingPolicy` also models the one confound that makes attribution
non-trivial: *bundled display* -- a shop that folds shipping into the
displayed price for some destinations (and then ships "free").  Its
displayed prices vary by location while its checkout totals do not; the
attribution analysis (:mod:`repro.analysis.attribution`) must classify that
variation as logistics, not discrimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["ShippingPolicy", "VAT_RATES", "vat_rate", "CheckoutQuote"]

#: 2013 standard VAT rates for the countries in the simulation.
VAT_RATES: dict[str, float] = {
    "ES": 0.21, "DE": 0.19, "BE": 0.21, "FI": 0.24, "IT": 0.22,
    "FR": 0.196, "NL": 0.21, "PT": 0.23, "GR": 0.23, "IE": 0.23,
    "GB": 0.20, "PL": 0.23, "SE": 0.25,
}

_EU_VAT_AREA = frozenset(VAT_RATES)


def vat_rate(retailer_home: str, destination: str) -> float:
    """The VAT rate a shop charges at checkout for a destination.

    EU-established shops charge the destination's VAT inside the EU VAT
    area and nothing outside it (export); non-EU shops charge no tax at
    checkout (the paper: custom duties are settled post-sale between the
    customer and the customs authority, without the retailer).
    """
    if retailer_home.upper() not in _EU_VAT_AREA:
        return 0.0
    return VAT_RATES.get(destination.upper(), 0.0)


@dataclass(frozen=True)
class ShippingPolicy:
    """Per-retailer shipping table, quoted at checkout in USD."""

    domestic: float = 4.0
    international: float = 14.0
    #: Order value above which shipping is free.
    free_threshold: Optional[float] = None
    #: Destinations whose *displayed* price already includes shipping;
    #: their checkout shipping line is zero.
    bundled_display: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if self.domestic < 0 or self.international < 0:
            raise ValueError("shipping costs must be non-negative")
        if self.free_threshold is not None and self.free_threshold < 0:
            raise ValueError("free_threshold must be non-negative")

    def cost(self, destination: str, home: str, item_price_usd: float) -> float:
        """The shipping line for one item to ``destination``."""
        if destination.upper() in self.bundled_display:
            return 0.0
        if self.free_threshold is not None and item_price_usd >= self.free_threshold:
            return 0.0
        if destination.upper() == home.upper():
            return self.domestic
        return self.international


@dataclass(frozen=True)
class CheckoutQuote:
    """One itemized checkout quote, in one currency."""

    item: float
    shipping: float
    tax: float
    currency: str

    @property
    def total(self) -> float:
        return round(self.item + self.shipping + self.tax, 2)

    def __post_init__(self) -> None:
        if self.item < 0 or self.shipping < 0 or self.tax < 0:
            raise ValueError("quote lines must be non-negative")
