"""Terminal rendering of the paper's figure types.

The original figures are R box plots and scatter plots; the closest thing a
library without plotting dependencies can ship is faithful monospace
renderings.  Used by the CLI and the examples:

* :func:`boxplot_rows` -- horizontal box plots (Figs. 2, 4, 7, 9),
* :func:`scatter` -- a character-grid scatter with optional log-x
  (Figs. 5, 6),
* :func:`bars` -- magnitude-ordered bars (Figs. 1, 3).
"""

from __future__ import annotations

import math
from typing import Mapping, Optional, Sequence

from repro.analysis.stats import BoxStats

__all__ = ["boxplot_rows", "scatter", "bars"]


def bars(
    values: Mapping[str, float],
    *,
    width: int = 40,
    fmt: str = "{:.2f}",
    sort: bool = True,
) -> str:
    """Horizontal bars, widest value = full width."""
    if not values:
        return "(no data)"
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(values.values()) or 1.0
    label_width = max(len(k) for k in values)
    keys = sorted(values, key=values.get, reverse=True) if sort else list(values)
    lines = []
    for key in keys:
        filled = int(round(width * values[key] / peak)) if peak > 0 else 0
        lines.append(
            f"{key.ljust(label_width)}  {'#' * filled:<{width}} "
            f"{fmt.format(values[key])}"
        )
    return "\n".join(lines)


def boxplot_rows(
    stats: Mapping[str, BoxStats],
    *,
    width: int = 48,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
) -> str:
    """One text box plot per key: ``|--[==M==]--|`` between whiskers.

    ``lo``/``hi`` pin the axis; by default it spans the pooled whiskers.
    """
    if not stats:
        return "(no data)"
    if width < 10:
        raise ValueError("width must be >= 10")
    axis_lo = lo if lo is not None else min(s.whisker_low for s in stats.values())
    axis_hi = hi if hi is not None else max(s.whisker_high for s in stats.values())
    if axis_hi <= axis_lo:
        axis_hi = axis_lo + 1e-9

    def col(value: float) -> int:
        unit = (value - axis_lo) / (axis_hi - axis_lo)
        return max(0, min(width - 1, int(round(unit * (width - 1)))))

    label_width = max(len(k) for k in stats)
    lines = [
        f"{'':{label_width}}  {axis_lo:<10.3f}{'':{max(0, width - 20)}}{axis_hi:>10.3f}"
    ]
    for key in sorted(stats, key=lambda k: stats[k].median):
        s = stats[key]
        row = [" "] * width
        for i in range(col(s.whisker_low), col(s.whisker_high) + 1):
            row[i] = "-"
        for i in range(col(s.q25), col(s.q75) + 1):
            row[i] = "="
        row[col(s.whisker_low)] = "|"
        row[col(s.whisker_high)] = "|"
        row[col(s.median)] = "M"
        lines.append(f"{key.ljust(label_width)}  {''.join(row)}")
    return "\n".join(lines)


def scatter(
    points: Sequence[tuple[float, float]],
    *,
    width: int = 64,
    height: int = 16,
    log_x: bool = False,
    marker: str = "o",
) -> str:
    """A character-grid scatter plot with axis annotations."""
    if not points:
        return "(no data)"
    if width < 8 or height < 4:
        raise ValueError("grid too small")
    xs = [x for x, _ in points]
    ys = [y for _, y in points]
    if log_x:
        if min(xs) <= 0:
            raise ValueError("log_x requires positive x values")
        xs = [math.log10(x) for x in xs]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1e-9
    y_span = (y_hi - y_lo) or 1e-9

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(xs, ys):
        cx = int(round((x - x_lo) / x_span * (width - 1)))
        cy = int(round((y - y_lo) / y_span * (height - 1)))
        grid[height - 1 - cy][cx] = marker

    lines = []
    for row_index, row in enumerate(grid):
        label = ""
        if row_index == 0:
            label = f"{y_hi:.2f}"
        elif row_index == height - 1:
            label = f"{y_lo:.2f}"
        lines.append(f"{label:>8} |{''.join(row)}")
    x_label_lo = f"10^{x_lo:.1f}" if log_x else f"{x_lo:.1f}"
    x_label_hi = f"10^{x_hi:.1f}" if log_x else f"{x_hi:.1f}"
    lines.append(f"{'':>8} +{'-' * width}")
    lines.append(f"{'':>8}  {x_label_lo}{'':{max(1, width - len(x_label_lo) - len(x_label_hi))}}{x_label_hi}")
    return "\n".join(lines)
