"""Locale formatting and locale-blind price parsing tests.

This pair of functions is the §2.2/§3.2 noise model, so the tests pin the
exact rules down, including a format→parse round-trip property across all
locales.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.ecommerce.localization import (
    LOCALES,
    Locale,
    PriceFormatError,
    format_price,
    locale_for_country,
    parse_price,
)


class TestFormatting:
    @pytest.mark.parametrize(
        "country,amount,expected",
        [
            ("US", 1234.56, "$1,234.56"),
            ("GB", 1234.56, "£1,234.56"),
            ("DE", 1234.56, "1.234,56 €"),
            ("ES", 19.99, "19,99 €"),
            ("FI", 1234.56, "1 234,56 €"),
            ("FR", 1234.56, "1 234,56 €"),
            ("BR", 1234.56, "R$ 1.234,56"),
            ("CH", 1234.56, "Fr. 1'234.56"),
            ("US", 0.99, "$0.99"),
        ],
    )
    def test_locale_formats(self, country, amount, expected):
        assert format_price(amount, country) == expected

    def test_jpy_zero_decimals(self):
        assert format_price(1234.0, "JP", decimals=0) == "¥1,234"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            format_price(-1.0, "US")

    def test_unknown_country_defaults_us(self):
        assert locale_for_country("ZZ") is LOCALES["US"]

    def test_grouping_of_large_numbers(self):
        assert LOCALES["US"].format_amount(1234567.89) == "1,234,567.89"
        assert LOCALES["DE"].format_amount(1234567.89) == "1.234.567,89"


class TestParsing:
    @pytest.mark.parametrize(
        "text,amount,currency",
        [
            ("$1,234.56", 1234.56, "USD"),
            ("£19.99", 19.99, "GBP"),
            ("1.234,56 €", 1234.56, "EUR"),
            ("19,99 €", 19.99, "EUR"),
            ("1 234,56 €", 1234.56, "EUR"),
            ("R$ 132,84", 132.84, "BRL"),
            ("Fr. 1'234.56", 1234.56, "CHF"),
            ("¥1,234", 1234.0, "JPY"),
            ("EUR 56.35", 56.35, "EUR"),
            ("USD 10", 10.0, "USD"),
            ("Price: $5.99 only", 5.99, "USD"),
        ],
    )
    def test_known_formats(self, text, amount, currency):
        parsed = parse_price(text)
        assert parsed.amount == pytest.approx(amount)
        assert parsed.currency == currency

    def test_no_symbol_yields_none_currency(self):
        parsed = parse_price("1.234,56")
        assert parsed.currency is None
        assert parsed.amount == pytest.approx(1234.56)

    def test_three_digit_tail_is_grouping(self):
        # The classic ambiguity: "1.234" is twelve-hundred-ish.
        assert parse_price("1.234").amount == 1234.0
        assert parse_price("1,234").amount == 1234.0

    def test_two_digit_tail_is_decimal(self):
        assert parse_price("12,34").amount == pytest.approx(12.34)
        assert parse_price("12.34").amount == pytest.approx(12.34)

    def test_both_separators_latest_wins(self):
        assert parse_price("1.234,56").amount == pytest.approx(1234.56)
        assert parse_price("1,234.56").amount == pytest.approx(1234.56)

    def test_repeated_separator_is_grouping(self):
        assert parse_price("1.234.567").amount == 1234567.0

    def test_single_digit_tail(self):
        assert parse_price("12.5").amount == pytest.approx(12.5)

    @pytest.mark.parametrize("bad", ["", "   ", "free!", "N/A", "€"])
    def test_rejects_priceless_strings(self, bad):
        with pytest.raises(PriceFormatError):
            parse_price(bad)

    def test_rsign_wins_over_dollar(self):
        assert parse_price("R$ 10,00").currency == "BRL"


@given(
    amount=st.floats(min_value=0.01, max_value=99999.0),
    country=st.sampled_from(sorted(LOCALES)),
)
@settings(max_examples=200, deadline=None)
def test_format_parse_roundtrip(amount, country):
    """parse(format(x)) == x (2-decimal quantized) for every locale.

    This is the property the whole measurement pipeline relies on: $heriff
    must recover the number a retailer displayed, whatever the locale.
    """
    locale = locale_for_country(country)
    amount = round(amount, 2)
    text = locale.format_price(amount)
    parsed = parse_price(text, locale_hint=locale)
    assert parsed.amount == pytest.approx(amount, abs=0.005)
    assert parsed.currency == locale.currency.code
