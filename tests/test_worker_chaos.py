"""Worker chaos: the supervisor heals the fleet; bytes never change.

Every test injects faults through the :func:`repro.exec.process.
install_fault_hook` seam (usually via :class:`tests.crashkit.FaultPlan`)
and asserts the one property the supervision layer exists for: **output
under any fault schedule is byte-identical to the fault-free run** --
including the fleet-wide burst-memo counters, because a dead worker's
partial journals die unfolded and the re-run counts everything exactly
once.

Tiers:

* fast (``make chaos``, push CI): one mid-batch SIGKILL on a workers=4
  campaign, quarantine of a poison shard, hang detection, the exception
  relay edge cases, and the startup/dispatch leak checks;
* slow (PR CI, under ``make coverage``): the fault-point x victim x
  planner x memo grid, seeded random chaos schedules, and the
  checkpoint-composition test (coordinator SIGKILL at the
  ``worker-respawn`` barrier, then resume).
"""

from __future__ import annotations

import json
import logging
from pathlib import Path

import pytest

from repro.core.backend import SheriffBackend
from repro.crawler import CrawlConfig, build_plan, run_crawl
from repro.crowd import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, build_world
from repro.exec import ExecConfig, ProcessExecutor
from repro.exec.process import (
    FAULT_POINTS,
    fleet_health,
    install_fault_hook,
    reset_fleet_health,
)
from repro.io import report_to_dict
from tests.crashkit import FaultPlan, run_to_completion, run_until_killed

KILL_FAULTS = ("before-batch", "mid-batch", "after-batch")


@pytest.fixture(autouse=True)
def _clean_fault_hook():
    """No test leaks its fault hook (or fleet-health counters) forward."""
    reset_fleet_health()
    yield
    install_fault_hook(None)


def _world(**overrides):
    config = dict(catalog_scale=0.15, long_tail_domains=0)
    config.update(overrides)
    return build_world(WorldConfig(**config))


def _backend(world, **kwargs):
    return SheriffBackend(
        world.network, world.vantage_points, world.rates, **kwargs
    )


def _campaign_blob(dataset) -> str:
    rows = [
        (r.user_id, r.user_country, r.day_index, r.domain, r.url,
         r.outcome.failure, r.outcome.user_amount, r.outcome.user_currency,
         report_to_dict(r.report) if r.report else None)
        for r in dataset
    ]
    return json.dumps(rows, sort_keys=True)


def _crawl_blob(dataset) -> str:
    return json.dumps(
        [report_to_dict(r) for r in dataset.reports], sort_keys=True
    )


def _run_campaign(faults=None, *, workers=4, planner="cost", memo=True,
                  max_restarts=3):
    """One campaign under a fault plan; returns (bytes, memo stats,
    this run's fleet health)."""
    reset_fleet_health()
    world = _world()
    backend = _backend(world)
    backend.burst_cache.enabled = memo
    previous = FaultPlan(faults or []).install()
    assert previous is None, "a fault hook leaked in from another test"
    try:
        dataset = run_campaign(
            world, backend,
            CampaignConfig(n_checks=60, population_size=30, seed=11,
                           start_day=0, end_day=4),
            exec_config=ExecConfig(
                workers=workers, mode="process", planner=planner,
                max_worker_restarts=max_restarts,
            ),
        )
    finally:
        install_fault_hook(None)
    return (_campaign_blob(dataset), backend.burst_cache.stats(),
            fleet_health())


def _run_crawl(faults=None, *, days=3, workers=2, executor_kwargs=None):
    """One multi-day crawl under a fault plan with a hand-built executor.

    A crawl batches per day, so ``(worker, batch)`` faults land on real
    later batches -- the path campaigns only exercise when checkpointed.
    Returns (bytes, supervision stats).
    """
    world = _world()
    backend = _backend(world)
    plan = build_plan(
        world, domains=world.crawled_domains[:6], products_per_retailer=2
    )
    previous = FaultPlan(faults or []).install()
    assert previous is None, "a fault hook leaked in from another test"
    try:
        with ProcessExecutor(
            world, workers, restart_backoff_s=0.0,
            **(executor_kwargs or {}),
        ) as executor:
            dataset = run_crawl(
                world, backend, plan, CrawlConfig(days=days),
                executor=executor,
            )
            stats = executor.supervision_stats()
    finally:
        install_fault_hook(None)
    return _crawl_blob(dataset), stats


# ----------------------------------------------------------------------
# Fast tier: the push-gate smoke (`make chaos`)
# ----------------------------------------------------------------------
class TestWorkerKillSmoke:
    def test_mid_batch_sigkill_recovers_byte_identical(self):
        """SIGKILL one of four workers mid-day: the supervisor respawns
        it, re-ships full state, re-runs the shard -- and neither the
        dataset bytes nor the fleet-wide memo counters can tell."""
        reference, ref_stats, _ = _run_campaign()
        chaotic, stats, health = _run_campaign(
            [(1, 0, "mid-batch")]
        )
        assert chaotic == reference
        assert stats == ref_stats
        assert health["restarts"] == 1
        assert health["quarantined_shards"] == 0

    def test_death_between_batches_recovers(self):
        """A worker that dies between day batches is noticed at the next
        dispatch (broken pipe), not just mid-collect."""
        reference, _ = _run_crawl(days=2)
        # after-batch: the worker dies after replying for batch 0, so
        # batch 1's dispatch hits the dead pipe.
        chaotic, stats = _run_crawl([(0, 0, "after-batch")], days=2)
        assert chaotic == reference
        assert stats["restarts"] == 1

    def test_recovery_telemetry_accumulates(self):
        _, _, health = _run_campaign([(0, 0, "before-batch")])
        assert health["restarts"] == 1
        assert health["recovery_ms"] > 0


class TestFleetHealthScope:
    """Per-job scoping of the supervision counters (the serving layer
    runs many jobs in one process; a scope sees only its own thread's
    executor folds, while the global accumulator still sees all)."""

    def test_nested_scopes_capture_this_threads_folds(self):
        from repro.exec import FleetHealthScope

        with FleetHealthScope() as outer:
            with FleetHealthScope() as inner:
                _, _, health = _run_campaign([(1, 0, "mid-batch")])
        assert inner.snapshot()["restarts"] == 1
        assert outer.snapshot()["restarts"] == 1
        assert inner.snapshot()["recovery_ms"] > 0
        # The global accumulator got the same fold (the scope observes,
        # it does not divert).
        assert health["restarts"] == 1

    def test_scope_ignores_other_threads(self):
        import threading

        from repro.exec import FleetHealthScope

        done = threading.Event()
        with FleetHealthScope() as scope:
            thread = threading.Thread(
                target=lambda: (_run_campaign([(0, 0, "mid-batch")]),
                                done.set()),
                daemon=True,
            )
            thread.start()
            thread.join(timeout=300)
        assert done.is_set(), "chaos campaign thread did not finish"
        assert scope.snapshot()["restarts"] == 0
        assert fleet_health()["restarts"] == 1


class TestQuarantine:
    def test_poison_shard_completes_inline_with_logged_warning(self, caplog):
        """A shard that keeps killing its workers exhausts the restart
        budget, gets quarantined with a structured warning, and its
        checks run inline on the coordinator -- the run completes and
        the bytes (and burst counters) still match fault-free."""
        reference, ref_stats, _ = _run_campaign()
        # The plan re-kills the replacement at the re-dispatch, too:
        # budget 1 means the second failure quarantines the shard.
        with caplog.at_level(logging.WARNING, logger="repro.exec"):
            chaotic, stats, health = _run_campaign(
                [(0, 0, "before-batch")] * 3, max_restarts=1,
            )
        assert chaotic == reference
        assert stats == ref_stats
        assert health["quarantined_shards"] == 1
        assert health["inline_checks"] > 0
        assert any(
            "quarantining shard 0" in record.getMessage()
            for record in caplog.records
        )

    def test_zero_budget_quarantines_on_first_failure(self):
        reference, ref_stats, _ = _run_campaign()
        chaotic, stats, health = _run_campaign(
            [(2, 0, "mid-batch")], max_restarts=0,
        )
        assert chaotic == reference
        assert stats == ref_stats
        assert health["restarts"] == 0
        assert health["quarantined_shards"] == 1


class TestHangDetection:
    def test_hung_worker_is_killed_at_deadline_and_rerun(self):
        """A worker that stops replying is SIGKILLed once its cost-scaled
        deadline expires; the re-run is byte-identical."""
        reference, _ = _run_crawl(days=2)
        chaotic, stats = _run_crawl(
            [(1, 0, "hang")], days=2,
            executor_kwargs=dict(min_deadline_s=2.0, deadline_per_cost_s=0.0),
        )
        assert chaotic == reference
        assert stats["hang_kills"] == 1
        assert stats["restarts"] == 1

    def test_deadline_scales_with_predicted_shard_cost(self):
        """The hang deadline prices a shard exactly like the cost planner:
        live fan-outs buy wall clock, memo-hit replays buy almost none."""
        from repro.analysis.personal import derive_anchor_for_domain
        from repro.core.backend import CheckRequest, ScheduledCheck
        from repro.exec.plan import (
            LIVE_CHECK_COST,
            MEMO_HIT_COST,
            CostAwarePlanner,
            predicted_batch_cost,
        )

        world = _world()
        backend = _backend(world)
        domain = "www.digitalrev.com"
        assert world.servers[domain].signature_profile() is not None
        anchor = derive_anchor_for_domain(world, domain)
        product = world.retailer(domain).catalog.products[0]
        shard = [
            ScheduledCheck(
                index=i, check_id=f"chk{i:07d}", start_ts=float(i),
                request=CheckRequest(
                    url=f"http://{domain}{product.path}", anchor=anchor
                ),
            )
            for i in range(3)
        ]
        cost = predicted_batch_cost(backend, shard)
        # Same-burst repeats on a memoizable retailer price as hits...
        assert cost == LIVE_CHECK_COST + 2 * MEMO_HIT_COST
        # ...and the number is the planner's own prediction, so the
        # supervisor and the shard packing can never disagree on load.
        assert cost == sum(
            CostAwarePlanner(2).predicted_costs(backend, shard).values()
        )


class TestExceptionRelay:
    """Satellite: worker exceptions -- picklable or not -- surface loudly."""

    def test_picklable_worker_exception_reraises_and_never_respawns(self):
        """A deterministic exception is not a worker failure: relay it,
        do not burn the restart budget re-running a check that will
        deterministically raise again."""
        world = _world()
        backend = _backend(world)
        plan = build_plan(
            world, domains=world.crawled_domains[:4],
            products_per_retailer=2,
        )
        FaultPlan([(0, 0, "raise")]).install()
        executor = ProcessExecutor(world, 2)
        try:
            with pytest.raises(RuntimeError, match="injected worker fault"):
                run_crawl(world, backend, plan, CrawlConfig(days=1),
                          executor=executor)
            assert executor.supervision_stats()["restarts"] == 0
        finally:
            executor.close()

    def test_unpicklable_worker_exception_surfaces_traceback_text(self):
        """An exception the relay cannot pickle falls back to a
        RuntimeError carrying the stringified traceback -- the cause is
        never masked and the coordinator never hangs."""
        world = _world()
        backend = _backend(world)
        plan = build_plan(
            world, domains=world.crawled_domains[:4],
            products_per_retailer=2,
        )
        FaultPlan([(1, 0, "raise-unpicklable")]).install()
        executor = ProcessExecutor(world, 2)
        try:
            with pytest.raises(RuntimeError) as excinfo:
                run_crawl(world, backend, plan, CrawlConfig(days=1),
                          executor=executor)
            text = str(excinfo.value)
            assert "_UnpicklableFault" in text
            assert "injected worker fault: raise-unpicklable" in text
            assert "Traceback" in text
            assert executor.supervision_stats()["restarts"] == 0
        finally:
            executor.close()


class TestStartupAndDispatchCleanup:
    """Satellite: no leaked processes or pipes on any failure path."""

    def test_spawn_failure_closes_pipes_and_joins_started_workers(
        self, monkeypatch
    ):
        world = _world()
        spawned = []
        real = ProcessExecutor._spawn_worker

        def flaky(self, index):
            if index == 2:
                raise RuntimeError("spawn blew up")
            handle = real(self, index)
            spawned.append(handle)
            return handle

        monkeypatch.setattr(ProcessExecutor, "_spawn_worker", flaky)
        with pytest.raises(RuntimeError, match="spawn blew up"):
            ProcessExecutor(world, 4)
        assert len(spawned) == 2, "workers 0 and 1 started before the failure"
        for handle in spawned:
            handle.proc.join(timeout=10)
            assert not handle.proc.is_alive()
            assert handle.conn.closed

    def test_fatal_run_error_closes_the_executor(self):
        """An error the supervisor cannot absorb (a relayed worker
        exception) must not strand live workers behind the raise."""
        world = _world()
        backend = _backend(world)
        plan = build_plan(
            world, domains=world.crawled_domains[:4],
            products_per_retailer=2,
        )
        FaultPlan([(0, 0, "raise")]).install()
        executor = ProcessExecutor(world, 2)
        with pytest.raises(RuntimeError):
            run_crawl(world, backend, plan, CrawlConfig(days=1),
                      executor=executor)
        for handle in executor._handles:  # noqa: SLF001
            handle.proc.join(timeout=10)
            assert not handle.proc.is_alive()
            assert handle.conn.closed
        executor.close()  # idempotent


class TestFaultPlan:
    def test_seeded_schedules_are_deterministic(self):
        a = FaultPlan.seeded(7, workers=4, batches=5, n_faults=6)
        b = FaultPlan.seeded(7, workers=4, batches=5, n_faults=6)
        assert a.specs() == b.specs()
        assert FaultPlan.seeded(
            8, workers=4, batches=5, n_faults=6
        ).specs() != a.specs()
        for fault in a.specs():
            assert 0 <= fault["worker"] < 4
            assert 0 <= fault["batch"] < 5
            assert fault["point"] in FAULT_POINTS

    def test_each_fault_fires_once_and_duplicates_stack(self):
        plan = FaultPlan([(0, 1, "mid-batch"), (0, 1, "before-batch")])
        assert plan(0, 0) is None
        assert plan(0, 1) == "mid-batch"
        assert plan(0, 1) == "before-batch"
        assert plan(0, 1) is None


# ----------------------------------------------------------------------
# Slow tier: the full chaos grids
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestChaosGrid:
    """Any single worker, any fault point, any planner x memo cell."""

    def test_any_single_worker_kill_is_byte_identical(self):
        for memo in (True, False):
            reference, ref_stats, _ = _run_campaign(memo=memo)
            for planner in ("cost", "stable"):
                for victim in range(4):
                    point = KILL_FAULTS[victim % len(KILL_FAULTS)]
                    chaotic, stats, health = _run_campaign(
                        [(victim, 0, point)], planner=planner, memo=memo,
                    )
                    context = (f"planner={planner} memo={memo} "
                               f"victim={victim} point={point}")
                    assert chaotic == reference, f"{context}: bytes differ"
                    assert stats == ref_stats, (
                        f"{context}: fleet memo counters differ"
                    )
                    assert health["restarts"] == 1, context

    def test_multi_day_multi_fault_crawl_is_byte_identical(self):
        reference, _ = _run_crawl(days=3, workers=3)
        faults = [
            (0, 0, "mid-batch"), (2, 1, "before-batch"),
            (1, 2, "after-batch"), (0, 2, "mid-batch"),
        ]
        chaotic, stats = _run_crawl(faults, days=3, workers=3)
        assert chaotic == reference
        assert stats["restarts"] == len(faults)


@pytest.mark.slow
class TestSeededChaos:
    def test_random_fault_schedules_are_byte_identical(self):
        """Deterministic chaos: seeded random kill schedules (including
        hangs, under a short deadline) never change the bytes."""
        reference, _ = _run_crawl(days=3, workers=3)
        for seed in (1, 2, 3):
            plan = FaultPlan.seeded(
                seed, workers=3, batches=3, n_faults=4,
                points=KILL_FAULTS + ("hang",),
            )
            faults = [
                (f["worker"], f["batch"], f["point"]) for f in plan.specs()
            ]
            chaotic, stats = _run_crawl(
                faults, days=3, workers=3,
                executor_kwargs=dict(
                    min_deadline_s=3.0, deadline_per_cost_s=0.01
                ),
            )
            assert chaotic == reference, f"seed {seed}: bytes differ"
            assert stats["restarts"] >= 1, f"seed {seed}: no fault fired?"


@pytest.mark.slow
class TestCheckpointComposition:
    """Worker death composes with coordinator kill/resume."""

    WORLD = {"catalog_scale": 0.15, "long_tail_domains": 8}
    CAMPAIGN = {
        "n_checks": 240, "population_size": 30, "seed": 7,
        "start_day": 0, "end_day": 6,
    }

    def _spec(self, tmp_path: Path, tag: str, **overrides) -> dict:
        spec = {
            "kind": "campaign",
            "world": self.WORLD,
            "campaign": self.CAMPAIGN,
            "checkpoint_dir": str(tmp_path / tag / "ckpt"),
            "out": str(tmp_path / tag / "out.jsonl"),
            "result": str(tmp_path / tag / "result.json"),
        }
        spec.update(overrides)
        return spec

    def test_worker_faults_alone_stay_byte_identical_checkpointed(
        self, tmp_path
    ):
        """A checkpointed campaign is day-batched, so (worker, batch)
        faults land on real later days; the driver-side fault plan must
        not disturb the committed bytes."""
        reference = run_to_completion(self._spec(tmp_path, "ref"))
        faulted = run_to_completion(self._spec(
            tmp_path, "faulted",
            workers=2, mode="process",
            worker_faults=FaultPlan(
                [(0, 1, "mid-batch"), (1, 3, "before-batch")]
            ).specs(),
        ))
        assert faulted["out_sha256"] == reference["out_sha256"]
        assert faulted["archive_chain"] == reference["archive_chain"]

    def test_coordinator_sigkill_during_respawn_resumes_byte_identical(
        self, tmp_path
    ):
        """SIGKILL the coordinator at the worker-respawn barrier -- the
        narrowest recovery window: a worker is dead, its replacement not
        yet spawned, the day uncommitted.  The resume (fault-free, under
        a different worker count) must reproduce the reference bytes."""
        reference = run_to_completion(self._spec(tmp_path, "ref"))
        run_until_killed(self._spec(
            tmp_path, "kill",
            workers=2, mode="process",
            worker_faults=FaultPlan([(1, 2, "mid-batch")]).specs(),
            kill={"point": "worker-respawn", "count": 1},
        ))
        resumed = run_to_completion(self._spec(
            tmp_path, "kill",
            workers=4, mode="process", resume=True,
        ))
        assert resumed["out_sha256"] == reference["out_sha256"]
        assert resumed["archive_chain"] == reference["archive_chain"]
        assert resumed["rows"] == reference["rows"]
