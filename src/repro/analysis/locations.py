"""Location-axis analyses (Figs. 7, 8 and 9).

Fig. 7: distribution, per vantage point, of price(location)/min-price over
all products -- shows USA/Brazil cheap, Europe dearer, Finland dearest.

Fig. 8: pairwise location grids for one retailer -- each panel scatters
ratio-at-location-Y against ratio-at-location-X per product; diagonal =
equal prices, points hugging an axis = one side consistently dearer, blobs
off-diagonal both ways = "mixed" pricing.

Fig. 9: Finland's ratio-to-minimum per retailer -- almost never 1.0
(Finland almost never the cheap location; exceptions mauijim and
tuscanyleather).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.analysis.stats import BoxStats, grouped_box_stats, percentile
from repro.core.reports import PriceCheckReport
from repro.store import TableSlice, as_table_slice

__all__ = [
    "location_ratio_stats",
    "pairwise_grid",
    "PairwisePanel",
    "finland_profile",
]


def location_ratio_stats(
    reports: Sequence[PriceCheckReport], *, min_samples: int = 1
) -> dict[str, BoxStats]:
    """vantage name -> box stats of price(loc)/min(product) (Fig. 7)."""
    sliced = as_table_slice(reports)
    if sliced is not None:
        table = sliced.table
        value = table.vantages.value
        grouped: dict[int, list[float]] = {}
        for i in sliced.rows:
            for vid, ratio in table.ratios_by_vantage(i):
                grouped.setdefault(vid, []).append(ratio)
        samples = {value(vid): values for vid, values in grouped.items()}
    else:
        samples = {}
        for report in reports:
            for vantage, ratio in report.ratios_by_vantage().items():
                samples.setdefault(vantage, []).append(ratio)
    return grouped_box_stats(samples, min_samples=min_samples)


@dataclass(frozen=True)
class PairwisePanel:
    """One panel of a Fig. 8 grid: per-product ratio pairs for (row, col)."""

    row_location: str
    col_location: str
    points: tuple[tuple[float, float], ...]  # (x=col ratio, y=row ratio)

    def fraction_row_dearer(self, *, tolerance: float = 0.01) -> float:
        """Share of products where the row location pays strictly more."""
        if not self.points:
            return 0.0
        dearer = sum(1 for x, y in self.points if y > x * (1 + tolerance))
        return dearer / len(self.points)

    def fraction_equal(self, *, tolerance: float = 0.01) -> float:
        """Share of products where both locations pay the same."""
        if not self.points:
            return 1.0
        equal = sum(
            1 for x, y in self.points
            if y <= x * (1 + tolerance) and x <= y * (1 + tolerance)
        )
        return equal / len(self.points)

    def relationship(self, *, tolerance: float = 0.01) -> str:
        """Classify the panel: 'equal', 'row-dearer', 'col-dearer', 'mixed'.

        A product is neutral when the two ratios differ by less than
        ``tolerance``; the panel is 'equal' when >=90% of products are
        neutral, one-sided when the non-neutral products all lean one way,
        'mixed' otherwise.
        """
        if not self.points:
            return "equal"
        row_side = sum(1 for x, y in self.points if y > x * (1 + tolerance))
        col_side = sum(1 for x, y in self.points if x > y * (1 + tolerance))
        neutral = len(self.points) - row_side - col_side
        if neutral >= 0.9 * len(self.points):
            return "equal"
        if row_side > 0 and col_side == 0:
            return "row-dearer"
        if col_side > 0 and row_side == 0:
            return "col-dearer"
        return "mixed"


def pairwise_grid(
    reports: Sequence[PriceCheckReport],
    domain: str,
    locations: Sequence[str],
) -> dict[tuple[str, str], PairwisePanel]:
    """Fig. 8's grid for ``domain`` over the given vantage names.

    Per product, each location's ratio-to-minimum is the median across
    measurement rounds; panels are produced for every ordered pair
    (row != col).
    """
    if len(locations) < 2:
        raise ValueError("need at least two locations")
    per_product = _median_ratios_per_product(reports, domain)

    grid: dict[tuple[str, str], PairwisePanel] = {}
    for row in locations:
        for col in locations:
            if row == col:
                continue
            points = []
            for ratios in per_product.values():
                if row in ratios and col in ratios:
                    points.append((ratios[col], ratios[row]))
            grid[(row, col)] = PairwisePanel(
                row_location=row, col_location=col, points=tuple(points)
            )
    return grid


def _median_ratios_per_product(
    reports: Sequence[PriceCheckReport], domain: str
) -> dict[str, dict[str, float]]:
    sliced = as_table_slice(reports)
    if sliced is not None:
        return _median_ratios_kernel(sliced, domain)
    acc: dict[str, dict[str, list[float]]] = {}
    for report in reports:
        if report.domain != domain:
            continue
        for vantage, ratio in report.ratios_by_vantage().items():
            acc.setdefault(report.url, {}).setdefault(vantage, []).append(ratio)
    return {
        url: {vantage: percentile(values, 50) for vantage, values in ratios.items()}
        for url, ratios in acc.items()
    }


def _median_ratios_kernel(
    sliced: TableSlice, domain: str
) -> dict[str, dict[str, float]]:
    table = sliced.table
    did = table.domains.id_of(domain)
    if did is None:
        return {}
    url_value, vantage_value = table.urls.value, table.vantages.value
    acc: dict[int, dict[int, list[float]]] = {}
    for i in sliced.rows:
        if table.domain_id[i] != did:
            continue
        per_url = acc.setdefault(table.url_id[i], {})
        for vid, ratio in table.ratios_by_vantage(i):
            per_url.setdefault(vid, []).append(ratio)
    return {
        url_value(uid): {
            vantage_value(vid): percentile(values, 50)
            for vid, values in ratios.items()
        }
        for uid, ratios in acc.items()
    }


def finland_profile(
    reports: Sequence[PriceCheckReport],
    *,
    finland_vantage: str = "Finland - Tampere",
    min_samples: int = 1,
) -> dict[str, BoxStats]:
    """domain -> box stats of Finland's ratio-to-minimum (Fig. 9)."""
    sliced = as_table_slice(reports)
    if sliced is not None:
        table = sliced.table
        fin_id = table.vantages.id_of(finland_vantage)
        grouped: dict[int, list[float]] = {}
        if fin_id is not None:
            for i in sliced.rows:
                for vid, ratio in table.ratios_by_vantage(i):
                    if vid == fin_id:
                        grouped.setdefault(table.domain_id[i], []).append(ratio)
                        break
        value = table.domains.value
        samples = {value(did): values for did, values in grouped.items()}
    else:
        samples = {}
        for report in reports:
            ratios = report.ratios_by_vantage()
            if finland_vantage in ratios:
                samples.setdefault(report.domain, []).append(ratios[finland_vantage])
    return grouped_box_stats(samples, min_samples=min_samples)
