"""Substrate micro-benchmarks: HTML parsing, selectors, extraction, FX."""

from __future__ import annotations

import pytest

from repro.core.extraction import extract_price
from repro.core.highlight import derive_anchor
from repro.ecommerce.world import WorldConfig, build_world
from repro.fx.convert import Converter, max_gap_ratio
from repro.fx.rates import RateService
from repro.htmlmodel.parser import parse_html
from repro.htmlmodel.selectors import Selector
from repro.htmlmodel.serialize import to_html


@pytest.fixture(scope="module")
def product_page() -> str:
    """A real rendered retailer page (the parser's actual workload)."""
    world = build_world(WorldConfig(catalog_scale=0.2, long_tail_domains=0))
    retailer = world.retailer("www.amazon.com")
    product = retailer.catalog.products[0]
    response = world.vantage_points[0].fetch(
        world.network, f"http://{retailer.domain}{product.path}"
    )
    assert response.ok
    return response.body


def test_bench_parse_html(benchmark, product_page):
    doc = benchmark(parse_html, product_page)
    assert doc.children


def test_bench_serialize(benchmark, product_page):
    doc = parse_html(product_page)
    html = benchmark(to_html, doc)
    assert html


def test_bench_selector_query(benchmark, product_page):
    doc = parse_html(product_page)
    selector = Selector.parse("div.price-box span.price, #product-price")
    element = benchmark(selector.select_one, doc)
    assert element is not None


def test_bench_anchor_derivation(benchmark, product_page):
    doc = parse_html(product_page)
    selector = Selector.parse("#product-price, div.price-box span.value, "
                              "td.prc, p.item-price")
    element = selector.select_one(doc)
    anchor = benchmark(derive_anchor, doc, element)
    assert anchor.selector or anchor.node_path


def test_bench_extraction_end_to_end(benchmark, product_page):
    doc = parse_html(product_page)
    selector = Selector.parse("#product-price, div.price-box span.value, "
                              "td.prc, p.item-price")
    anchor = derive_anchor(doc, selector.select_one(doc))
    extracted = benchmark(extract_price, product_page, anchor)
    assert extracted.ok


def test_bench_fx_rate_series(benchmark):
    def one_year():
        service = RateService(seed=99)
        return [service.rate("EUR", day) for day in range(365)]

    rates = benchmark(one_year)
    assert len(rates) == 365


def test_bench_currency_guard(benchmark):
    service = RateService(seed=5)
    # Warm the cache so the bench measures the guard computation.
    for code in ("EUR", "GBP", "BRL"):
        service.rate(code, 160)
    guard = benchmark(
        max_gap_ratio, service, ["EUR", "GBP", "BRL"], range(150, 160)
    )
    assert guard > 1.0
