# Developer entry points.  Everything runs from the repo root with the
# in-tree package (PYTHONPATH=src); no installation step.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test test-fast test-full coverage scenarios docs-check bench \
	bench-analysis bench-campaign bench-resume bench-multicore \
	bench-chaos bench-serve chaos check examples serve-smoke

# Tier-1: the full test suite.
test:
	$(PYTHON) -m pytest -x -q

# Fast tier: everything except the `slow`-marked matrix/sharding grids
# (see pytest.ini + docs/TESTING.md).  CI runs this on push.
test-fast:
	$(PYTHON) -m pytest -x -q -m "not slow"

# Full tier: tier-1 under its tier name (CI's PR gate runs the same
# suite through `coverage` below).
test-full: test

# Full tier under coverage with the recorded baseline floor (CI PR
# gate).  Needs pytest-cov (CI installs it; it is not part of the
# stdlib-only runtime).  Raise the floor when coverage rises; never
# lower it to make a PR pass.
COV_FAIL_UNDER ?= 80
coverage:
	$(PYTHON) -m pytest -q --cov=repro --cov-report=term \
		--cov-report=xml --cov-fail-under=$(COV_FAIL_UNDER)

# Worker-chaos smoke: the fast tier of tests/test_worker_chaos.py --
# SIGKILL/hang/quarantine one worker of a real process campaign and
# demand byte identity (docs/TESTING.md "Worker chaos").  CI runs this
# on push; the slow chaos grids run in the PR tier under `coverage`.
chaos:
	$(PYTHON) -m pytest tests/test_worker_chaos.py -x -q -m "not slow"

# The adversarial scenario matrix: every scenario across the full
# executor x burst-memo grid (same code the slow test tier runs).
scenarios:
	$(PYTHON) -m repro.scenarios --grid

# The full gate in one command: tier-1 tests + docs freshness.
check: test docs-check

# Docs cannot rot: every symbol and CLI flag named in docs/API.md must
# resolve against the live code.
docs-check:
	$(PYTHON) -m pytest tests/test_docs_api.py -q

# Refresh benchmarks/BENCH_pipeline.json (per-check, crawl/campaign
# throughput, workers scaling curve, analysis aggregation).
bench:
	$(PYTHON) benchmarks/run_bench.py

# Just the columnar-vs-list analysis aggregation bench (100K synthetic
# reports); other entries in BENCH_pipeline.json are preserved.
bench-analysis:
	$(PYTHON) benchmarks/run_bench.py --only analysis_aggregation

# Just the heavy-traffic campaign bench (100K checks, burst memo on/off,
# subprocess-isolated peak RSS); other entries are preserved.  Tune with
# e.g. `make bench-campaign CAMPAIGN_CHECKS=200000`.
CAMPAIGN_CHECKS ?= 100000
bench-campaign:
	$(PYTHON) benchmarks/run_bench.py --only campaign_scaling \
		--campaign-checks $(CAMPAIGN_CHECKS)

# Just the kill-safe resume bench: checkpoint tax, day-boundary SIGKILL,
# resume overhead + peak RSS, byte-identity check.  Tune with e.g.
# `make bench-resume RESUME_CHECKS=500000`.
RESUME_CHECKS ?= 200000
bench-resume:
	$(PYTHON) benchmarks/run_bench.py --only campaign_resume \
		--resume-checks $(RESUME_CHECKS)

# Just the multicore scaling curve: workers x {local,process} x memo
# {on,off}, checks/s + per-day boundary overhead + fleet memo misses,
# byte identity across every cell.  `MULTICORE_FAST=1` runs the reduced
# 3-cell CI grid to a scratch file, leaving the recorded full-grid
# numbers in BENCH_pipeline.json untouched.
bench-multicore:
	$(PYTHON) benchmarks/run_bench.py --only multicore_scaling \
		$(if $(MULTICORE_FAST),--multicore-fast --heavy-rounds 2 \
		--out bench_multicore_ci.json)

# Just the worker-failure supervision bench: recovery latency under a
# mid-day worker SIGKILL, no-fault supervision overhead, byte identity
# demanded under both.
bench-chaos:
	$(PYTHON) benchmarks/run_bench.py --only worker_failure

# Just the serving-latency traffic replay: live HTTP service, mixed
# read/write stream, p50/p99 check latency + sustained checks/s.  Tune
# with e.g. `make bench-serve SERVE_REQUESTS=5000`.
SERVE_REQUESTS ?= 2000
bench-serve:
	$(PYTHON) benchmarks/run_bench.py --only serving_latency \
		--serve-requests $(SERVE_REQUESTS)

# Serving smoke: boot the real service, run a scripted request session
# (check, campaign job to completion, results download, health), then
# SIGTERM it and assert a clean exit (benchmarks/serve_smoke.py).
serve-smoke:
	$(PYTHON) benchmarks/serve_smoke.py

# Run every example (docs/EXAMPLES.md shows expected output).
examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/crowd_campaign.py
	$(PYTHON) examples/systematic_crawl.py
	$(PYTHON) examples/currency_guard_demo.py
	$(PYTHON) examples/kindle_login_study.py
