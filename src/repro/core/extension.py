"""The $heriff browser extension, simulated.

§3.1 steps (i)-(ii): the extension runs inside the *user's* browser.  The
user highlights a price; the extension derives an anchor for the
highlighted node and submits (URI, anchor) to the backend with one click.

In the simulation the user's visual search is a callable
``find_price(document) -> Element`` -- the crowd simulation passes the
retailer template's ground-truth price location (a human reading the page),
and robustness tests pass deliberately wrong or fuzzy finders.

:class:`UserClient` is the user's own browser context: their location, IP,
browser profile and cookie jar -- precisely the things the paper says the
system *cannot* control for on the originating side (§3.1, last paragraph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.backend import CheckRequest, SheriffBackend
from repro.core.extraction import extract_price_from_document
from repro.core.highlight import AnchorError, PriceAnchor, derive_anchor
from repro.core.reports import PriceCheckReport
from repro.ecommerce.localization import locale_for_country
from repro.htmlmodel.dom import Document, Element
from repro.htmlmodel.parser import parse_html_cached
from repro.net.transport import Network, TransportError
from repro.net.vantage import VantagePoint

__all__ = ["SheriffExtension", "UserClient", "CheckOutcome", "PreparedCheck"]


class UserClient(VantagePoint):
    """A crowd user's browser: same mechanics as a vantage point.

    The distinction is semantic -- vantage points are the controlled
    measurement fleet, user clients are whoever installed the extension.
    """


@dataclass
class CheckOutcome:
    """What one extension-triggered check produced.

    ``user_amount``/``user_currency`` is what the *user themselves* saw --
    the crowdsourced dataset keeps it alongside the fleet's observations.
    ``report`` is ``None`` when the flow failed before reaching the
    backend (page unreachable, nothing highlightable).
    """

    url: str
    user: str
    report: Optional[PriceCheckReport] = None
    user_amount: Optional[float] = None
    user_currency: Optional[str] = None
    failure: str = ""

    @property
    def ok(self) -> bool:
        return self.report is not None


@dataclass
class PreparedCheck:
    """The client-side half of a check, ready for backend submission.

    ``outcome`` already carries what the user saw (or why the flow
    failed); ``request`` is the submission for the backend fan-out, or
    ``None`` when the flow failed before reaching it; ``start_ts`` is the
    virtual instant of the click, which the fan-out must run at.  The
    crowd campaign collects prepared checks and submits them as one
    scheduled batch (shardable across workers); ``outcome.report`` is
    filled in when the matching report comes back.
    """

    outcome: CheckOutcome
    request: Optional[CheckRequest] = None
    start_ts: float = 0.0


class SheriffExtension:
    """Client-side orchestration: fetch, highlight, anchor, submit."""

    def __init__(self, backend: SheriffBackend, network: Network) -> None:
        self.backend = backend
        self.network = network

    def prepare_check(
        self,
        client: UserClient | VantagePoint,
        url: str,
        find_price: Callable[[Document], Optional[Element]],
        *,
        origin: Optional[str] = None,
        referer: Optional[str] = None,
    ) -> PreparedCheck:
        """Run the client-side §3.1 flow: fetch, highlight, derive anchor.

        Everything that happens in the *user's* browser happens here --
        page load (which advances the world clock), visual price search,
        anchor derivation, and recording what the user themselves saw.
        The backend fan-out is *not* run; the returned
        :class:`PreparedCheck` carries the request (if the flow got that
        far) and the click instant for a later scheduled submission.
        Never raises for per-check failures, because a crowd campaign must
        keep going when one check goes wrong.
        """
        who = origin or client.name
        outcome = CheckOutcome(url=url, user=who)
        prepared = PreparedCheck(outcome=outcome)
        try:
            response = client.fetch(self.network, url, referer=referer)
        except TransportError as exc:
            outcome.failure = f"user fetch failed: {exc}"
            return prepared
        if not response.ok:
            outcome.failure = f"user fetch failed: http {int(response.status)}"
            return prepared

        # The structured-fetch channel carries the server's rendered tree;
        # string-only responses go through the shared parse cache.  Both
        # are read-only here (highlighting and anchor derivation only read).
        document = response.document
        if document is None:
            document = parse_html_cached(response.body)
        element = find_price(document)
        if element is None:
            outcome.failure = "user could not locate a price on the page"
            return prepared
        try:
            anchor = derive_anchor(document, element)
        except AnchorError as exc:
            outcome.failure = f"anchor derivation failed: {exc}"
            return prepared

        # Record what the user themselves saw, in their own locale.
        locale = locale_for_country(client.location.country_code)
        own = extract_price_from_document(document, anchor, locale_hint=locale)
        if own.ok:
            outcome.user_amount = own.amount
            outcome.user_currency = own.currency or locale.currency.code

        prepared.request = CheckRequest(url=url, anchor=anchor, origin=who)
        prepared.start_ts = self.network.clock.now
        return prepared

    def check_product(
        self,
        client: UserClient | VantagePoint,
        url: str,
        find_price: Callable[[Document], Optional[Element]],
        *,
        origin: Optional[str] = None,
        referer: Optional[str] = None,
    ) -> CheckOutcome:
        """Run the full §3.1 user flow for one product page.

        ``find_price`` stands in for the user's eyes.  The document it
        receives may be a *shared* tree (the retailer's render memo or the
        process-wide parse cache), so it must only read -- never detach,
        re-parent, or edit nodes; mutations would poison every later check
        that renders or parses the identical page.  ``referer`` is how
        the *user* arrived at the page; the backend fan-out deliberately
        does not reproduce it (it only receives the bare URI) -- which is
        one of the things the system "cannot control for" per §3.1.
        Never raises for per-check failures, because a crowd campaign must
        keep going when one check goes wrong.

        Equivalent to :meth:`prepare_check` plus an immediate scheduled
        submission of the prepared request.
        """
        prepared = self.prepare_check(
            client, url, find_price, origin=origin, referer=referer
        )
        if prepared.request is not None:
            prepared.outcome.report = self.backend.check_batch(
                [prepared.request], start_times=[prepared.start_ts]
            )[0]
        return prepared.outcome
