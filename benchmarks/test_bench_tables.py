"""Benchmarks for the §3.2 dataset-summary table and the §4.4 tracker
census."""

from __future__ import annotations

from repro.experiments import tab_datasets, tab_thirdparty


def test_bench_dataset_summary(benchmark, ctx):
    result = benchmark.pedantic(tab_datasets.run, args=(ctx,), rounds=3, iterations=1)
    benchmark.extra_info["measured"] = {
        metric: measured for metric, _, measured in result.rows
    }
    assert result.checks["21 crawled retailers"]


def test_bench_thirdparty_census(benchmark, ctx):
    result = benchmark.pedantic(tab_thirdparty.run, args=(ctx,), rounds=3, iterations=1)
    benchmark.extra_info["presence"] = {
        name: measured for name, _, measured in result.rows
    }
    assert result.checks["presence ordering: GA heaviest, Twitter lightest"]
