"""Dataset persistence round-trips and CLI tests."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro import cli
from repro import io as dataset_io
from repro.core.reports import PriceCheckReport, VantageObservation
from repro.crawler.records import CrawlDataset


def make_report(url: str = "http://d.example/p/1", *, day: int = 3) -> PriceCheckReport:
    return PriceCheckReport(
        check_id="chk0000001",
        url=url,
        domain="d.example",
        day_index=day,
        timestamp=day * 86400.0 + 120.5,
        observations=[
            VantageObservation(
                vantage="USA - Boston", country_code="US", city="Boston",
                ok=True, raw_text="$10.00", amount=10.0, currency="USD",
                usd=10.0, method="selector",
            ),
            VantageObservation(
                vantage="Finland - Tampere", country_code="FI", city="Tampere",
                ok=True, raw_text="9,70 €", amount=9.7, currency="EUR",
                usd=12.8, method="selector",
            ),
            VantageObservation(
                vantage="UK - London", country_code="GB", city="London",
                ok=False, error="http 404",
            ),
        ],
        guard_threshold=1.02,
        origin="crawler",
    )


class TestReportRoundtrip:
    def test_dict_roundtrip(self):
        report = make_report()
        data = dataset_io.report_to_dict(report)
        again = dataset_io.report_from_dict(data)
        assert again.check_id == report.check_id
        assert again.url == report.url
        assert again.day_index == report.day_index
        assert again.guard_threshold == report.guard_threshold
        assert len(again.observations) == 3
        assert again.ratio == pytest.approx(report.ratio)
        assert again.has_variation == report.has_variation

    def test_json_serializable(self):
        json.dumps(dataset_io.report_to_dict(make_report()))

    def test_bad_record_raises(self):
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.report_from_dict({"url": "x"})


class TestCrawlFile:
    def test_save_load_roundtrip(self, tmp_path: Path):
        dataset = CrawlDataset()
        for day in range(3):
            dataset.add(make_report(f"http://d.example/p/{day}", day=day))
        path = tmp_path / "crawl.jsonl"
        written = dataset_io.save_crawl_dataset(dataset, path, seed=7)
        assert written == 3
        loaded = dataset_io.load_crawl_dataset(path)
        assert len(loaded) == 3
        assert loaded.day_indices == [0, 1, 2]
        assert loaded.n_extracted_prices == dataset.n_extracted_prices

    def test_header_validated(self, tmp_path: Path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "something-else", "version": 1}\n')
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crawl_dataset(path)

    def test_version_mismatch(self, tmp_path: Path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"format": "repro-reports", "version": 99, "kind": "crawl"}\n')
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crawl_dataset(path)

    def test_kind_mismatch(self, tmp_path: Path):
        path = tmp_path / "crowd.jsonl"
        path.write_text('{"format": "repro-reports", "version": 1, "kind": "crowd"}\n')
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crawl_dataset(path)

    def test_empty_file(self, tmp_path: Path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crawl_dataset(path)

    def test_corrupt_line(self, tmp_path: Path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text(
            '{"format": "repro-reports", "version": 1, "kind": "crawl"}\n'
            "not json\n"
        )
        with pytest.raises(dataset_io.DatasetFormatError):
            dataset_io.load_crawl_dataset(path)


class TestCrowdFile:
    def test_save_load_roundtrip(self, tiny_ctx, tmp_path: Path):
        dataset = tiny_ctx.crowd
        path = tmp_path / "crowd.jsonl"
        written = dataset_io.save_crowd_dataset(dataset, path, seed=2013)
        assert written == len(dataset)
        loaded = dataset_io.load_crowd_dataset(path)
        assert loaded.summary() == dataset.summary()
        assert loaded.variation_counts() == dataset.variation_counts()


class TestCli:
    def test_parser_subcommands(self):
        parser = cli.build_parser()
        args = parser.parse_args(["campaign", "--scale", "tiny"])
        assert args.command == "campaign"
        args = parser.parse_args(["check", "www.amazon.com", "--product", "3"])
        assert args.domain == "www.amazon.com"
        assert args.product == 3

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            cli.build_parser().parse_args([])

    def test_check_command(self, capsys):
        code = cli.main(["check", "www.digitalrev.com", "--scale", "tiny"])
        out = capsys.readouterr().out
        assert code == 0
        assert "VARIATION" in out
        assert "Finland - Tampere" in out

    def test_check_unknown_domain(self, capsys):
        code = cli.main(["check", "www.nothere.example", "--scale", "tiny"])
        assert code == 2
        assert "unknown domain" in capsys.readouterr().err

    def test_check_bad_product_index(self, capsys):
        code = cli.main(
            ["check", "www.digitalrev.com", "--scale", "tiny", "--product", "99999"]
        )
        assert code == 2

    def test_crawl_then_analyze(self, tmp_path: Path, capsys):
        out_file = tmp_path / "crawl.jsonl"
        code = cli.main(["crawl", "--scale", "tiny", "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        code = cli.main(["analyze", str(out_file)])
        out = capsys.readouterr().out
        assert code == 0
        assert "extent of variation" in out
        assert "Finland profile" in out


class TestCliErrorPaths:
    """Bad invocations exit 2 with one line on stderr -- no tracebacks."""

    def test_analyze_missing_file(self, capsys):
        code = cli.main(["analyze", "/missing/nowhere.jsonl"])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot read dataset" in err
        assert "Traceback" not in err

    def test_analyze_unreadable_directory(self, tmp_path: Path, capsys):
        code = cli.main(["analyze", str(tmp_path)])
        assert code == 2
        assert "cannot read dataset" in capsys.readouterr().err

    def test_analyze_garbage_text_file(self, tmp_path: Path, capsys):
        junk = tmp_path / "junk.jsonl"
        junk.write_text("this is not a dataset\n", encoding="utf-8")
        code = cli.main(["analyze", str(junk)])
        err = capsys.readouterr().err
        assert code == 2
        assert "not a repro dataset" in err

    def test_analyze_binary_garbage_file(self, tmp_path: Path, capsys):
        junk = tmp_path / "junk.bin"
        junk.write_bytes(b"\x00\xff\xfe\x80PK\x03\x04" * 16)
        code = cli.main(["analyze", str(junk)])
        err = capsys.readouterr().err
        assert code == 2
        assert "not a repro dataset" in err

    def test_analyze_torn_header_file(self, tmp_path: Path, capsys):
        torn = tmp_path / "torn.jsonl"
        torn.write_text('{"format": "repro-repo', encoding="utf-8")
        code = cli.main(["analyze", str(torn)])
        assert code == 2
        assert "not a repro dataset" in capsys.readouterr().err

    def test_resume_without_checkpoint_dir(self, capsys):
        for command in ("campaign", "crawl"):
            code = cli.main([command, "--scale", "tiny", "--resume"])
            err = capsys.readouterr().err
            assert code == 2, command
            assert "--resume requires --checkpoint-dir" in err
