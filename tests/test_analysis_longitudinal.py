"""Longitudinal/persistence analysis tests."""

from __future__ import annotations

import pytest

from repro.analysis.longitudinal import (
    daily_extent,
    extent_stability,
    product_persistence,
)
from repro.core.reports import PriceCheckReport, VantageObservation


def obs(vantage: str, usd: float) -> VantageObservation:
    return VantageObservation(
        vantage=vantage, country_code="US", city="", ok=True,
        raw_text=f"${usd}", amount=usd, currency="USD", usd=usd,
    )


def report(domain: str, url: str, day: int, *, varied: bool) -> PriceCheckReport:
    prices = {"a": 100.0, "b": 130.0 if varied else 100.0}
    return PriceCheckReport(
        check_id=f"{url}@{day}", url=url, domain=domain, day_index=day,
        timestamp=day * 86400.0,
        observations=[obs(v, p) for v, p in prices.items()],
        guard_threshold=1.01,
    )


class TestDailyExtent:
    def test_per_day_fractions(self):
        reports = [
            report("d", "http://d/p1", 0, varied=True),
            report("d", "http://d/p2", 0, varied=False),
            report("d", "http://d/p1", 1, varied=True),
            report("d", "http://d/p2", 1, varied=True),
        ]
        extent = daily_extent(reports)
        assert extent["d"][0] == 0.5
        assert extent["d"][1] == 1.0

    def test_empty(self):
        assert daily_extent([]) == {}


class TestStability:
    def test_stable_domain(self):
        reports = [
            report("d", f"http://d/p{i}", day, varied=True)
            for day in range(4) for i in range(5)
        ]
        row = extent_stability(reports)["d"]
        assert row.days == 4
        assert row.mean_extent == 1.0
        assert row.max_daily_delta == 0.0
        assert row.is_stable

    def test_unstable_domain(self):
        reports = (
            [report("d", f"http://d/p{i}", 0, varied=True) for i in range(4)]
            + [report("d", f"http://d/p{i}", 1, varied=False) for i in range(4)]
        )
        row = extent_stability(reports)["d"]
        assert row.max_daily_delta == 1.0
        assert not row.is_stable

    def test_single_day_is_trivially_stable(self):
        reports = [report("d", "http://d/p1", 0, varied=True)]
        assert extent_stability(reports)["d"].is_stable


class TestPersistence:
    def test_fully_persistent(self):
        reports = [
            report("d", "http://d/p1", day, varied=True) for day in range(3)
        ]
        assert product_persistence(reports)["d"] == 1.0

    def test_fluke_product_reduces_persistence(self):
        reports = (
            [report("d", "http://d/steady", day, varied=True) for day in range(3)]
            + [report("d", "http://d/fluke", 0, varied=True)]
            + [report("d", "http://d/fluke", day, varied=False) for day in (1, 2)]
        )
        assert product_persistence(reports)["d"] == 0.5

    def test_never_varying_products_excluded(self):
        reports = [
            report("d", "http://d/flat", day, varied=False) for day in range(3)
        ]
        assert "d" not in product_persistence(reports)

    def test_single_day_products_excluded(self):
        reports = [report("d", "http://d/once", 0, varied=True)]
        assert "d" not in product_persistence(reports)

    def test_min_days_validated(self):
        with pytest.raises(ValueError):
            product_persistence([], min_days=1)


class TestOnRealCrawl:
    def test_crawled_world_is_persistent(self, tiny_ctx):
        """The simulated discriminators are deterministic per day, so
        persistence must be essentially total for pure-geo retailers."""
        persistence = product_persistence(tiny_ctx.crawl_clean.kept)
        assert persistence.get("www.digitalrev.com", 0.0) == 1.0
        assert persistence.get("store.killah.com", 0.0) == 1.0
        stability = extent_stability(tiny_ctx.crawl_clean.kept)
        assert stability["www.digitalrev.com"].is_stable
