"""Seeded property-style fuzzing of checkpoint-directory corruption.

Plain stdlib ``random`` with fixed seeds, mirroring
``tests/test_world_fuzz.py`` -- no new dependencies, fully reproducible.

The one property that matters: **a corrupted checkpoint never resumes
silently wrong**.  Whatever a fuzzer does to the directory -- truncate,
bit-flip, delete, doctor manifest fields -- resuming either

* raises a *named* :class:`~repro.checkpoint.CheckpointError` subclass
  (digest mismatch, missing file, manifest corruption, fingerprint
  mismatch), or
* completes with output byte-identical to the uninterrupted run (the
  corruption only destroyed work the run can redo deterministically --
  e.g. a torn manifest tail drops a committed segment, which re-runs).

An exception escaping that is *not* a CheckpointError, or a clean run
with different bytes, fails the property.
"""

from __future__ import annotations

import json
import random
import shutil
from pathlib import Path

import pytest

from repro.checkpoint import CheckpointError
from repro.core.backend import SheriffBackend
from repro.crowd.campaign import CampaignConfig, run_campaign
from repro.ecommerce.world import WorldConfig, build_world
from repro.io import save_crowd_dataset

N_CORRUPTIONS = 24

WORLD_CONFIG = WorldConfig(catalog_scale=0.15, long_tail_domains=6)
CAMPAIGN_CONFIG = CampaignConfig(
    n_checks=40, population_size=20, seed=11, start_day=0, end_day=4
)


def fresh_pair():
    world = build_world(WORLD_CONFIG)
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)
    return world, backend


@pytest.fixture(scope="module")
def reference(tmp_path_factory) -> tuple[Path, bytes]:
    """A fully committed checkpoint directory + the run's output bytes."""
    root = tmp_path_factory.mktemp("ckpt_fuzz")
    world, backend = fresh_pair()
    dataset = run_campaign(
        world, backend, CAMPAIGN_CONFIG, checkpoint_dir=root / "ckpt"
    )
    out = root / "reference.jsonl"
    save_crowd_dataset(dataset, out, columnar=True)
    return root / "ckpt", out.read_bytes()


def _flip_bit(path: Path, rng: random.Random) -> str:
    data = bytearray(path.read_bytes())
    if not data:
        return f"flip: {path.name} empty, skipped"
    i = rng.randrange(len(data))
    data[i] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))
    return f"flip byte {i} of {path.name}"


def _truncate(path: Path, rng: random.Random) -> str:
    data = path.read_bytes()
    keep = rng.randrange(len(data)) if data else 0
    path.write_bytes(data[:keep])
    return f"truncate {path.name} to {keep}B"


def _delete(path: Path, rng: random.Random) -> str:
    path.unlink()
    return f"delete {path.name}"


def _doctor_manifest(path: Path, rng: random.Random) -> str:
    """Rewrite one manifest line with a random structural mutation."""
    lines = path.read_text(encoding="utf-8").splitlines()
    i = rng.randrange(len(lines))
    obj = json.loads(lines[i])
    field = rng.choice(sorted(obj))
    action = rng.choice(("retype", "rewrite", "drop"))
    if action == "retype":
        obj[field] = [obj[field]]
    elif action == "rewrite":
        value = obj[field]
        if isinstance(value, int):
            obj[field] = value + rng.randrange(1, 1000)
        elif isinstance(value, str):
            obj[field] = "".join(
                rng.choice("0123456789abcdef") for _ in range(len(value) or 8)
            )
        else:
            obj[field] = {"doctored": True}
    else:
        del obj[field]
    lines[i] = json.dumps(obj, separators=(",", ":"), sort_keys=True)
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return f"manifest line {i}: {action} {field!r}"


def _corrupt(directory: Path, rng: random.Random) -> str:
    """One random corruption; returns a description for failure output."""
    files = sorted(p for p in directory.iterdir() if p.is_file())
    manifest = directory / "manifest.jsonl"
    roll = rng.random()
    if roll < 0.25:
        return _doctor_manifest(manifest, rng)
    target = rng.choice(files)
    op = rng.choice((_flip_bit, _truncate, _delete))
    return op(target, rng)


class TestCorruptCheckpointFuzz:
    def test_corrupted_checkpoints_never_resume_silently_wrong(
        self, reference, tmp_path: Path
    ):
        ckpt_dir, expected = reference
        rng = random.Random(0xC4A5)
        outcomes = {"error": 0, "redone": 0}
        for case in range(N_CORRUPTIONS):
            work = tmp_path / f"case{case}"
            shutil.copytree(ckpt_dir, work)
            what = _corrupt(work, rng)
            world, backend = fresh_pair()
            try:
                resumed = run_campaign(
                    world, backend, CAMPAIGN_CONFIG,
                    checkpoint_dir=work, resume=True,
                )
            except CheckpointError as exc:
                assert str(exc), f"{what}: empty error message"
                outcomes["error"] += 1
                continue
            out = work / "resumed.jsonl"
            save_crowd_dataset(resumed, out, columnar=True)
            assert out.read_bytes() == expected, (
                f"case {case} ({what}): resumed to DIFFERENT bytes -- "
                f"silent wrong resume"
            )
            outcomes["redone"] += 1
        # The fuzzer must actually exercise both fates.
        assert outcomes["error"] > 0
        assert outcomes["redone"] > 0

    def test_every_named_error_is_a_checkpoint_error(self):
        from repro import checkpoint

        for name in (
            "ManifestError", "CheckpointMismatchError",
            "SegmentMissingError", "SegmentDigestError",
        ):
            assert issubclass(getattr(checkpoint, name), CheckpointError)
