"""Cookie jar, browser profiles and vantage point tests."""

from __future__ import annotations

import pytest

from repro.net.cookiejar import CookieJar
from repro.net.geoip import IPAddressPlan
from repro.net.http import HttpResponse, SetCookie
from repro.net.urls import URL
from repro.net.useragent import BrowserProfile, STANDARD_PROFILES, profile_for
from repro.net.vantage import VANTAGE_SPECS, VantagePoint, standard_vantage_points


class TestCookieJar:
    def test_set_and_header(self):
        jar = CookieJar()
        jar.set("shop.example", SetCookie("a", "1"))
        header = jar.header_for(URL.parse("http://shop.example/x"))
        assert header == "a=1"

    def test_host_scoping(self):
        jar = CookieJar()
        jar.set("shop.example", SetCookie("a", "1"))
        assert jar.header_for(URL.parse("http://other.example/")) is None

    def test_path_scoping(self):
        jar = CookieJar()
        jar.set("h.example", SetCookie("a", "1", path="/admin"))
        assert jar.header_for(URL.parse("http://h.example/shop")) is None
        assert jar.header_for(URL.parse("http://h.example/admin/x")) == "a=1"
        assert jar.header_for(URL.parse("http://h.example/admin")) == "a=1"

    def test_expiry_against_clock(self):
        jar = CookieJar()
        jar.set("h.example", SetCookie("a", "1", max_age=100), now=0.0)
        url = URL.parse("http://h.example/")
        assert jar.header_for(url, now=50.0) == "a=1"
        assert jar.header_for(url, now=100.0) is None

    def test_max_age_zero_deletes(self):
        jar = CookieJar()
        jar.set("h.example", SetCookie("a", "1"))
        jar.set("h.example", SetCookie("a", "", max_age=0))
        assert len(jar) == 0

    def test_secure_requires_https(self):
        jar = CookieJar()
        jar.set("h.example", SetCookie("s", "1", secure=True))
        assert jar.header_for(URL.parse("http://h.example/")) is None
        assert jar.header_for(URL.parse("https://h.example/")) == "s=1"

    def test_update_from_response(self):
        jar = CookieJar()
        response = HttpResponse.html("x")
        response.headers.add("Set-Cookie", "a=1")
        response.headers.add("Set-Cookie", "b=2")
        jar.update_from_response(URL.parse("http://h.example/"), response)
        assert jar.get("h.example", "a") == "1"
        assert jar.get("h.example", "b") == "2"

    def test_put_and_clear(self):
        jar = CookieJar()
        jar.put("a.example", "x", "1")
        jar.put("b.example", "y", "2")
        jar.clear("a.example")
        assert jar.get("a.example", "x") is None
        assert jar.get("b.example", "y") == "2"
        jar.clear()
        assert len(jar) == 0

    def test_header_ordering_longest_path_first(self):
        jar = CookieJar()
        jar.put("h.example", "broad", "1", path="/")
        jar.put("h.example", "narrow", "2", path="/shop")
        header = jar.header_for(URL.parse("http://h.example/shop/item"))
        assert header == "narrow=2; broad=1"


class TestBrowserProfiles:
    def test_standard_profiles_complete(self):
        assert set(STANDARD_PROFILES) == {
            "linux-firefox", "windows-chrome", "macos-safari"
        }

    @pytest.mark.parametrize("key", list(STANDARD_PROFILES))
    def test_user_agent_plausible(self, key):
        profile = STANDARD_PROFILES[key]
        ua = profile.user_agent
        assert ua.startswith("Mozilla/5.0")
        assert profile.version in ua

    def test_labels_match_paper_legend(self):
        assert profile_for("firefox", "linux").label == "Linux,FF"
        assert profile_for("safari", "macos").label == "Mac,Safari"
        assert profile_for("chrome", "windows").label == "Win,Chrome"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            profile_for("netscape", "linux")
        with pytest.raises(ValueError):
            profile_for("chrome", "beos")


class TestVantagePoints:
    def test_fleet_matches_paper(self):
        plan = IPAddressPlan()
        points = standard_vantage_points(plan)
        assert len(points) == 14
        names = {p.name for p in points}
        assert "Finland - Tampere" in names
        assert "USA - Albany" in names
        spain = [p for p in points if p.name.startswith("Spain")]
        assert len(spain) == 3
        # Same city, different browsers.
        assert len({p.location.city for p in spain}) == 1
        assert len({p.profile.browser for p in spain}) == 3

    def test_each_point_geolocates_correctly(self):
        plan = IPAddressPlan()
        db = plan.database()
        for point in standard_vantage_points(plan):
            location = db.lookup(point.ip)
            assert location is not None
            assert location.country_code == point.location.country_code
            assert location.city == point.location.city

    def test_build_request_carries_identity(self):
        plan = IPAddressPlan()
        point = standard_vantage_points(plan)[0]
        point.jar.put("shop.example", "session", "s1")
        request = point.build_request(
            "http://shop.example/p/1", referer="http://ref.example/"
        )
        assert request.client_ip == point.ip
        assert request.headers.get("User-Agent") == point.profile.user_agent
        assert request.cookies == {"session": "s1"}
        assert request.referer == "http://ref.example/"

    def test_specs_cover_14(self):
        assert len(VANTAGE_SPECS) == 14


class TestRetryBackoff:
    """`fetch_with_retries` backoff: virtual-clock sleeps, deterministic."""

    def _point(self):
        return standard_vantage_points(IPAddressPlan())[0]

    def _network(self, *, loss_rate=0.0, seed=3):
        from repro.net.clock import VirtualClock
        from repro.net.transport import FunctionServer, Network

        net = Network(VirtualClock(), seed=seed, loss_rate=loss_rate)
        net.register(
            "shop.example",
            FunctionServer(lambda r: HttpResponse.html("ok")),
        )
        return net

    def test_backoff_off_is_byte_identical_to_historical(self):
        """The default (backoff 0) is the pre-backoff behavior exactly:
        same clock trajectory, same response, same retry draws."""
        def run(**kwargs):
            net = self._network(loss_rate=0.45, seed=9)
            point = self._point()
            try:
                body = point.fetch_with_retries(
                    net, "http://shop.example/", attempts=4, **kwargs
                ).body
            except Exception as exc:  # noqa: BLE001 - compared below
                body = f"failed: {exc}"
            return body, net.clock.now, net.request_count

        assert run() == run(backoff_base_s=0.0)

    def test_backoff_advances_only_the_virtual_clock(self):
        """Backoff burns simulated seconds between failed attempts --
        never wall clock, and never before the first attempt."""
        import time as _time

        net = self._network(loss_rate=0.97, seed=3)
        point = self._point()
        from repro.net.transport import TransportError

        t0 = _time.perf_counter()
        before = net.clock.now
        with pytest.raises(TransportError):
            point.fetch_with_retries(
                net, "http://shop.example/", attempts=4,
                backoff_base_s=10.0, backoff_cap_s=15.0,
            )
        assert _time.perf_counter() - t0 < 5.0, "slept wall clock!"
        # 3 retries backed off 10, 15 (capped), 15 (capped) virtual
        # seconds on top of whatever the lost sends themselves burned.
        burned = net.clock.now - before
        assert burned >= 40.0

    def test_backoff_runs_are_deterministic(self):
        """Same seed + same knobs -> the same draws, clock, and outcome;
        the retry schedule is request-keyed, not wall-clock-keyed."""
        def run():
            net = self._network(loss_rate=0.45, seed=11)
            point = self._point()
            try:
                body = point.fetch_with_retries(
                    net, "http://shop.example/", attempts=5,
                    backoff_base_s=2.0,
                ).body
            except Exception as exc:  # noqa: BLE001 - compared below
                body = f"failed: {exc}"
            return body, net.clock.now, net.request_count

        assert run() == run()

    def test_invalid_backoff_rejected(self):
        net = self._network()
        with pytest.raises(ValueError):
            self._point().fetch_with_retries(
                net, "http://shop.example/", backoff_base_s=-1.0
            )
