"""Crowdsourcing simulation.

§3.2's dataset: "1500 requests (between Jan-May 2013) ... issued by 340
different users from 18 countries ... checked products from 600 domains."

* :mod:`repro.crowd.population` -- the 340-user population with realistic
  country skew and per-user category interests,
* :mod:`repro.crowd.campaign` -- the beta-test campaign: users browse
  shops they care about, highlight prices, and trigger $heriff checks
  over the Jan-May window,
* :mod:`repro.crowd.dataset` -- the resulting crowdsourced dataset and its
  summary statistics.
"""

from repro.crowd.campaign import CampaignConfig, run_campaign
from repro.crowd.dataset import CheckRecord, CrowdDataset
from repro.crowd.population import CrowdUser, build_population

__all__ = [
    "CampaignConfig",
    "CheckRecord",
    "CrowdDataset",
    "CrowdUser",
    "build_population",
    "run_campaign",
]
