"""PriceCheckReport invariants, including property-based checks."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reports import PriceCheckReport, VantageObservation


def obs(vantage: str, usd: float | None, *, ok: bool = True) -> VantageObservation:
    return VantageObservation(
        vantage=vantage, country_code="US", city="", ok=ok,
        raw_text="" if usd is None else f"${usd}",
        amount=usd, currency="USD" if usd is not None else None, usd=usd,
    )


def make(prices: list[float | None], *, guard: float = 1.0) -> PriceCheckReport:
    observations = []
    for index, price in enumerate(prices):
        if price is None:
            observations.append(
                VantageObservation(vantage=f"v{index}", country_code="US",
                                   city="", ok=False, error="x")
            )
        else:
            observations.append(obs(f"v{index}", price))
    return PriceCheckReport(
        check_id="c", url="http://d/p", domain="d", day_index=0,
        timestamp=0.0, observations=observations, guard_threshold=guard,
    )


class TestBasics:
    def test_min_max_ratio(self):
        report = make([10.0, 12.0, 11.0])
        assert report.min_usd == 10.0
        assert report.max_usd == 12.0
        assert report.ratio == pytest.approx(1.2)

    def test_failed_observations_ignored(self):
        report = make([10.0, None, 13.0])
        assert len(report.valid_observations()) == 2
        assert report.ratio == pytest.approx(1.3)

    def test_single_point_no_ratio(self):
        report = make([10.0])
        assert report.ratio is None
        assert not report.has_variation

    def test_all_failed(self):
        report = make([None, None])
        assert report.min_usd is None
        assert report.ratio is None

    def test_zero_usd_is_a_valid_observation(self):
        """Regression: ``usd == 0.0`` (a free product) must not be
        silently dropped by a truthiness check."""
        report = make([0.0, 5.0])
        assert len(report.valid_observations()) == 2
        assert report.prices_usd == [0.0, 5.0]
        assert report.min_usd == 0.0
        assert report.max_usd == 5.0
        # A zero minimum still yields no ratio (division guard) ...
        assert report.ratio is None
        assert not report.has_variation
        # ... and ratios-to-minimum are undefined at min == 0.
        assert report.ratios_by_vantage() == {}

    def test_guard_strictness(self):
        at_guard = make([100.0, 102.0], guard=1.02)
        assert not at_guard.has_variation  # strictly greater required
        above = make([100.0, 102.1], guard=1.02)
        assert above.has_variation

    def test_observation_for(self):
        report = make([10.0, 11.0])
        assert report.observation_for("v1").usd == 11.0
        assert report.observation_for("nope") is None

    def test_ratios_by_vantage(self):
        report = make([10.0, 12.5])
        ratios = report.ratios_by_vantage()
        assert ratios == {"v0": 1.0, "v1": 1.25}

    def test_summary_line_states(self):
        assert "not enough data" in make([10.0]).summary_line()
        assert "VARIATION" in make([10.0, 13.0], guard=1.01).summary_line()
        assert "uniform" in make([10.0, 10.0], guard=1.01).summary_line()

    def test_observation_validation(self):
        with pytest.raises(ValueError):
            VantageObservation(vantage="v", country_code="US", city="", ok=True)


@given(
    prices=st.lists(st.floats(min_value=0.01, max_value=1e5),
                    min_size=2, max_size=14),
    guard=st.floats(min_value=1.0, max_value=1.1),
)
@settings(max_examples=150, deadline=None)
def test_report_invariants_property(prices, guard):
    """For any observation set: min <= max, ratio >= 1, every per-vantage
    ratio in [1, ratio], and the guard verdict consistent with the ratio."""
    report = make(list(prices), guard=guard)
    assert report.min_usd <= report.max_usd
    ratio = report.ratio
    assert ratio >= 1.0
    by_vantage = report.ratios_by_vantage()
    assert len(by_vantage) == len(prices)
    for value in by_vantage.values():
        assert 1.0 - 1e-12 <= value <= ratio + 1e-9
    assert report.has_variation == (ratio > guard)
