"""Virtual time for the whole simulation.

The paper's methodology leans on timing twice: fan-out requests are
*synchronized* across vantage points ("so that they occur almost at the same
time"), and the crawl is *daily for a week*.  A shared virtual clock makes
both reproducible and lets tests inject temporal price drift to verify the
synchronization actually suppresses it.

Time is modeled as seconds since the simulation epoch, which we pin to
2013-01-01 00:00:00 UTC -- the start of the paper's collection window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["VirtualClock", "SimDate", "SECONDS_PER_DAY", "EPOCH_LABEL"]

SECONDS_PER_DAY = 86_400
EPOCH_LABEL = "2013-01-01T00:00:00Z"

_MONTH_DAYS = (31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31)
_MONTH_NAMES = (
    "Jan", "Feb", "Mar", "Apr", "May", "Jun",
    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
)


@dataclass(frozen=True, order=True)
class SimDate:
    """A calendar date inside the (non-leap) simulation year 2013."""

    day_index: int  # days since 2013-01-01

    def __post_init__(self) -> None:
        if self.day_index < 0:
            raise ValueError("day_index must be >= 0")

    @property
    def month(self) -> int:
        """1-based month, wrapping years if the index runs past December."""
        return self._ymd()[1]

    @property
    def day(self) -> int:
        return self._ymd()[2]

    @property
    def year(self) -> int:
        return self._ymd()[0]

    def _ymd(self) -> tuple[int, int, int]:
        remaining = self.day_index
        year = 2013
        while True:
            days_in_year = 366 if _is_leap(year) else 365
            if remaining < days_in_year:
                break
            remaining -= days_in_year
            year += 1
        for month, days in enumerate(_month_days(year), start=1):
            if remaining < days:
                return year, month, remaining + 1
            remaining -= days
        raise AssertionError("unreachable")

    def label(self) -> str:
        """Human-readable ``05-Mar-2013`` form."""
        year, month, day = self._ymd()
        return f"{day:02d}-{_MONTH_NAMES[month - 1]}-{year}"

    def iso(self) -> str:
        """ISO-8601 ``YYYY-MM-DD`` form."""
        year, month, day = self._ymd()
        return f"{year:04d}-{month:02d}-{day:02d}"


def _is_leap(year: int) -> bool:
    return year % 4 == 0 and (year % 100 != 0 or year % 400 == 0)


def _month_days(year: int) -> tuple[int, ...]:
    if _is_leap(year):
        return _MONTH_DAYS[:1] + (29,) + _MONTH_DAYS[2:]
    return _MONTH_DAYS


class VirtualClock:
    """Monotonic virtual time in seconds since the simulation epoch."""

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ValueError("clock cannot start before the epoch")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time (seconds since epoch)."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative deltas are rejected."""
        if seconds < 0:
            raise ValueError("time cannot go backwards")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time not before now."""
        if timestamp < self._now:
            raise ValueError("time cannot go backwards")
        self._now = float(timestamp)
        return self._now

    @property
    def date(self) -> SimDate:
        """Calendar date of the current instant."""
        return SimDate(int(self._now // SECONDS_PER_DAY))

    def seconds_into_day(self) -> float:
        """Seconds elapsed since the current day's midnight."""
        return self._now % SECONDS_PER_DAY

    def days(self, count: int, *, start_day: int | None = None) -> Iterator[SimDate]:
        """Iterate ``count`` consecutive dates starting today (or start_day)."""
        first = self.date.day_index if start_day is None else start_day
        for index in range(first, first + count):
            yield SimDate(index)
