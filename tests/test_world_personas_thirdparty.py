"""World builder, persona, and third-party configuration tests."""

from __future__ import annotations

import pytest

from repro.ecommerce.personas import AFFLUENT, BUDGET, login, train_persona
from repro.ecommerce.thirdparty import TRACKER_CENSUS, trackers_for_retailer
from repro.ecommerce.world import (
    NAMED_RETAILER_SPECS,
    WorldConfig,
    build_world,
    geo_table,
)
from repro.net.geoip import GeoLocation
from repro.net.useragent import profile_for
from repro.net.vantage import VantagePoint


class TestWorldBuild:
    def test_all_named_retailers_present(self, tiny_world):
        domains = {spec.domain for spec in NAMED_RETAILER_SPECS}
        assert domains <= set(tiny_world.retailers)

    def test_crawled_set_is_21(self, tiny_world):
        assert len(tiny_world.crawled_domains) == 21
        paper_21 = {
            "store.killah.com", "store.refrigiwear.it",
            "www.bookdepository.co.uk", "www.digitalrev.com",
            "www.energie.it", "www.guess.eu", "www.mauijim.com",
            "www.misssixty.com", "www.net-a-porter.com",
            "www.tuscanyleather.it", "store.murphynye.com",
            "www.elnaturalista.com", "www.chainreactioncycles.com",
            "www.luisaviaroma.com", "www.scitec-nutrition.es",
            "www.hotels.com", "www.kobobooks.com", "www.amazon.com",
            "www.homedepot.com", "www.autotrader.com", "www.rightstart.com",
        }
        assert set(tiny_world.crawled_domains) == paper_21

    def test_long_tail_registered(self, tiny_world):
        for domain in tiny_world.long_tail:
            assert domain in tiny_world.retailers
            assert tiny_world.network.resolve(domain) is not None

    def test_dns_resolves_all_shops(self, tiny_world):
        for domain in list(tiny_world.retailers)[:30]:
            assert tiny_world.network.resolve(domain)

    def test_persona_sites_registered(self, tiny_world):
        for persona in (AFFLUENT, BUDGET):
            for domain in persona.training_sites:
                assert tiny_world.network.resolve(domain)

    def test_fourteen_vantage_points(self, tiny_world):
        assert len(tiny_world.vantage_points) == 14

    def test_amazon_sells_kindle_ebooks(self, tiny_world):
        amazon = tiny_world.retailer("www.amazon.com")
        assert amazon.supports_login
        ebooks = [p for p in amazon.catalog if p.category == "ebooks"]
        assert ebooks

    def test_crowd_weights_cover_all_shops(self, tiny_world):
        weights = tiny_world.crowd_weights()
        assert set(weights) == set(tiny_world.retailers)
        assert weights["www.amazon.com"] > weights["www.digitalrev.com"]

    def test_catalog_scale_shrinks(self):
        small = build_world(WorldConfig(catalog_scale=0.1, long_tail_domains=0))
        big_size = dict(
            (spec.domain, spec.catalog_size) for spec in NAMED_RETAILER_SPECS
        )
        for domain, retailer in small.retailers.items():
            assert len(retailer.catalog) <= max(14, big_size.get(domain, 0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorldConfig(catalog_scale=0.0)
        with pytest.raises(ValueError):
            WorldConfig(long_tail_domains=-1)

    def test_geo_table_shorthand(self):
        table = geo_table(us=1.0, eu=1.1, fi=1.3, uk=1.05, br=1.02)
        assert table["US"] == 1.0
        assert table["DE"] == 1.1
        assert table["ES"] == 1.1
        assert table["FI"] == 1.3
        assert table["GB"] == 1.05
        assert table["*"] == 1.1  # default follows eu

    def test_deterministic_build(self):
        a = build_world(WorldConfig(catalog_scale=0.1, long_tail_domains=5))
        b = build_world(WorldConfig(catalog_scale=0.1, long_tail_domains=5))
        assert list(a.retailers) == list(b.retailers)
        pa = a.retailer("www.amazon.com").catalog.products[0]
        pb = b.retailer("www.amazon.com").catalog.products[0]
        assert (pa.sku, pa.base_price_usd) == (pb.sku, pb.base_price_usd)


class TestTrackers:
    def test_census_matches_paper(self):
        by_name = {t.name: t.adoption for t in TRACKER_CENSUS}
        assert by_name == {
            "Google Analytics": 0.95, "DoubleClick": 0.65,
            "Facebook": 0.80, "Pinterest": 0.45, "Twitter": 0.40,
        }

    def test_assignment_deterministic(self):
        assert trackers_for_retailer("x.example", seed=1) == trackers_for_retailer(
            "x.example", seed=1
        )

    def test_population_frequencies_converge(self):
        domains = [f"shop{i}.example" for i in range(400)]
        counts = {t.name: 0 for t in TRACKER_CENSUS}
        for domain in domains:
            for tracker in trackers_for_retailer(domain, seed=7):
                counts[tracker.name] += 1
        for tracker in TRACKER_CENSUS:
            rate = counts[tracker.name] / len(domains)
            assert abs(rate - tracker.adoption) < 0.08


class TestPersonas:
    def _client(self, world, name: str) -> VantagePoint:
        return VantagePoint(
            name=name,
            location=GeoLocation("ES", "Spain", "Barcelona"),
            ip=world.plan.allocate("ES", "Barcelona"),
            profile=profile_for("firefox", "linux"),
        )

    def test_training_sets_interest_cookie(self, fresh_world):
        client = self._client(fresh_world, "trainee")
        pages = train_persona(client, AFFLUENT, fresh_world.network, rounds=2)
        assert pages == 6
        for domain in AFFLUENT.training_sites:
            assert client.jar.get(domain, "interest") == "luxury"
            assert client.jar.get(domain, "visits") == "2"

    def test_login_and_logout(self, fresh_world):
        from repro.ecommerce.personas import logout

        client = self._client(fresh_world, "buyer")
        login(client, fresh_world.network, "www.amazon.com", "alice")
        assert client.jar.get("www.amazon.com", "auth") == "alice"
        logout(client, "www.amazon.com")
        assert client.jar.get("www.amazon.com", "auth") is None

    def test_login_fails_on_loginless_shop(self, fresh_world):
        client = self._client(fresh_world, "buyer")
        with pytest.raises(RuntimeError):
            login(client, fresh_world.network, "www.digitalrev.com", "alice")
