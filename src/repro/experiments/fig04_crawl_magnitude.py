"""Fig. 4: magnitude of price variability per crawled domain."""

from __future__ import annotations

from repro.analysis.ratios import domain_ratio_stats
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext

#: Paper's Fig. 4, left (smallest magnitude) to right (largest).
PAPER_ORDER = (
    "www.chainreactioncycles.com",
    "www.scitec-nutrition.es",
    "www.elnaturalista.com",
    "www.net-a-porter.com",
    "www.homedepot.com",
    "www.bookdepository.co.uk",
    "store.murphynye.com",
    "www.hotels.com",
    "www.energie.it",
    "www.kobobooks.com",
    "www.misssixty.com",
    "www.guess.eu",
    "www.digitalrev.com",
    "www.rightstart.com",
    "www.amazon.com",
    "www.mauijim.com",
    "www.autotrader.com",
    "store.killah.com",
    "store.refrigiwear.it",
    "www.tuscanyleather.it",
    "www.luisaviaroma.com",
)


def _rank_agreement(measured_order: list[str], paper_order: tuple[str, ...]) -> float:
    """Spearman rank correlation between the two domain orderings."""
    common = [d for d in paper_order if d in measured_order]
    if len(common) < 3:
        return 0.0
    paper_rank = {d: i for i, d in enumerate(common)}
    measured_rank = {d: i for i, d in enumerate(d for d in measured_order if d in paper_rank)}
    n = len(common)
    d_sq = sum((paper_rank[d] - measured_rank[d]) ** 2 for d in common)
    return 1.0 - (6.0 * d_sq) / (n * (n * n - 1))


def run(ctx: ExperimentContext) -> FigureResult:
    """Regenerate Fig. 4 from the crawl."""
    result = FigureResult(
        figure_id="FIG4",
        title="Magnitude of price variability per domain (crawled)",
        paper_claim=(
            "values between 10% and 30% for most retailers; "
            "luisaviaroma the widest (towards x2), chainreaction the smallest"
        ),
        columns=("domain", "n", "median", "q25", "q75", "max"),
    )
    stats = domain_ratio_stats(ctx.crawl_clean.kept, only_variation=True)
    measured_order = sorted(stats, key=lambda d: stats[d].median)
    for domain in measured_order:
        s = stats[domain]
        result.add_row(domain, s.n, s.median, s.q25, s.q75, s.maximum)

    medians = {d: s.median for d, s in stats.items()}
    in_band = [d for d, m in medians.items() if 1.08 <= m <= 1.35]
    result.check(
        "most retailers in the 10%-30%-ish band",
        len(in_band) >= 0.6 * len(medians),
    )
    rho = _rank_agreement(measured_order, PAPER_ORDER)
    result.check("rank correlation with paper ordering > 0.8", rho > 0.8)
    result.notes.append(f"Spearman rank agreement with paper: {rho:.3f}")
    if medians:
        widest = max(medians, key=medians.get)
        result.check(
            "luisaviaroma widest", widest == "www.luisaviaroma.com"
        )
        smallest = min(medians, key=medians.get)
        result.check(
            "chainreactioncycles smallest",
            smallest == "www.chainreactioncycles.com",
        )
    return result
