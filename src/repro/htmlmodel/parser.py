"""HTML tokenizer and tree builder.

A pragmatic, from-scratch parser covering the HTML our simulated retailers
emit plus the mess real-world templates tend to contain:

* start/end tags, attributes (quoted, unquoted, bare),
* void elements (``<br>``, ``<img>`` ...) and XML-style self-closing tags,
* comments and doctype declarations (skipped),
* raw-text elements (``<script>``, ``<style>``) whose content is kept verbatim,
* character/entity references (``&amp;`` ... ``&#8364;`` ... ``&#xA3;``),
* implied closing of unclosed ``<p>`` and ``<li>`` and recovery from stray
  end tags, so a slightly broken page still yields a usable tree rather than
  an exception (crowd-sourced pages are not schema-validated).

The interface is a single function :func:`parse_html` returning a
:class:`~repro.htmlmodel.dom.Document`, plus :func:`parse_html_cached` --
a content-hash-keyed LRU in front of it for callers that repeatedly parse
identical strings (crowd uploads, :class:`~repro.core.store.PageStore`
replays, promo-free renders).  Cached documents are shared between callers
and must be treated as read-only.
"""

from __future__ import annotations

import hashlib
import re
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.htmlmodel.dom import Document, Element, Text

__all__ = [
    "parse_html",
    "parse_html_cached",
    "parse_cache_stats",
    "reset_parse_cache",
    "HTMLParseError",
    "decode_entities",
]


class HTMLParseError(ValueError):
    """Raised for inputs so malformed no recovery is possible."""


#: Elements that never have children and need no end tag.
VOID_ELEMENTS = frozenset(
    {
        "area", "base", "br", "col", "embed", "hr", "img", "input",
        "link", "meta", "param", "source", "track", "wbr",
    }
)

#: Elements whose raw text content is not tokenized further.
RAW_TEXT_ELEMENTS = frozenset({"script", "style"})

#: ``open -> openers that implicitly close it``: seeing a new <li> closes a
#: currently open <li>; block starts close an open <p>.
_IMPLIED_CLOSERS = {
    "li": frozenset({"li"}),
    "p": frozenset({"p", "div", "table", "ul", "ol", "section", "article",
                    "header", "footer", "h1", "h2", "h3", "h4", "h5", "h6"}),
    "option": frozenset({"option"}),
    "tr": frozenset({"tr"}),
    "td": frozenset({"td", "th", "tr"}),
    "th": frozenset({"td", "th", "tr"}),
}

_NAMED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
    "nbsp": " ",
    "euro": "€",
    "pound": "£",
    "yen": "¥",
    "cent": "¢",
    "copy": "©",
    "reg": "®",
    "trade": "™",
    "mdash": "—",
    "ndash": "–",
    "hellip": "…",
    "laquo": "«",
    "raquo": "»",
    "times": "×",
    "middot": "·",
    "bull": "•",
}

_ENTITY_RE = re.compile(r"&(#x?[0-9a-fA-F]+|[a-zA-Z][a-zA-Z0-9]*);")


def decode_entities(text: str) -> str:
    """Replace character references with the characters they denote.

    Unknown named entities are left intact (browser-like leniency).
    """
    if "&" not in text:
        return text

    def _sub(match: re.Match[str]) -> str:
        body = match.group(1)
        if body.startswith("#"):
            try:
                if body[1:2] in ("x", "X"):
                    code = int(body[2:], 16)
                else:
                    code = int(body[1:], 10)
            except ValueError:
                return match.group(0)
            if 0 < code <= 0x10FFFF:
                return chr(code)
            return match.group(0)
        return _NAMED_ENTITIES.get(body, _NAMED_ENTITIES.get(body.lower(), match.group(0)))

    return _ENTITY_RE.sub(_sub, text)


# ----------------------------------------------------------------------
# Tokenizer
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _StartTag:
    name: str
    attrs: dict[str, str]
    self_closing: bool


@dataclass(frozen=True)
class _EndTag:
    name: str


@dataclass(frozen=True)
class _TextToken:
    data: str


_Token = _StartTag | _EndTag | _TextToken

_TAG_NAME_RE = re.compile(r"[a-zA-Z][a-zA-Z0-9:-]*")
_ATTR_RE = re.compile(
    r"""\s*([^\s=/>"']+)               # attribute name
        (?:\s*=\s*
            (?:"([^"]*)"               # double-quoted value
              |'([^']*)'               # single-quoted value
              |([^\s>]*)               # unquoted value
            )
        )?""",
    re.VERBOSE,
)


class _Tokenizer:
    """Streaming tokenizer over an HTML string."""

    def __init__(self, html: str) -> None:
        self.html = html
        self.pos = 0
        self.length = len(html)

    def tokens(self) -> Iterator[_Token]:
        while self.pos < self.length:
            lt = self.html.find("<", self.pos)
            if lt == -1:
                yield _TextToken(self.html[self.pos :])
                self.pos = self.length
                return
            if lt > self.pos:
                yield _TextToken(self.html[self.pos : lt])
                self.pos = lt
            token = self._consume_markup()
            if token is not None:
                yield token
                # Raw-text elements swallow everything up to their end tag.
                if isinstance(token, _StartTag) and not token.self_closing \
                        and token.name in RAW_TEXT_ELEMENTS:
                    raw, end = self._consume_raw_text(token.name)
                    if raw:
                        yield _TextToken(raw)
                    if end is not None:
                        yield end

    # ------------------------------------------------------------------
    def _consume_markup(self) -> Optional[_Token]:
        html, pos = self.html, self.pos
        if html.startswith("<!--", pos):
            end = html.find("-->", pos + 4)
            self.pos = self.length if end == -1 else end + 3
            return None
        if html.startswith("<!", pos) or html.startswith("<?", pos):
            end = html.find(">", pos)
            self.pos = self.length if end == -1 else end + 1
            return None
        if html.startswith("</", pos):
            match = _TAG_NAME_RE.match(html, pos + 2)
            if match is None:
                # "</ junk>" -- treat as text, browser-style.
                self.pos = pos + 2
                return _TextToken("</")
            end = html.find(">", match.end())
            self.pos = self.length if end == -1 else end + 1
            return _EndTag(match.group(0).lower())
        match = _TAG_NAME_RE.match(html, pos + 1)
        if match is None:
            # A bare "<" that opens no tag: literal text.
            self.pos = pos + 1
            return _TextToken("<")
        name = match.group(0).lower()
        attrs, tag_end, self_closing = self._consume_attrs(match.end())
        self.pos = tag_end
        return _StartTag(name, attrs, self_closing)

    def _consume_attrs(self, pos: int) -> tuple[dict[str, str], int, bool]:
        html = self.html
        length = self.length
        attrs: dict[str, str] = {}
        while pos < length:
            # Skip whitespace once, then decide: end of tag or attribute.
            while pos < length and html[pos] in " \t\r\n":
                pos += 1
            if pos >= length:
                break
            char = html[pos]
            if char == ">":
                return attrs, pos + 1, False
            if char == "/" and html.startswith("/>", pos):
                return attrs, pos + 2, True
            match = _ATTR_RE.match(html, pos)
            if match is None or match.end() == pos:
                pos += 1  # skip junk character
                continue
            name = match.group(1).lower()
            value = match.group(2)
            if value is None:
                value = match.group(3)
            if value is None:
                value = match.group(4)
            if value is None:
                value = ""
            if name not in attrs:
                attrs[name] = decode_entities(value)
            pos = match.end()
        return attrs, length, False

    def _consume_raw_text(self, tag: str) -> tuple[str, Optional[_EndTag]]:
        close = f"</{tag}"
        lowered = self.html.lower()
        idx = lowered.find(close, self.pos)
        if idx == -1:
            raw = self.html[self.pos :]
            self.pos = self.length
            return raw, _EndTag(tag)
        raw = self.html[self.pos : idx]
        gt = self.html.find(">", idx)
        self.pos = self.length if gt == -1 else gt + 1
        return raw, _EndTag(tag)


# ----------------------------------------------------------------------
# Tree builder
# ----------------------------------------------------------------------
def parse_html(html: str) -> Document:
    """Parse ``html`` into a :class:`Document`.

    Recovery rules (mirroring browser behaviour closely enough for our
    pages): unknown end tags are dropped; an end tag for a non-innermost
    open element closes every element in between; unclosed elements are
    closed at end of input.
    """
    if not isinstance(html, str):
        raise HTMLParseError(f"expected str, got {type(html).__name__}")
    document = Document()
    stack: list[Element] = []

    def current() -> Document | Element:
        return stack[-1] if stack else document

    for token in _Tokenizer(html).tokens():
        if isinstance(token, _TextToken):
            if not token.data:
                continue
            parent = current()
            if stack and stack[-1].tag in RAW_TEXT_ELEMENTS:
                parent.append(Text(token.data))
            else:
                parent.append(Text(decode_entities(token.data)))
        elif isinstance(token, _StartTag):
            # Implied closes: a new <li> terminates an open <li>, etc.
            while stack:
                openers = _IMPLIED_CLOSERS.get(stack[-1].tag)
                if openers is not None and token.name in openers:
                    stack.pop()
                else:
                    break
            element = Element(token.name, token.attrs)
            current().append(element)
            if not token.self_closing and token.name not in VOID_ELEMENTS:
                stack.append(element)
        else:  # _EndTag
            name = token.name
            if name in VOID_ELEMENTS:
                continue
            for i in range(len(stack) - 1, -1, -1):
                if stack[i].tag == name:
                    del stack[i:]
                    break
            # else: stray end tag, dropped.
    return document


# ----------------------------------------------------------------------
# Content-hash-keyed parse cache
# ----------------------------------------------------------------------
@dataclass
class _ParseCacheStats:
    """Hit/miss counters for :func:`parse_html_cached`."""

    hits: int = 0
    misses: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": round(self.hit_rate, 4),
        }


#: Maximum number of parsed documents retained (least recently used evicted).
PARSE_CACHE_MAX = 512

_parse_cache: "OrderedDict[bytes, Document]" = OrderedDict()
_parse_stats = _ParseCacheStats()


def _content_key(html: str) -> bytes:
    return hashlib.blake2b(
        html.encode("utf-8", "surrogatepass"), digest_size=16
    ).digest()


def parse_html_cached(html: str) -> Document:
    """Parse ``html``, reusing the tree of an earlier identical string.

    Keys the LRU by a 128-bit content hash, so two distinct string objects
    with equal content (a crowd upload and a store replay, say) share one
    parsed :class:`Document`.  The returned tree is shared between all
    callers with equal input -- treat it as read-only.  Callers that need a
    private, mutable tree must use :func:`parse_html` directly.
    """
    key = _content_key(html)
    cached = _parse_cache.get(key)
    if cached is not None:
        _parse_stats.hits += 1
        _parse_cache.move_to_end(key)
        return cached
    _parse_stats.misses += 1
    document = parse_html(html)
    _parse_cache[key] = document
    while len(_parse_cache) > PARSE_CACHE_MAX:
        _parse_cache.popitem(last=False)
    return document


def parse_cache_stats() -> dict[str, float]:
    """Current hit/miss counters of the shared parse cache."""
    stats = _parse_stats.snapshot()
    stats["entries"] = len(_parse_cache)
    return stats


def reset_parse_cache() -> None:
    """Drop every cached document and zero the counters (test isolation)."""
    _parse_cache.clear()
    _parse_stats.hits = 0
    _parse_stats.misses = 0
