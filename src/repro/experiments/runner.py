"""Run every figure experiment and render the paper-vs-measured report.

Usage::

    python -m repro.experiments.runner             # quick scale
    REPRO_SCALE=paper python -m repro.experiments.runner

The report text is what EXPERIMENTS.md records.
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Optional

from repro.experiments import (
    fig01_crowd_domains,
    fig02_crowd_magnitude,
    fig03_crawl_extent,
    fig04_crawl_magnitude,
    fig05_ratio_vs_price,
    fig06_pricing_structure,
    fig07_locations,
    fig08_pairwise_grids,
    fig09_finland,
    fig10_login,
    tab_attribution,
    tab_datasets,
    tab_thirdparty,
)
from repro.experiments.base import FigureResult
from repro.experiments.context import ExperimentContext, get_context

__all__ = ["ALL_EXPERIMENTS", "run_all", "render_report"]

ALL_EXPERIMENTS: tuple[tuple[str, Callable[[ExperimentContext], FigureResult]], ...] = (
    ("fig01", fig01_crowd_domains.run),
    ("fig02", fig02_crowd_magnitude.run),
    ("fig03", fig03_crawl_extent.run),
    ("fig04", fig04_crawl_magnitude.run),
    ("fig05", fig05_ratio_vs_price.run),
    ("fig06", fig06_pricing_structure.run),
    ("fig07", fig07_locations.run),
    ("fig08", fig08_pairwise_grids.run),
    ("fig09", fig09_finland.run),
    ("fig10", fig10_login.run),
    ("tab_datasets", tab_datasets.run),
    ("tab_thirdparty", tab_thirdparty.run),
    ("tab_attribution", tab_attribution.run),
)


def run_all(ctx: Optional[ExperimentContext] = None) -> list[FigureResult]:
    """Execute every experiment against one shared context."""
    ctx = ctx or get_context()
    return [run(ctx) for _, run in ALL_EXPERIMENTS]


def render_report(results: list[FigureResult], *, scale: str = "quick") -> str:
    """Assemble the full paper-vs-measured report text."""
    lines = [
        "Reproduction report: Crowd-assisted Search for Price Discrimination",
        f"scale: {scale}",
        "",
    ]
    for result in results:
        lines.append(result.format_text())
        lines.append("")
    passed = sum(1 for r in results for ok in r.checks.values() if ok)
    total = sum(len(r.checks) for r in results)
    lines.append(f"shape checks: {passed}/{total} passed")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point: run everything at the requested scale and print."""
    argv = argv if argv is not None else sys.argv[1:]
    scale = argv[0] if argv else None
    ctx = get_context(scale)
    started = time.perf_counter()
    results = run_all(ctx)
    report = render_report(results, scale=ctx.scale.name)
    print(report)
    print(f"(wall time: {time.perf_counter() - started:.1f}s)")
    return 0 if all(r.all_checks_pass for r in results) else 1


if __name__ == "__main__":
    raise SystemExit(main())
