"""Why the conservative currency guard matters (paper §2.2).

An honest shop that merely *localizes* currency looks like a price
discriminator to a naive analysis: each vantage point sees a different
currency, conversion back to USD wobbles with the daily rate spread, and
phantom "variation" appears.  The paper's guard keeps only variation that
strictly exceeds the largest gap pure currency translation could produce.

This demo measures one honest long-tail shop and one real discriminator,
and shows the naive verdicts vs the guarded verdicts.

Run:  python examples/currency_guard_demo.py
"""

from __future__ import annotations

from repro.analysis import clean_reports
from repro.analysis.personal import derive_anchor_for_domain
from repro.core import SheriffBackend
from repro.core.backend import CheckRequest
from repro.ecommerce import WorldConfig, build_world


def check_shop(world, backend, domain: str, n_products: int = 6):
    anchor = derive_anchor_for_domain(world, domain)
    reports = []
    for product in world.retailer(domain).catalog.products[:n_products]:
        reports.append(backend.check(
            CheckRequest(url=f"http://{domain}{product.path}", anchor=anchor)
        ))
    return reports


def main() -> None:
    world = build_world(WorldConfig(catalog_scale=0.25, long_tail_domains=10))
    backend = SheriffBackend(world.network, world.vantage_points, world.rates)

    # Pick an honest shop that localizes display currency -- the ones that
    # price in plain USD everywhere cannot confuse anyone.
    honest = next(
        domain for domain in world.long_tail
        if world.retailer(domain).localizes_currency
    )
    discriminator = "www.digitalrev.com"
    print(f"honest shop        : {honest} (uniform USD pricing, localized display)")
    print(f"discriminating shop: {discriminator} (multiplicative geo pricing)\n")

    reports = check_shop(world, backend, honest) + check_shop(
        world, backend, discriminator
    )
    clean = clean_reports(reports, world.rates)
    print(f"dataset-wide currency guard: x{clean.guard:.4f}\n")

    print(f"{'url':55s} {'ratio':>8s} {'naive':>8s} {'guarded':>8s}")
    naive_fp = guarded_fp = 0
    for report in clean.kept:
        ratio = report.ratio or 1.0
        naive = ratio > 1.0 + 1e-9
        guarded = report.has_variation
        if report.domain == honest:
            naive_fp += naive
            guarded_fp += guarded
        print(
            f"{report.url:55s} x{ratio:7.4f} "
            f"{'FLAG' if naive else '-':>8s} {'FLAG' if guarded else '-':>8s}"
        )

    print(
        f"\nfalse positives on the honest shop: naive={naive_fp}, "
        f"guarded={guarded_fp}"
    )
    print("the guard absorbs conversion wobble while the real discriminator's "
          "10-30% gaps sail past it.")


if __name__ == "__main__":
    main()
