"""URL parsing/joining tests, including property-based round-trips."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.urls import URL, URLError, encode_query, parse_query, urljoin


class TestParse:
    def test_minimal(self):
        url = URL.parse("http://example.com")
        assert url.scheme == "http"
        assert url.host == "example.com"
        assert url.path == "/"
        assert url.query == ()
        assert url.port is None

    def test_full(self):
        url = URL.parse("https://shop.example.com:8443/p/SKU.html?a=1&b=two#frag")
        assert url.scheme == "https"
        assert url.host == "shop.example.com"
        assert url.port == 8443
        assert url.path == "/p/SKU.html"
        assert url.query == (("a", "1"), ("b", "two"))
        assert url.fragment == "frag"

    def test_host_case_folded(self):
        assert URL.parse("http://WWW.Amazon.COM/x").host == "www.amazon.com"

    def test_path_dot_segments_normalized(self):
        assert URL.parse("http://h/a/b/../c/./d").path == "/a/c/d"

    def test_percent_decoding(self):
        url = URL.parse("http://h/caf%C3%A9?q=a%20b")
        assert url.path == "/café"
        assert url.query_param("q") == "a b"

    def test_plus_in_query_is_space(self):
        assert URL.parse("http://h/?q=a+b").query_param("q") == "a b"

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "example.com/x", "http:", "http:/x", "http://",
         "http://host:99999/", "//nohost"],
    )
    def test_rejects(self, bad):
        with pytest.raises(URLError):
            URL.parse(bad)


class TestProperties:
    def test_effective_port_defaults(self):
        assert URL.parse("http://h/").effective_port == 80
        assert URL.parse("https://h/").effective_port == 443
        assert URL.parse("http://h:81/").effective_port == 81

    def test_origin_elides_default_port(self):
        assert URL.parse("http://h:80/x").origin == "http://h"
        assert URL.parse("http://h:81/x").origin == "http://h:81"

    def test_query_param_first_wins(self):
        url = URL.parse("http://h/?a=1&a=2")
        assert url.query_param("a") == "1"
        assert url.query_param("zz") is None
        assert url.query_param("zz", "d") == "d"

    def test_with_query_replaces(self):
        url = URL.parse("http://h/?a=1&b=2").with_query(a="9", c="3")
        assert url.query_param("a") == "9"
        assert url.query_param("b") == "2"
        assert url.query_param("c") == "3"

    def test_canonical(self):
        url = URL.parse("http://h:80/x?a=1#f").canonical()
        assert url.fragment == ""
        assert url.port is None

    def test_str_roundtrip(self):
        for text in (
            "http://example.com/",
            "http://example.com/p/X.html?sku=A1&c=2",
            "https://h:8443/deep/path",
        ):
            assert str(URL.parse(text)) == text


class TestUrljoin:
    BASE = "http://shop.example.com/cat/items/page.html?x=1"

    @pytest.mark.parametrize(
        "ref,expected",
        [
            ("http://other.com/a", "http://other.com/a"),
            ("//cdn.example.com/lib.js", "http://cdn.example.com/lib.js"),
            ("/product/SKU1", "http://shop.example.com/product/SKU1"),
            ("other.html", "http://shop.example.com/cat/items/other.html"),
            ("../up.html", "http://shop.example.com/cat/up.html"),
            ("?y=2", "http://shop.example.com/cat/items/page.html?y=2"),
            ("#frag", "http://shop.example.com/cat/items/page.html?x=1#frag"),
            ("", "http://shop.example.com/cat/items/page.html?x=1"),
        ],
    )
    def test_join(self, ref, expected):
        assert str(urljoin(self.BASE, ref)) == expected

    def test_join_accepts_url_object(self):
        base = URL.parse(self.BASE)
        assert urljoin(base, "/a").path == "/a"


class TestQueryCodec:
    def test_parse_empty(self):
        assert parse_query("") == []

    def test_parse_valueless(self):
        assert parse_query("a&b=1") == [("a", ""), ("b", "1")]

    def test_encode_escapes(self):
        assert encode_query([("a b", "c&d")]) == "a%20b=c%26d"

    @given(
        st.lists(
            st.tuples(
                st.text(min_size=1, max_size=8),
                st.text(max_size=8),
            ),
            max_size=5,
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_query_roundtrip(self, pairs):
        assert parse_query(encode_query(pairs)) == [
            (k, v) for k, v in pairs
        ]


_HOST = st.from_regex(r"[a-z][a-z0-9]{0,10}(\.[a-z]{2,5}){1,2}", fullmatch=True)
_PATH_SEG = st.from_regex(r"[a-zA-Z0-9_-]{1,8}", fullmatch=True)


@given(
    host=_HOST,
    segments=st.lists(_PATH_SEG, max_size=4),
    query=st.lists(st.tuples(_PATH_SEG, _PATH_SEG), max_size=3),
)
@settings(max_examples=80, deadline=None)
def test_url_parse_str_roundtrip(host, segments, query):
    """parse(str(u)) == u for URLs built from clean components."""
    url = URL(
        scheme="http",
        host=host,
        path="/" + "/".join(segments),
        query=tuple(query),
    )
    assert URL.parse(str(url)) == url
