"""docs/API.md cannot rot: every documented symbol and CLI flag exists.

The doc's ``| Symbol | Defined in |`` tables and the CLI
``| Subcommand | Flags |`` table are parsed and resolved against the
live code -- a rename, removal, or signature move that forgets to update
the docs fails here (``make docs-check`` runs exactly this module).
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

API_MD = Path(__file__).resolve().parent.parent / "docs" / "API.md"

_ROW = re.compile(r"^\|\s*`([^`]+)`\s*\|(.+)\|\s*$")


def _table_rows(header_left: str) -> list[tuple[str, str]]:
    """(left, right) cells of every row in tables with this left header.

    The left cell must be one backticked token; the right cell is taken
    raw (CLI rows hold several backticked flags).
    """
    rows: list[tuple[str, str]] = []
    collecting = False
    for line in API_MD.read_text(encoding="utf-8").splitlines():
        stripped = line.strip()
        if stripped.startswith(f"| {header_left} |"):
            collecting = True
            continue
        if collecting:
            if stripped.startswith("|---") or stripped.startswith("| ---"):
                continue
            match = _ROW.match(stripped)
            if match:
                rows.append((match.group(1), match.group(2).strip().strip("`")))
            else:
                collecting = False
    return rows


SYMBOL_ROWS = _table_rows("Symbol")
CLI_ROWS = _table_rows("Subcommand")


def test_tables_were_found():
    """Guard the guard: if the doc's table format changes, fail loudly
    rather than silently checking nothing."""
    assert len(SYMBOL_ROWS) >= 30, f"only {len(SYMBOL_ROWS)} symbol rows parsed"
    assert len(CLI_ROWS) == 6, f"{len(CLI_ROWS)} CLI rows parsed"


@pytest.mark.parametrize("symbol,module_name",
                         SYMBOL_ROWS, ids=[s for s, _ in SYMBOL_ROWS])
def test_documented_symbol_exists(symbol, module_name):
    module = importlib.import_module(module_name)
    target = module
    for part in symbol.split("."):
        assert hasattr(target, part), (
            f"docs/API.md documents {symbol!r} in {module_name}, "
            f"but {type(target).__name__} {getattr(target, '__name__', target)!r} "
            f"has no attribute {part!r}"
        )
        target = getattr(target, part)


def _subparser_map():
    from repro.cli import build_parser

    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        return dict(action.choices)
    raise AssertionError("CLI parser has no subcommands")


@pytest.mark.parametrize("subcommand,flags_cell",
                         CLI_ROWS, ids=[s for s, _ in CLI_ROWS])
def test_documented_cli_flags_exist(subcommand, flags_cell):
    subparsers = _subparser_map()
    assert subcommand in subparsers, (
        f"docs/API.md documents subcommand {subcommand!r}, "
        f"but the CLI only has {sorted(subparsers)}"
    )
    available = set(subparsers[subcommand]._option_string_actions)  # noqa: SLF001
    documented = re.findall(r"--[a-z-]+", flags_cell)
    assert documented, f"no flags parsed from row for {subcommand!r}"
    missing = [flag for flag in documented if flag not in available]
    assert not missing, (
        f"docs/API.md documents {missing} for {subcommand!r}, "
        f"but the parser only accepts {sorted(available)}"
    )


def test_every_subcommand_is_documented():
    documented = {subcommand for subcommand, _ in CLI_ROWS}
    assert documented == set(_subparser_map()), (
        "CLI subcommands and docs/API.md disagree"
    )
