"""SIGKILL crash matrix: kill a checkpointed run, resume, compare bytes.

Every test here goes through ``tests/crashkit.py``: the run executes in a
subprocess that self-SIGKILLs at the Nth firing of a named checkpoint
barrier, then a second subprocess resumes from whatever the kill left on
disk.  Byte identity is asserted on the saved columnar dataset *and* the
archive hash chain (chain equality == the page-archive stream matched).

Tiers:

* the smoke test (fast tier, runs on every push) is one cell and one
  kill point;
* the grids (slow tier) sweep executor x memo x kill point, resuming
  under a *different* cell than the one that died -- the checkpoint
  fingerprint deliberately excludes both knobs, and bytes must not care;
* the large-campaign test (slow tier) checkpoints a
  ``CRASHKIT_CHECKS``-check campaign (default 20000; set the env var to
  100000+ for the full acceptance run -- same code path, just longer),
  kills at a day boundary and mid-flush, and bounds the resumed run's
  peak RSS against the uninterrupted run's: folding committed segments
  one at a time must not cost more than (spine + one day-segment).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from tests.crashkit import (
    KILL_POINTS,
    run_to_completion,
    run_until_killed,
)

WORLD = {"catalog_scale": 0.15, "long_tail_domains": 8}
CAMPAIGN = {
    "n_checks": 60, "population_size": 30, "seed": 7,
    "start_day": 0, "end_day": 6,
}
GRID_CAMPAIGN = dict(CAMPAIGN, n_checks=240)
CRAWL = {"days": 3, "start_day": 3}

#: executor x memo cells; resumes rotate through this list so every
#: killed cell is resumed by a *different* one.
CELLS = (
    {"workers": 1, "mode": "local", "memo": True},
    {"workers": 2, "mode": "process", "memo": True},
    {"workers": 1, "mode": "local", "memo": False},
    {"workers": 2, "mode": "process", "memo": False},
)


def _spec(tmp_path: Path, tag: str, **overrides) -> dict:
    spec = {
        "kind": "campaign",
        "world": WORLD,
        "campaign": CAMPAIGN,
        "checkpoint_dir": str(tmp_path / tag / "ckpt"),
        "out": str(tmp_path / tag / "out.jsonl"),
        "result": str(tmp_path / tag / "result.json"),
    }
    spec.update(overrides)
    return spec


def _identical(reference: dict, resumed: dict, context: str) -> None:
    assert resumed["out_sha256"] == reference["out_sha256"], (
        f"{context}: resumed dataset bytes differ"
    )
    assert resumed["archive_chain"] == reference["archive_chain"], (
        f"{context}: archive hash chain diverged"
    )
    assert resumed["rows"] == reference["rows"]


class TestKillResumeSmoke:
    """One cell, one kill point -- the fast-tier push gate."""

    def test_sigkill_mid_manifest_write_resumes_byte_identical(
        self, tmp_path: Path
    ):
        reference = run_to_completion(_spec(tmp_path, "ref"))
        kill = _spec(
            tmp_path, "kill",
            kill={"point": "manifest-mid-write", "count": 2},
        )
        run_until_killed(kill)
        resumed = run_to_completion(
            _spec(tmp_path, "kill", resume=True)
        )
        _identical(reference, resumed, "manifest-mid-write smoke")


@pytest.mark.slow
class TestCampaignKillResumeGrid:
    """Executor x memo x kill point, with cross-cell resume."""

    def test_every_cell_and_kill_point_resumes_byte_identical(
        self, tmp_path: Path
    ):
        reference = run_to_completion(
            _spec(tmp_path, "ref", campaign=GRID_CAMPAIGN)
        )
        case = 0
        for i, cell in enumerate(CELLS):
            for point in KILL_POINTS:
                tag = f"g{case}"
                resume_cell = CELLS[(i + 1) % len(CELLS)]
                run_until_killed(_spec(
                    tmp_path, tag, campaign=GRID_CAMPAIGN, **cell,
                    kill={"point": point, "count": 3},
                ))
                resumed = run_to_completion(_spec(
                    tmp_path, tag, campaign=GRID_CAMPAIGN, **resume_cell,
                    resume=True,
                ))
                _identical(
                    reference, resumed,
                    f"kill {point} under {cell}, resume under {resume_cell}",
                )
                case += 1


@pytest.mark.slow
class TestMultiWorkerKillInterplay:
    """PR-8 interplay: kill a multi-worker checkpointed day mid-flight,
    resume under a *different* worker count and shard planner.

    Dedicated worker processes, the coordinator-folded shared memo, and
    the delta boundary must leave nothing on disk that a
    differently-sharded resume could read differently -- worker-held
    state (session blobs, memo entries, shipped-page hashes) dies with
    the kill, and the resume regrows all of it from the committed
    prefix.
    """

    def test_cross_width_and_planner_resume_byte_identical(
        self, tmp_path: Path
    ):
        reference = run_to_completion(
            _spec(tmp_path, "ref", campaign=GRID_CAMPAIGN)
        )

        # Kill mid-day under the cost planner at width 2; resume under
        # the stable planner at width 4.
        run_until_killed(_spec(
            tmp_path, "wide", campaign=GRID_CAMPAIGN,
            workers=2, mode="process", planner="cost",
            kill={"point": "mid-day", "count": 4},
        ))
        resumed = run_to_completion(_spec(
            tmp_path, "wide", campaign=GRID_CAMPAIGN,
            workers=4, mode="process", planner="stable", resume=True,
        ))
        _identical(
            reference, resumed,
            "kill workers=2/process/cost, resume workers=4/process/stable",
        )

        # Kill mid-flush under the stable planner at width 4; resume
        # inline (no workers at all).
        run_until_killed(_spec(
            tmp_path, "inline", campaign=GRID_CAMPAIGN,
            workers=4, mode="process", planner="stable",
            kill={"point": "segment-flush", "count": 3},
        ))
        resumed = run_to_completion(_spec(
            tmp_path, "inline", campaign=GRID_CAMPAIGN, resume=True,
        ))
        _identical(
            reference, resumed,
            "kill workers=4/process/stable, resume inline",
        )


@pytest.mark.slow
class TestCrawlKillResumeGrid:
    def test_killed_crawls_resume_byte_identical(self, tmp_path: Path):
        def spec(tag: str, **overrides) -> dict:
            return _spec(
                tmp_path, tag, kind="crawl", crawl=CRAWL,
                plan={"n_domains": 3, "products_per_retailer": 3},
                **overrides,
            )

        reference = run_to_completion(spec("ref"))
        for case, (cell, point) in enumerate(
            (cell, point)
            for cell in (CELLS[0], CELLS[3])
            for point in KILL_POINTS
        ):
            tag = f"c{case}"
            run_until_killed(
                spec(tag, **cell, kill={"point": point, "count": 2})
            )
            resumed = run_to_completion(spec(tag, resume=True))
            _identical(
                reference, resumed, f"crawl kill {point} under {cell}"
            )


@pytest.mark.slow
class TestLargeCampaignResume:
    """Day-boundary and mid-flush kills at scale, with an RSS bound.

    ``CRASHKIT_CHECKS`` scales the campaign (default 20000 keeps the
    slow tier tractable; the acceptance configuration is 100000+ --
    identical code path, more days of the same segments).
    """

    N_CHECKS = int(os.environ.get("CRASHKIT_CHECKS", "20000"))

    def test_large_campaign_kill_resume_and_rss_bound(self, tmp_path: Path):
        campaign = {
            "n_checks": self.N_CHECKS, "population_size": 20, "seed": 11,
            "start_day": 0, "end_day": 7,
        }
        world = {"catalog_scale": 0.2, "long_tail_domains": 0}

        def spec(tag: str, **overrides) -> dict:
            return _spec(
                tmp_path, tag, world=world, campaign=campaign, **overrides
            )

        reference = run_to_completion(spec("ref"), timeout=3600)

        # Kill 1: a seeded day boundary (the manifest line of day 2).
        run_until_killed(
            spec("day", kill={"point": "manifest-mid-write", "count": 2})
        )
        resumed_day = run_to_completion(
            spec("day", resume=True, workers=2, mode="process"),
            timeout=3600,
        )
        _identical(reference, resumed_day, "day-boundary kill")

        # Kill 2: mid-flush, while a segment file is being made durable.
        run_until_killed(
            spec("flush", kill={"point": "segment-flush", "count": 3},
                 workers=2, mode="process")
        )
        resumed_flush = run_to_completion(
            spec("flush", resume=True), timeout=3600
        )
        _identical(reference, resumed_flush, "mid-flush kill")

        # The resumed runs folded committed day-segments one at a time;
        # their peak RSS must stay in the same envelope as the
        # uninterrupted run (spine + one segment), not a multiple of it.
        bound = reference["peak_rss_mb"] * 1.35
        for name, result in (
            ("day-boundary", resumed_day), ("mid-flush", resumed_flush)
        ):
            assert result["peak_rss_mb"] <= bound, (
                f"{name} resume peak RSS {result['peak_rss_mb']}MB exceeds "
                f"{bound:.0f}MB (full run: {reference['peak_rss_mb']}MB) -- "
                f"resume is no longer one-segment bounded"
            )
