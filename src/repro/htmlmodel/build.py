"""Declarative DOM construction helpers for page templates.

Retailer templates build pages as trees rather than string concatenation so
that structure (and therefore selector behaviour) is explicit:

>>> from repro.htmlmodel.build import E, T
>>> page = E("div", {"class": "price-box"},
...          E("span", {"class": "amount"}, T("$19.99")))
>>> page.text()
'$19.99'
"""

from __future__ import annotations

from typing import Optional, Union

from repro.htmlmodel.dom import Document, Element, Node, Text

__all__ = ["E", "T", "document"]

Child = Union[Node, str]


def T(data: str) -> Text:
    """Create a text node."""
    return Text(str(data))


def E(tag: str, attrs: Optional[dict[str, str]] = None, *children: Child) -> Element:
    """Create an element with ``attrs`` and append ``children``.

    String children are wrapped into text nodes for convenience.
    """
    element = Element(tag, attrs)
    attach = element.children.append
    for child in children:
        if isinstance(child, str):
            child = Text(child)
        elif not isinstance(child, Node):
            raise TypeError(f"cannot append {type(child).__name__} to <{tag}>")
        elif child.parent is not None:
            child.parent.remove(child)
        child.parent = element
        attach(child)
    return element


def document(*children: Child) -> Document:
    """Create a document with top-level ``children``."""
    doc = Document()
    for child in children:
        if isinstance(child, str):
            doc.append(Text(child))
        else:
            doc.append(child)
    return doc
