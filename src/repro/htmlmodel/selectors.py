"""CSS-subset selector engine.

Implements the selector grammar $heriff needs for robust price anchors:

* type selectors (``span``), universal (``*``),
* ``#id``, ``.class`` (stackable: ``span.price.current``),
* attribute tests ``[name]``, ``[name=value]``, ``[name^=v]``, ``[name$=v]``,
  ``[name*=v]``, ``[name~=v]``,
* ``:nth-of-type(n)``, ``:first-of-type``, ``:last-of-type``,
  ``:nth-child(n)`` and ``:first-child`` (structural disambiguation),
* descendant (whitespace), child (``>``), adjacent sibling (``+``) and
  general sibling (``~``) combinators,
* comma-separated selector groups.

Matching is right-to-left per compound, as in real engines, but implemented
as a straightforward tree walk -- our pages are a few thousand nodes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Union

from repro.htmlmodel.dom import Document, Element

__all__ = ["Selector", "SelectorError", "select", "select_one", "matches"]


class SelectorError(ValueError):
    """Raised for selector strings the grammar does not accept."""


# ----------------------------------------------------------------------
# Parsed representation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _AttrTest:
    name: str
    op: str  # '', '=', '^=', '$=', '*=', '~='
    value: str = ""

    def match(self, element: Element) -> bool:
        actual = element.get(self.name)
        if actual is None:
            return False
        if self.op == "":
            return True
        if self.op == "=":
            return actual == self.value
        if self.op == "^=":
            return bool(self.value) and actual.startswith(self.value)
        if self.op == "$=":
            return bool(self.value) and actual.endswith(self.value)
        if self.op == "*=":
            return bool(self.value) and self.value in actual
        if self.op == "~=":
            return self.value in actual.split()
        raise SelectorError(f"unknown attribute operator {self.op!r}")


@dataclass(frozen=True)
class _Compound:
    """One compound selector: tag + ids + classes + attrs + pseudo."""

    tag: Optional[str] = None
    ids: tuple[str, ...] = ()
    classes: tuple[str, ...] = ()
    attrs: tuple[_AttrTest, ...] = ()
    nth_of_type: Optional[int] = None  # 1-based
    nth_child: Optional[int] = None  # 1-based, among all element children
    last_of_type: bool = False

    def match(self, element: Element) -> bool:
        # Hot path: this runs for every element of every fetched page, so
        # the common tests use plain loops over (usually empty) tuples
        # rather than generator expressions.
        tag = self.tag
        if tag is not None and tag != "*" and element.tag != tag:
            return False
        if self.ids:
            element_id = element.attrs.get("id")
            for wanted in self.ids:
                if element_id != wanted:
                    return False
        if self.classes:
            classes = element.attrs.get("class", "").split()
            for wanted in self.classes:
                if wanted not in classes:
                    return False
        for test in self.attrs:
            if not test.match(element):
                return False
        if self.nth_of_type is not None and not self._match_nth(element):
            return False
        if self.nth_child is not None and not self._match_nth_child(element):
            return False
        if self.last_of_type and not self._match_last(element):
            return False
        return True

    @staticmethod
    def _siblings_of_type(element: Element) -> list[Element]:
        parent = element.parent
        if parent is None or not hasattr(parent, "child_elements"):
            return [element]
        return [e for e in parent.child_elements() if e.tag == element.tag]

    def _match_nth(self, element: Element) -> bool:
        same_type = self._siblings_of_type(element)
        try:
            return same_type.index(element) + 1 == self.nth_of_type
        except ValueError:  # pragma: no cover - element must be a child
            return False

    def _match_nth_child(self, element: Element) -> bool:
        parent = element.parent
        if parent is None or not hasattr(parent, "child_elements"):
            return self.nth_child == 1
        children = parent.child_elements()
        try:
            return children.index(element) + 1 == self.nth_child
        except ValueError:  # pragma: no cover
            return False

    def _match_last(self, element: Element) -> bool:
        same_type = self._siblings_of_type(element)
        return bool(same_type) and same_type[-1] is element


@dataclass(frozen=True)
class _Step:
    combinator: str  # ' ' (descendant), '>' (child), '+' (adjacent), '~' (sibling)
    compound: _Compound


@dataclass(frozen=True)
class Selector:
    """A parsed selector group, usable for matching and querying.

    Instances are immutable and hashable; :meth:`parse` caches nothing by
    itself -- callers that match one selector against many documents should
    parse once and reuse.
    """

    groups: tuple[tuple[_Step, ...], ...]
    source: str = ""

    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Selector":
        if not isinstance(text, str) or not text.strip():
            raise SelectorError("empty selector")
        groups = tuple(
            _parse_complex(part.strip())
            for part in text.split(",")
            if part.strip()
        )
        if not groups:
            raise SelectorError(f"no selectors in {text!r}")
        return cls(groups=groups, source=text.strip())

    # ------------------------------------------------------------------
    def matches(self, element: Element) -> bool:
        """True if ``element`` matches any group of this selector."""
        # Plain loop (not any()+genexpr): this runs once per element per
        # selector application, the hottest spot of the extraction path.
        for group in self.groups:
            if self._match_from(group, len(group) - 1, element):
                return True
        return False

    def _match_from(self, group: Sequence[_Step], idx: int, element: Element) -> bool:
        step = group[idx]
        if not step.compound.match(element):
            return False
        if idx == 0:
            return True
        prev_idx = idx - 1
        combinator = step.combinator
        if combinator == ">":
            parent = element.parent
            if isinstance(parent, Element):
                return self._match_from(group, prev_idx, parent)
            return False
        if combinator == "+":
            sibling = _previous_element_sibling(element)
            if sibling is not None:
                return self._match_from(group, prev_idx, sibling)
            return False
        if combinator == "~":
            sibling = _previous_element_sibling(element)
            while sibling is not None:
                if self._match_from(group, prev_idx, sibling):
                    return True
                sibling = _previous_element_sibling(sibling)
            return False
        # descendant
        for ancestor in element.ancestors():
            if isinstance(ancestor, Element) and self._match_from(group, prev_idx, ancestor):
                return True
        return False

    # ------------------------------------------------------------------
    def select(self, root: Union[Document, Element]) -> list[Element]:
        """All elements under ``root`` (excluding root) matching, in order."""
        matches = self.matches
        return [
            element
            for element in root.iter_elements()
            if element is not root and matches(element)
        ]

    def select_one(self, root: Union[Document, Element]) -> Optional[Element]:
        """First matching element in document order, or ``None``."""
        for element in root.iter_elements():
            if element is root:
                continue
            if self.matches(element):
                return element
        return None

    def __str__(self) -> str:
        return self.source


def _previous_element_sibling(element: Element) -> Optional[Element]:
    parent = element.parent
    if parent is None:
        return None
    previous: Optional[Element] = None
    for child in parent.children:
        if child is element:
            return previous
        if isinstance(child, Element):
            previous = child
    return None


# ----------------------------------------------------------------------
# Grammar
# ----------------------------------------------------------------------
_IDENT = r"[a-zA-Z_][\w-]*"
_TOKEN_RE = re.compile(
    rf"""
      (?P<combinator>\s*[>+~]\s*|\s+)
    | (?P<tag>\*|{_IDENT})
    | \#(?P<id>{_IDENT})
    | \.(?P<class>{_IDENT})
    | \[(?P<attr>[^\]]+)\]
    | :(?P<pseudo>[a-zA-Z-]+)(?:\((?P<arg>[^)]*)\))?
    """,
    re.VERBOSE,
)
_ATTR_BODY_RE = re.compile(
    rf"""^\s*(?P<name>{_IDENT})\s*
         (?:(?P<op>[~^$*]?=)\s*
            (?:"(?P<dq>[^"]*)"|'(?P<sq>[^']*)'|(?P<bare>[^\s\]]+))\s*)?$""",
    re.VERBOSE,
)


def _parse_complex(text: str) -> tuple[_Step, ...]:
    steps: list[_Step] = []
    pending_combinator = " "
    tag: Optional[str] = None
    ids: list[str] = []
    classes: list[str] = []
    attrs: list[_AttrTest] = []
    nth: Optional[int] = None
    nth_child: Optional[int] = None
    last_of_type = False
    have_compound = False

    def flush() -> None:
        nonlocal tag, ids, classes, attrs, nth, nth_child, last_of_type, \
            have_compound, pending_combinator
        if not have_compound:
            raise SelectorError(f"dangling combinator in {text!r}")
        steps.append(
            _Step(
                combinator=pending_combinator,
                compound=_Compound(
                    tag=tag,
                    ids=tuple(ids),
                    classes=tuple(classes),
                    attrs=tuple(attrs),
                    nth_of_type=nth,
                    nth_child=nth_child,
                    last_of_type=last_of_type,
                ),
            )
        )
        tag, ids, classes, attrs, nth = None, [], [], [], None
        nth_child, last_of_type = None, False
        have_compound = False

    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None or match.end() == pos:
            raise SelectorError(f"cannot parse selector at {text[pos:]!r}")
        pos = match.end()
        if match.group("combinator") is not None:
            if pos >= len(text):
                raise SelectorError(f"trailing combinator in {text!r}")
            combinator = match.group("combinator").strip() or " "
            flush()
            pending_combinator = combinator
            continue
        if match.group("tag") is not None:
            if have_compound and tag is not None:
                raise SelectorError(f"two type selectors in one compound: {text!r}")
            tag = match.group("tag").lower()
        elif match.group("id") is not None:
            ids.append(match.group("id"))
        elif match.group("class") is not None:
            classes.append(match.group("class"))
        elif match.group("attr") is not None:
            attrs.append(_parse_attr(match.group("attr")))
        elif match.group("pseudo") is not None:
            kind, value = _parse_pseudo(
                match.group("pseudo"), match.group("arg"), text
            )
            if kind == "nth-of-type":
                nth = value
            elif kind == "nth-child":
                nth_child = value
            else:  # last-of-type
                last_of_type = True
        have_compound = True
    flush()
    if steps and steps[0].combinator != " ":
        raise SelectorError(f"selector starts with combinator: {text!r}")
    return tuple(steps)


def _parse_attr(body: str) -> _AttrTest:
    match = _ATTR_BODY_RE.match(body)
    if match is None:
        raise SelectorError(f"bad attribute selector [{body}]")
    op = match.group("op") or ""
    value = ""
    if op:
        for key in ("dq", "sq", "bare"):
            if match.group(key) is not None:
                value = match.group(key)
                break
    return _AttrTest(name=match.group("name").lower(), op=op, value=value)


def _parse_pseudo(
    name: str, arg: Optional[str], source: str
) -> tuple[str, int]:
    name = name.lower()
    if name == "first-of-type":
        return "nth-of-type", 1
    if name == "last-of-type":
        return "last-of-type", 0
    if name == "first-child":
        return "nth-child", 1
    if name in ("nth-of-type", "nth-child"):
        if arg is None:
            raise SelectorError(f":{name} needs an argument in {source!r}")
        try:
            n = int(arg.strip())
        except ValueError as exc:
            raise SelectorError(f"bad :{name}({arg}) in {source!r}") from exc
        if n < 1:
            raise SelectorError(f":{name} must be >= 1 in {source!r}")
        return name, n
    raise SelectorError(f"unsupported pseudo-class :{name}")


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def select(root: Union[Document, Element], selector: Union[str, Selector]) -> list[Element]:
    """All elements matching ``selector`` under ``root``."""
    if isinstance(selector, str):
        selector = Selector.parse(selector)
    return selector.select(root)


def select_one(
    root: Union[Document, Element], selector: Union[str, Selector]
) -> Optional[Element]:
    """First element matching ``selector`` under ``root``, or ``None``."""
    if isinstance(selector, str):
        selector = Selector.parse(selector)
    return selector.select_one(root)


def matches(element: Element, selector: Union[str, Selector]) -> bool:
    """True if ``element`` matches ``selector``."""
    if isinstance(selector, str):
        selector = Selector.parse(selector)
    return selector.matches(element)
