"""Text-plot rendering tests."""

from __future__ import annotations

import pytest

from repro.analysis.stats import BoxStats
from repro.textplot import bars, boxplot_rows, scatter


class TestBars:
    def test_widest_bar_is_max(self):
        out = bars({"a": 10.0, "b": 5.0}, width=20)
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert lines[0].count("#") == 20
        assert lines[1].count("#") == 10

    def test_sort_disabled_preserves_order(self):
        out = bars({"low": 1.0, "high": 9.0}, sort=False)
        assert out.splitlines()[0].startswith("low")

    def test_empty(self):
        assert bars({}) == "(no data)"

    def test_width_validated(self):
        with pytest.raises(ValueError):
            bars({"a": 1.0}, width=0)


class TestBoxplotRows:
    def _stats(self):
        return {
            "narrow": BoxStats.from_values([1.0, 1.01, 1.02, 1.03]),
            "wide": BoxStats.from_values([1.0, 1.2, 1.4, 1.6, 1.8]),
        }

    def test_renders_all_rows(self):
        out = boxplot_rows(self._stats(), width=40)
        lines = out.splitlines()
        assert len(lines) == 3  # axis + 2 rows
        assert any(line.startswith("narrow") for line in lines)
        assert any(line.startswith("wide") for line in lines)

    def test_median_marker_present(self):
        out = boxplot_rows(self._stats(), width=40)
        for line in out.splitlines()[1:]:
            assert "M" in line

    def test_rows_sorted_by_median(self):
        out = boxplot_rows(self._stats(), width=40)
        lines = out.splitlines()[1:]
        assert lines[0].startswith("narrow")

    def test_pinned_axis(self):
        out = boxplot_rows(self._stats(), width=40, lo=1.0, hi=2.0)
        assert "1.000" in out.splitlines()[0]
        assert "2.000" in out.splitlines()[0]

    def test_empty_and_validation(self):
        assert boxplot_rows({}) == "(no data)"
        with pytest.raises(ValueError):
            boxplot_rows(self._stats(), width=5)


class TestScatter:
    def test_marker_count_positions(self):
        out = scatter([(1, 1), (10, 2), (100, 3)], width=20, height=5)
        assert out.count("o") >= 2  # distinct cells

    def test_log_x(self):
        out = scatter([(1, 1), (1000, 2)], width=20, height=5, log_x=True)
        assert "10^" in out

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scatter([(0.0, 1.0)], log_x=True)

    def test_axis_labels(self):
        out = scatter([(0, 0), (10, 5)], width=20, height=6)
        assert "5.00" in out
        assert "0.00" in out

    def test_empty_and_small_grid(self):
        assert scatter([]) == "(no data)"
        with pytest.raises(ValueError):
            scatter([(1, 1)], width=2, height=2)

    def test_single_point_degenerate_span(self):
        out = scatter([(5.0, 5.0)], width=10, height=4)
        assert "o" in out
